"""repro — polynomial invariant generation for non-deterministic recursive programs.

A faithful, pure-Python reproduction of

    Chatterjee, Fu, Goharshady, Goharshady.
    "Polynomial Invariant Generation for Non-deterministic Recursive Programs."
    PLDI 2020.

Quickstart
----------
>>> from repro import weak_inv_synth, SynthesisOptions, TargetInvariantObjective
>>> from repro.polynomial import parse_polynomial
>>> source = '''
... sum(n) {
...     i := 1; s := 0;
...     while i <= n do
...         if * then s := s + i else skip fi;
...         i := i + 1
...     od;
...     return s
... }
... '''
>>> objective = TargetInvariantObjective(
...     function="sum", label_index=9,
...     target=parse_polynomial("1 + 0.5*n_init + 0.5*n_init^2 - ret_sum"))
>>> result = weak_inv_synth(source, {"sum": {1: "n >= 0"}}, objective,
...                         SynthesisOptions(degree=2))            # doctest: +SKIP

See ``examples/`` for complete runnable scenarios and ``DESIGN.md`` for the
mapping between the paper's sections and the packages of this library.
"""

from repro.errors import (
    InfeasibleError,
    ParseError,
    PolynomialError,
    ReproError,
    SemanticsError,
    SolverError,
    SpecificationError,
    SynthesisError,
    ValidationError,
)
from repro.cfg import build_cfg
from repro.invariants import (
    CheckReport,
    Invariant,
    QuadraticSystem,
    SynthesisOptions,
    SynthesisResult,
    SynthesisTask,
    TemplateSet,
    build_task,
    check_invariant,
    generate_constraint_pairs,
    rec_strong_inv_synth,
    rec_weak_inv_synth,
    strong_inv_synth,
    weak_inv_synth,
)
from repro.lang import parse_program, pretty_print
from repro.pipeline import SynthesisJob, SynthesisPipeline, TaskCache, job_from_benchmark
from repro.polynomial import Monomial, Polynomial, parse_polynomial
from repro.semantics import Interpreter
from repro.spec import (
    ConjunctiveAssertion,
    FeasibilityObjective,
    Postcondition,
    Precondition,
    TargetInvariantObjective,
    parse_assertion,
)
from repro.solvers import (
    AlternatingSolver,
    CompiledProblem,
    GaussNewtonSolver,
    PenaltyQCLPSolver,
    PortfolioSolver,
    RepresentativeEnumerator,
    compile_problem,
)

__version__ = "1.0.0"

__all__ = [
    "AlternatingSolver",
    "CheckReport",
    "CompiledProblem",
    "ConjunctiveAssertion",
    "FeasibilityObjective",
    "GaussNewtonSolver",
    "InfeasibleError",
    "Interpreter",
    "Invariant",
    "Monomial",
    "ParseError",
    "PenaltyQCLPSolver",
    "Polynomial",
    "PolynomialError",
    "PortfolioSolver",
    "Postcondition",
    "Precondition",
    "QuadraticSystem",
    "RepresentativeEnumerator",
    "ReproError",
    "SemanticsError",
    "SolverError",
    "SpecificationError",
    "SynthesisError",
    "SynthesisJob",
    "SynthesisOptions",
    "SynthesisPipeline",
    "SynthesisResult",
    "SynthesisTask",
    "TaskCache",
    "TargetInvariantObjective",
    "TemplateSet",
    "ValidationError",
    "build_cfg",
    "build_task",
    "check_invariant",
    "compile_problem",
    "generate_constraint_pairs",
    "job_from_benchmark",
    "parse_assertion",
    "parse_polynomial",
    "parse_program",
    "pretty_print",
    "rec_strong_inv_synth",
    "rec_weak_inv_synth",
    "strong_inv_synth",
    "weak_inv_synth",
    "__version__",
]
