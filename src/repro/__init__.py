"""repro — polynomial invariant generation for non-deterministic recursive programs.

A faithful, pure-Python reproduction of

    Chatterjee, Fu, Goharshady, Goharshady.
    "Polynomial Invariant Generation for Non-deterministic Recursive Programs."
    PLDI 2020.

Quickstart
----------
All four paper algorithms go through one typed front door — the
:class:`~repro.api.engine.Engine`:

>>> from repro import Engine, SynthesisRequest, SynthesisOptions, TargetInvariantObjective
>>> from repro.polynomial import parse_polynomial
>>> source = '''
... sum(n) {
...     i := 1; s := 0;
...     while i <= n do
...         if * then s := s + i else skip fi;
...         i := i + 1
...     od;
...     return s
... }
... '''
>>> request = SynthesisRequest(
...     program=source, mode="weak",
...     precondition={"sum": {1: "n >= 0"}},
...     objective=TargetInvariantObjective(
...         function="sum", label_index=9,
...         target=parse_polynomial("1 + 0.5*n_init + 0.5*n_init^2 - ret_sum")),
...     options=SynthesisOptions(degree=2))
>>> with Engine() as engine:                                       # doctest: +SKIP
...     response = engine.synthesize(request)
...     print(response.status, response.to_json())

Requests and responses round-trip through JSON; ``Engine.map(requests)``
streams completed responses as they finish; ``Engine.submit`` returns a
future-style handle.  The paper-named functions (:func:`weak_inv_synth` and
friends) remain as thin wrappers over a shared module-level engine:

>>> from repro import weak_inv_synth
>>> result = weak_inv_synth(source, {"sum": {1: "n >= 0"}})        # doctest: +SKIP

See ``examples/`` for complete runnable scenarios and ``DESIGN.md`` for the
mapping between the paper's sections and the packages of this library.
"""

from repro.errors import (
    InfeasibleError,
    ParseError,
    PolynomialError,
    ReproError,
    SemanticsError,
    SolverError,
    SpecificationError,
    SynthesisError,
    ValidationError,
)
from repro.api import (
    Engine,
    ErrorInfo,
    RequestValidationError,
    SynthesisHandle,
    SynthesisRequest,
    SynthesisResponse,
    default_engine,
    reset_default_engine,
)
from repro.certify import (
    Certificate,
    CertificateCheck,
    LiftResult,
    VerificationOutcome,
    check_certificate,
    lift_solution,
    repair_solution,
    verify_solution,
)
from repro.cfg import build_cfg
from repro.invariants import (
    CheckReport,
    Invariant,
    QuadraticSystem,
    SynthesisOptions,
    SynthesisResult,
    SynthesisTask,
    TemplateSet,
    build_task,
    check_invariant,
    generate_constraint_pairs,
    rec_strong_inv_synth,
    rec_weak_inv_synth,
    strong_inv_synth,
    weak_inv_synth,
)
from repro.lang import parse_program, pretty_print
from repro.pipeline import SynthesisJob, SynthesisPipeline, TaskCache, job_from_benchmark
from repro.reduction import (
    AUTO_DEGREE,
    EscalationTrace,
    ReductionPlan,
    StageCache,
    compile_plan,
)
from repro.polynomial import Monomial, Polynomial, parse_polynomial
from repro.schedule import SchedulePlan, Scheduler, SolveCorpus
from repro.store import BlobStore, EngineStore, open_store
from repro.semantics import Interpreter
from repro.spec import (
    ConjunctiveAssertion,
    FeasibilityObjective,
    Postcondition,
    Precondition,
    TargetInvariantObjective,
    parse_assertion,
)
from repro.solvers import (
    AlternatingSolver,
    CompiledProblem,
    GaussNewtonSolver,
    PenaltyQCLPSolver,
    PortfolioSolver,
    RepresentativeEnumerator,
    compile_problem,
)

__version__ = "1.0.0"

__all__ = [
    "AUTO_DEGREE",
    "AlternatingSolver",
    "BlobStore",
    "Certificate",
    "CertificateCheck",
    "CheckReport",
    "CompiledProblem",
    "ConjunctiveAssertion",
    "Engine",
    "EngineStore",
    "ErrorInfo",
    "EscalationTrace",
    "FeasibilityObjective",
    "GaussNewtonSolver",
    "InfeasibleError",
    "Interpreter",
    "Invariant",
    "LiftResult",
    "Monomial",
    "ParseError",
    "PenaltyQCLPSolver",
    "Polynomial",
    "PolynomialError",
    "PortfolioSolver",
    "Postcondition",
    "Precondition",
    "QuadraticSystem",
    "ReductionPlan",
    "RepresentativeEnumerator",
    "SchedulePlan",
    "Scheduler",
    "ReproError",
    "RequestValidationError",
    "SemanticsError",
    "SolveCorpus",
    "SolverError",
    "SpecificationError",
    "StageCache",
    "SynthesisError",
    "SynthesisHandle",
    "SynthesisJob",
    "SynthesisOptions",
    "SynthesisPipeline",
    "SynthesisRequest",
    "SynthesisResponse",
    "SynthesisResult",
    "SynthesisTask",
    "TaskCache",
    "TargetInvariantObjective",
    "TemplateSet",
    "ValidationError",
    "VerificationOutcome",
    "build_cfg",
    "build_task",
    "check_certificate",
    "check_invariant",
    "compile_plan",
    "compile_problem",
    "default_engine",
    "lift_solution",
    "open_store",
    "repair_solution",
    "verify_solution",
    "generate_constraint_pairs",
    "job_from_benchmark",
    "parse_assertion",
    "parse_polynomial",
    "parse_program",
    "pretty_print",
    "rec_strong_inv_synth",
    "rec_weak_inv_synth",
    "reset_default_engine",
    "strong_inv_synth",
    "weak_inv_synth",
    "__version__",
]
