"""The HTTP front door: ``repro.api`` served over asyncio.

:class:`SynthesisServer` maps a small set of endpoints onto one
:class:`~repro.api.engine.Engine` (owned by default, injectable for tests):

=========================  ======================================================
``GET  /healthz``          liveness probe (``{"status": "ok"}``)
``GET  /v1/stats``         engine counters + server counters, one flat document
``POST /v1/synthesize``    one request document in, one response envelope out
``POST /v1/submit``        a batch in, a job id out (``202``)
``GET  /v1/jobs/{id}``     job progress + completed envelopes so far
``GET  /v1/jobs/{id}/events``  NDJSON stream of envelopes as they finish
=========================  ======================================================

Semantics follow the in-process API exactly: a malformed document is a
structured 400 carrying the :class:`~repro.api.errors.RequestValidationError`
field list; a synthesis *failure* is a normal 200 whose envelope has
``status="error"`` — one bad request never takes down a batch or the
connection.  The events stream reuses :meth:`~repro.api.engine.Engine.map`
semantics: envelopes arrive in completion order, stamped with their
``submission_id``; documents rejected at validation time are streamed first
as synthetic ``status="error"`` envelopes.

Engine work runs on worker threads (``asyncio.to_thread`` /
``wrap_future``), so the event loop only ever parses bytes and serialises
JSON — slow solves never block the health probe.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api import Engine, RequestValidationError, SynthesisRequest
from repro.server.http import (
    HttpError,
    HttpRequest,
    error_payload,
    json_response,
    read_request,
    response_head,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import SynthesisHandle

#: How long a finished job's results are kept before eviction makes room
#: (a bound on memory, not a protocol promise).
MAX_FINISHED_JOBS = 256


def _validation_envelope(document, exc: RequestValidationError, position: int) -> dict:
    """The synthetic ``status="error"`` envelope of a rejected batch document."""
    request_id = None
    if isinstance(document, dict):
        request_id = document.get("request_id")
    return {
        "mode": document.get("mode", "weak") if isinstance(document, dict) else "weak",
        "status": "error",
        "request_id": request_id,
        "submission_id": None,
        "batch_index": position,
        "error": {
            "type": "RequestValidationError",
            "message": str(exc),
            "errors": exc.errors,
        },
    }


@dataclass
class Job:
    """One submitted batch: accepted handles plus validation rejects."""

    id: str
    total: int
    rejected: list[dict] = field(default_factory=list)
    handles: "list[SynthesisHandle]" = field(default_factory=list)
    results: list[dict] = field(default_factory=list)  # completion order
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def completed(self) -> int:
        with self.lock:
            return len(self.results)

    @property
    def done(self) -> bool:
        return self.completed >= len(self.handles)

    def snapshot(self) -> dict:
        with self.lock:
            results = list(self.results)
        return {
            "job_id": self.id,
            "total": self.total,
            "accepted": len(self.handles),
            "rejected": len(self.rejected),
            "completed": len(results),
            "done": len(results) >= len(self.handles),
            "results": self.rejected + results,
        }


class SynthesisServer:
    """The asyncio front door over one synthesis engine.

    Parameters
    ----------
    engine:
        An existing :class:`~repro.api.engine.Engine` to serve (not closed on
        shutdown), or ``None`` to own one built from the remaining knobs.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` once started).
    store:
        The persistent store root handed to an owned engine — warm responses,
        solves, certificates and the schedule corpus all live there.
    workers:
        Concurrency of an owned engine (default 2).  Under the process
        executor this is the number of worker *processes* — the server's
        cold-traffic throughput scales with it up to the host's cores.
        ``workers=1`` serves strictly sequentially (useful as a scaling
        baseline); the engine still executes off-loop, so the health probe
        stays responsive either way.
    executor:
        Executor back-end of an owned engine (default ``"auto"``: worker
        processes when ``workers > 1`` and the host is multi-core, else
        threads).  See :class:`~repro.api.engine.Engine`.
    scheduler:
        Scheduler mode of an owned engine.  Defaults to ``"record-only"``:
        every server-handled solve contributes a corpus row to the deployment
        data directory without changing schedules.
    solver_options:
        Default solver knobs of an owned engine.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store=None,
        workers: int | None = None,
        executor: str = "auto",
        scheduler: str = "record-only",
        solver_options=None,
    ) -> None:
        self._owns_engine = engine is None
        if engine is None:
            engine = Engine(
                workers=max(1, workers) if workers is not None else 2,
                executor=executor,
                scheduler=scheduler,
                store=store,
                solver_options=solver_options,
            )
        self.engine = engine
        self.host = host
        self.port = port
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._counters = {
            "server_requests_total": 0,
            "server_validation_failures": 0,
            "server_jobs_created": 0,
            "server_protocol_errors": 0,
        }
        self._counter_lock = threading.Lock()
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_engine:
            await asyncio.to_thread(self.engine.close)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _bump(self, key: str) -> None:
        with self._counter_lock:
            self._counters[key] += 1

    # -- connection loop ---------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    self._bump("server_protocol_errors")
                    writer.write(
                        json_response(
                            exc.status, error_payload(exc.status, exc.reason), close=True
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                self._bump("server_requests_total")
                close = request.headers.get("connection", "").lower() == "close"
                try:
                    streamed = await self._dispatch(request, writer, close)
                except HttpError as exc:
                    payload = error_payload(exc.status, exc.reason)
                    writer.write(json_response(exc.status, payload, close=close))
                    await writer.drain()
                except RequestValidationError as exc:
                    self._bump("server_validation_failures")
                    payload = error_payload(400, str(exc), errors=exc.errors)
                    writer.write(json_response(400, payload, close=close))
                    await writer.drain()
                except Exception as exc:  # defensive: one request never kills the loop
                    payload = error_payload(500, f"{type(exc).__name__}: {exc}")
                    writer.write(json_response(500, payload, close=True))
                    await writer.drain()
                    return
                else:
                    await writer.drain()
                    if streamed:
                        return  # streamed responses are delimited by EOF
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-write; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter, close: bool
    ) -> bool:
        """Route one request; returns whether the response was streamed."""
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET", path)
            writer.write(json_response(200, {"status": "ok"}, close=close))
            return False
        if path == "/v1/stats":
            self._require(method, "GET", path)
            writer.write(json_response(200, self._stats(), close=close))
            return False
        if path == "/v1/synthesize":
            self._require(method, "POST", path)
            envelope = await self._synthesize(request.json())
            writer.write(json_response(200, envelope, close=close))
            return False
        if path == "/v1/submit":
            self._require(method, "POST", path)
            job = await self._submit(request.json())
            writer.write(
                json_response(
                    202,
                    {
                        "job_id": job.id,
                        "total": job.total,
                        "accepted": len(job.handles),
                        "rejected": len(job.rejected),
                    },
                    close=close,
                )
            )
            return False
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/events"):
                self._require(method, "GET", path)
                await self._stream_events(self._job(rest[: -len("/events")]), writer)
                return True
            self._require(method, "GET", path)
            writer.write(json_response(200, self._job(rest).snapshot(), close=close))
            return False
        raise HttpError(404, f"unknown endpoint {method} {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HttpError(405, f"{path} expects {expected}, got {method}")

    # -- endpoint bodies ---------------------------------------------------------

    def _parse_document(self, document) -> SynthesisRequest:
        try:
            return SynthesisRequest.from_dict(document)
        except RequestValidationError:
            self._bump("server_validation_failures")
            raise

    async def _synthesize(self, document) -> dict:
        request = self._parse_document(document)
        # Submit off-loop (a sequential engine executes inside submit();
        # a pooled one takes locks), then await the engine future directly —
        # under the process executor many requests are then genuinely
        # in flight at once, one per worker process, without pinning a
        # to_thread slot each.
        handle = await asyncio.to_thread(self.engine.submit, request)
        response = await asyncio.wrap_future(handle._future)
        return response.to_dict()

    async def _submit(self, document) -> Job:
        documents = document.get("requests") if isinstance(document, dict) else document
        if not isinstance(documents, list) or not documents:
            raise RequestValidationError.single(
                "requests", "expected a non-empty JSON array of request documents"
            )
        job = Job(id=uuid.uuid4().hex, total=len(documents))
        accepted: list[SynthesisRequest] = []
        for position, entry in enumerate(documents):
            try:
                accepted.append(self._parse_document(entry))
            except RequestValidationError as exc:
                job.rejected.append(_validation_envelope(entry, exc, position))
        # Submission happens off-loop: a sequential engine executes inside
        # submit(), and even a pooled one takes locks worth keeping off the
        # event loop.
        job.handles = await asyncio.to_thread(
            lambda: [self.engine.submit(request) for request in accepted]
        )
        for handle in job.handles:
            handle._future.add_done_callback(self._record_result(job))
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._evict_finished_jobs()
        self._bump("server_jobs_created")
        return job

    @staticmethod
    def _record_result(job: Job):
        def record(future) -> None:
            try:
                envelope = future.result().to_dict()
            except Exception as exc:  # caller-side failure: keep the job countable
                envelope = {
                    "status": "error",
                    "error": {"type": type(exc).__name__, "message": str(exc)},
                }
            with job.lock:
                job.results.append(envelope)

        return record

    def _evict_finished_jobs(self) -> None:
        """Drop the oldest finished jobs once the table outgrows its bound."""
        if len(self._jobs) <= MAX_FINISHED_JOBS:
            return
        for job_id in [jid for jid, job in self._jobs.items() if job.done]:
            if len(self._jobs) <= MAX_FINISHED_JOBS:
                break
            del self._jobs[job_id]

    def _job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    async def _stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """NDJSON: validation rejects first, then envelopes in completion order."""
        writer.write(response_head(200, content_type="application/x-ndjson"))
        for envelope in job.rejected:
            writer.write(json.dumps(envelope).encode("utf-8") + b"\n")
        await writer.drain()
        pending = {
            asyncio.ensure_future(asyncio.wrap_future(handle._future))
            for handle in job.handles
        }
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for future in done:
                    try:
                        envelope = future.result().to_dict()
                    except Exception as exc:
                        envelope = {
                            "status": "error",
                            "error": {"type": type(exc).__name__, "message": str(exc)},
                        }
                    writer.write(json.dumps(envelope).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            for future in pending:
                future.cancel()  # detach from the engine future; it keeps running

    def _stats(self) -> dict:
        stats = dict(self.engine.stats())
        with self._counter_lock:
            stats.update({key: float(value) for key, value in self._counters.items()})
        with self._jobs_lock:
            stats["server_jobs_open"] = float(
                sum(1 for job in self._jobs.values() if not job.done)
            )
        stats["server_uptime_seconds"] = time.monotonic() - self._started
        return stats


# ---------------------------------------------------------------------------
# Background serving (what tests, examples and benchmarks use)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A running background server: address + ``stop()`` (context-managed)."""

    def __init__(self, server: SynthesisServer, thread: threading.Thread, loop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_in_background(server: SynthesisServer, ready_timeout: float = 30.0) -> ServerHandle:
    """Run ``server`` on a dedicated event-loop thread; returns once it is bound."""
    ready = threading.Event()
    failure: list[BaseException] = []
    handle_box: dict = {}

    async def run() -> None:
        stop_event = asyncio.Event()
        handle_box["loop"] = asyncio.get_running_loop()
        handle_box["stop_event"] = stop_event
        try:
            await server.start()
        except BaseException as exc:  # bind failure: surface it to the caller
            failure.append(exc)
            try:
                # An owned engine was already constructed (its pools may be
                # warm): release it, or the failed server leaks processes.
                await server.stop()
            finally:
                ready.set()
            return
        ready.set()
        try:
            await stop_event.wait()
        finally:
            await server.stop()

    thread = threading.Thread(target=lambda: asyncio.run(run()), daemon=True)
    thread.start()
    if not ready.wait(timeout=ready_timeout):
        raise TimeoutError("server did not start in time")
    if failure:
        raise failure[0]
    handle = ServerHandle(server, thread, handle_box["loop"])
    handle._stop_event = handle_box["stop_event"]
    return handle
