"""A minimal asyncio HTTP/1.1 layer for the synthesis front door.

Deliberately tiny and dependency-free: the server speaks exactly the subset
of HTTP/1.1 its own endpoints need — request line + headers + an optional
``Content-Length`` body in, status line + headers + a (possibly streamed)
body out.  Anything outside that subset is answered with a structured error
status (``411`` for missing lengths, ``413`` for oversized bodies, ``501``
for chunked uploads) instead of being half-parsed.

The module knows nothing about synthesis: :mod:`repro.server.app` maps the
parsed :class:`HttpRequest` onto ``repro.api`` and renders responses back
through :func:`json_response` / :func:`response_head`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bound on accepted request bodies (16 MiB — a batch of synthesis
#: documents is text, not data).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on the header block (sanity bound, not a protocol limit).
MAX_HEADER_BYTES = 64 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """A protocol-level failure that maps directly onto a status code."""

    def __init__(self, status: int, reason: str):
        self.status = status
        self.reason = reason
        super().__init__(f"{status} {reason}")


@dataclass
class HttpRequest:
    """One parsed request: method, split target, lowercased headers, raw body."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body decoded as JSON; raises :class:`HttpError` (400) when it isn't."""
        if not self.body:
            raise HttpError(400, "empty body where a JSON document was expected")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF before any bytes."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(400, f"malformed request line: {exc}") from exc
    if not line:
        return None  # client closed the connection between requests
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    seen = 0
    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError) as exc:
            raise HttpError(400, f"malformed header line: {exc}") from exc
        if line in (b"\r\n", b"\n", b""):
            break
        seen += len(line)
        if seen > MAX_HEADER_BYTES:
            raise HttpError(413, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line.decode('latin-1')!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, f"malformed Content-Length: {length_text!r}") from exc
        if length < 0:
            raise HttpError(400, f"malformed Content-Length: {length_text!r}")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "request body shorter than Content-Length") from exc
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "Content-Length required")

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        path=unquote(split.path) or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response_head(
    status: int,
    *,
    content_type: str = "application/json",
    content_length: int | None = None,
    close: bool = False,
) -> bytes:
    """The status line + headers (``content_length=None`` means a streamed body)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}", f"Content-Type: {content_type}"]
    if content_length is None:
        # Streamed responses delimit the body by closing the connection —
        # readers consume lines until EOF (the NDJSON event protocol).
        close = True
    else:
        lines.append(f"Content-Length: {content_length}")
    lines.append("Connection: close" if close else "Connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(status: int, payload, *, close: bool = False) -> bytes:
    """A complete JSON response (head + body) ready to write."""
    body = json.dumps(payload).encode("utf-8")
    return response_head(status, content_length=len(body), close=close) + body


def error_payload(status: int, reason: str, errors: list | None = None) -> dict:
    """The uniform error envelope every non-2xx JSON response carries."""
    payload = {"error": {"status": status, "reason": reason}}
    if errors:
        payload["error"]["errors"] = errors
    return payload
