"""A small stdlib client for the synthesis server.

:class:`SynthesisClient` speaks plain ``http.client`` — no dependencies, one
connection per call — and mirrors the endpoint set of
:class:`~repro.server.app.SynthesisServer`.  Payloads stay JSON documents
(the wire format); rebuild typed objects with
``SynthesisResponse.from_dict`` when the in-process view is wanted.

Transport-level failures and non-2xx statuses raise :class:`ServerError`
carrying the decoded error envelope; synthesis failures do **not** — they
arrive as normal ``status="error"`` envelopes, exactly as in-process.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Iterator, Mapping
from urllib.parse import urlsplit


class ServerError(Exception):
    """A non-2xx response (or transport failure) from the synthesis server."""

    def __init__(self, status: int, payload: dict | None = None, reason: str = ""):
        self.status = status
        self.payload = payload or {}
        detail = self.payload.get("error", {}).get("reason", reason) or reason
        super().__init__(f"server returned {status}: {detail}")

    @property
    def errors(self) -> list:
        """The structured per-field validation entries, when present."""
        return self.payload.get("error", {}).get("errors", [])


class SynthesisClient:
    """Client for one synthesis server (``SynthesisClient("http://host:port")``)."""

    def __init__(self, base_url: str, timeout: float | None = 600.0):
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (plain http only)")
        if not split.hostname:
            raise ValueError(f"no host in server url {base_url!r}")
        self.host = split.hostname
        self.port = split.port if split.port is not None else 80
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _open(self, method: str, path: str, payload=None):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        return connection, connection.getresponse()

    def _request(self, method: str, path: str, payload=None) -> dict:
        connection, response = self._open(method, path, payload)
        try:
            raw = response.read()
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServerError(response.status, reason=f"undecodable body: {exc}") from exc
        if response.status >= 300:
            raise ServerError(response.status, document)
        return document

    # -- endpoints ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def synthesize(self, document: Mapping) -> dict:
        """Run one request document; returns the response envelope (blocking)."""
        return self._request("POST", "/v1/synthesize", dict(document))

    def submit(self, documents) -> dict:
        """Submit a batch; returns ``{"job_id", "total", "accepted", "rejected"}``."""
        if isinstance(documents, Mapping):
            payload = dict(documents)
        else:
            payload = {"requests": [dict(entry) for entry in documents]}
        return self._request("POST", "/v1/submit", payload)

    def job(self, job_id: str) -> dict:
        """Progress + completed envelopes of one job."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's envelopes as they finish (NDJSON until EOF).

        Yields validation rejects first, then completed responses in
        completion order — :meth:`repro.api.engine.Engine.map` semantics over
        the wire.
        """
        connection, response = self._open("GET", f"/v1/jobs/{job_id}/events")
        try:
            if response.status >= 300:
                raw = response.read()
                try:
                    document = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    document = {}
                raise ServerError(response.status, document)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()
