"""``python -m repro.server`` — run the synthesis front door from the shell."""

from __future__ import annotations

import argparse
import asyncio

from repro.server.app import SynthesisServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve repro.api over HTTP (stdlib asyncio, no dependencies).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8787, help="bind port, 0 for a free one (default: %(default)s)"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="persistent store root (responses, solves, certificates, schedule corpus); "
        "defaults to no persistence",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="engine concurrency: worker processes under the process executor, "
        "threads otherwise (default: %(default)s)",
    )
    parser.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "thread", "process"),
        help="engine executor back-end; auto picks processes on multi-core hosts "
        "when --workers > 1 (default: %(default)s)",
    )
    parser.add_argument(
        "--scheduler",
        default="record-only",
        choices=("off", "record-only", "on"),
        help="corpus scheduler mode of the served engine (default: %(default)s)",
    )
    options = parser.parse_args(argv)

    server = SynthesisServer(
        host=options.host,
        port=options.port,
        store=options.store,
        workers=options.workers,
        executor=options.executor,
        scheduler=options.scheduler,
    )

    async def run() -> None:
        await server.start()
        store_note = f", store={server.engine.store.root}" if server.engine.store else ""
        print(
            f"repro.server listening on {server.url} "
            f"(workers={server.engine.workers}, executor={server.engine.executor_kind}{store_note})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
