"""repro.server — the HTTP front door over :mod:`repro.api`.

Run one with ``python -m repro.server --store /var/lib/repro`` (or
programmatically)::

    from repro.server import SynthesisServer, SynthesisClient, serve_in_background

    with serve_in_background(SynthesisServer(store="/var/lib/repro")) as handle:
        client = SynthesisClient(handle.url)
        envelope = client.synthesize({"program": source, "mode": "weak"})

Everything is stdlib: a hand-rolled asyncio HTTP/1.1 loop on the server
side, ``http.client`` on the client side.  The wire format is exactly the
JSON codec of :class:`~repro.api.request.SynthesisRequest` /
:class:`~repro.api.response.SynthesisResponse`.
"""

from repro.server.app import Job, ServerHandle, SynthesisServer, serve_in_background
from repro.server.client import ServerError, SynthesisClient
from repro.server.http import HttpError, HttpRequest

__all__ = [
    "HttpError",
    "HttpRequest",
    "Job",
    "ServerError",
    "ServerHandle",
    "SynthesisClient",
    "SynthesisServer",
    "serve_in_background",
]
