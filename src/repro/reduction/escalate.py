"""Adaptive degree escalation: the "smallest template that works" ladder.

With ``SynthesisOptions(degree="auto")`` the engine tries fixed degrees
d = 1, 2, ..., ``max_degree`` in order, under the request deadline, and keeps
the first (hence minimal) degree that yields an invariant — reproducing the
paper's minimal-degree experiments as a first-class request mode.  Every
attempt shares the degree-independent reduction stages (frontend,
preconditions) through the stage cache, so escalation costs little more than
the distinct template/translation work per degree.

This module holds the pure data side of escalation — the per-attempt record
and the trace that travels on the response envelope; the driver loop lives in
:meth:`repro.api.engine.Engine` because it needs solvers and deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: Attempt statuses beyond the response statuses proper.
DEADLINE_SKIPPED = "deadline-skipped"


@dataclass(frozen=True)
class EscalationAttempt:
    """One rung of the degree ladder: what happened at a fixed degree.

    ``status`` is the sub-response status (``"ok"``, ``"no_invariant"``,
    ``"error"``) or ``"deadline-skipped"`` when the request deadline ran out
    before the attempt could start.  Errors are recorded and escalation
    continues: a degree too small to express the objective fails with a
    specification error, which is precisely the "template too small" signal.
    """

    degree: int
    status: str
    seconds: float = 0.0
    reduction_seconds: float = 0.0
    solve_seconds: float = 0.0
    from_cache: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "degree": self.degree,
            "status": self.status,
            "seconds": self.seconds,
            "reduction_seconds": self.reduction_seconds,
            "solve_seconds": self.solve_seconds,
            "from_cache": self.from_cache,
            "error": self.error,
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "EscalationAttempt":
        return EscalationAttempt(
            degree=int(payload.get("degree", 0)),
            status=str(payload.get("status", "")),
            seconds=float(payload.get("seconds", 0.0)),
            reduction_seconds=float(payload.get("reduction_seconds", 0.0)),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            from_cache=bool(payload.get("from_cache", False)),
            error=payload.get("error"),
        )


@dataclass(frozen=True)
class EscalationTrace:
    """The full degree ladder of one ``degree="auto"`` request.

    ``final_degree`` is the minimal feasible degree (``None`` when no tried
    degree produced an invariant); ``exhausted_deadline`` reports that the
    ladder stopped early because the request deadline ran out.
    """

    attempts: tuple[EscalationAttempt, ...]
    final_degree: int | None = None
    exhausted_deadline: bool = False

    @property
    def degrees_tried(self) -> list[int]:
        return [attempt.degree for attempt in self.attempts if attempt.status != DEADLINE_SKIPPED]

    @property
    def total_seconds(self) -> float:
        return sum(attempt.seconds for attempt in self.attempts)

    def to_dict(self) -> dict:
        return {
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "final_degree": self.final_degree,
            "exhausted_deadline": self.exhausted_deadline,
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "EscalationTrace":
        attempts = tuple(
            EscalationAttempt.from_dict(attempt) for attempt in payload.get("attempts") or []
        )
        final_degree = payload.get("final_degree")
        return EscalationTrace(
            attempts=attempts,
            final_degree=int(final_degree) if final_degree is not None else None,
            exhausted_deadline=bool(payload.get("exhausted_deadline", False)),
        )
