"""The reduction's output type and stage vocabulary.

This module is deliberately import-light (no dependency on the CFG,
template or translation modules at import time): it is what
:mod:`repro.invariants.synthesis` pulls in to re-export
:class:`SynthesisTask`, and keeping it a leaf breaks the import cycle
``invariants -> synthesis -> reduction -> invariants``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.reduction.options import SynthesisOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cfg.graph import ProgramCFG
    from repro.invariants.constraints import ConstraintPair
    from repro.invariants.quadratic_system import QuadraticSystem
    from repro.invariants.template import TemplateSet
    from repro.lang.ast_nodes import Program
    from repro.spec.objectives import Objective
    from repro.spec.preconditions import Precondition

#: Ordered names of the reduction stages (the progress/statistics vocabulary).
STAGE_NAMES = ("frontend", "preconditions", "templates", "pairs", "translation")


@dataclass
class SynthesisTask:
    """Everything Step 1-3 produced, before any solver runs."""

    program: "Program"
    cfg: "ProgramCFG"
    precondition: "Precondition"
    templates: "TemplateSet"
    pairs: "list[ConstraintPair]"
    system: "QuadraticSystem"
    options: SynthesisOptions
    objective: "Objective"
    statistics: dict[str, float] = field(default_factory=dict)
