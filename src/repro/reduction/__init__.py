"""repro.reduction — the staged Step 1-3 reduction compiler.

The paper's reduction (templates -> constraint pairs -> Positivstellensatz
translation) is compiled into a :class:`~repro.reduction.plan.ReductionPlan`
whose stages are individually fingerprinted, individually timed and memoised
in a multi-level :class:`~repro.reduction.cache.StageCache`, so requests
sharing any stage prefix reuse it.  ``SynthesisOptions(degree="auto")``
additionally escalates the template degree adaptively (d = 1, 2, ...,
``max_degree``), reusing the shared stages between rungs and returning the
minimal-degree invariant.

See DESIGN.md ("The staged reduction") for the stage/fingerprint diagram and
the map from the old monolithic ``build_task``/``TaskCache`` pair to this
package.
"""

# Import order matters: the light leaf modules (options, task, escalate,
# cache) must load before plan/stages, whose imports re-enter this package
# through repro.invariants.synthesis.
from repro.reduction.options import AUTO_DEGREE, SynthesisOptions
from repro.reduction.task import STAGE_NAMES, SynthesisTask
from repro.reduction.escalate import EscalationAttempt, EscalationTrace
from repro.reduction.cache import StageCache
from repro.reduction.plan import (
    ReductionPlan,
    ReductionReport,
    StageExecution,
    compile_plan,
)

__all__ = [
    "AUTO_DEGREE",
    "EscalationAttempt",
    "EscalationTrace",
    "ReductionPlan",
    "ReductionReport",
    "STAGE_NAMES",
    "StageCache",
    "StageExecution",
    "SynthesisOptions",
    "SynthesisTask",
    "compile_plan",
]
