"""The multi-level stage cache behind every Step 1-3 reduction.

A :class:`StageCache` memoises the output of each reduction stage under its
stage fingerprint (see :meth:`repro.reduction.plan.ReductionPlan`): requests
sharing any *prefix* of the reduction — same program but a different degree,
same constraint pairs but a different Upsilon — reuse the shared stages and
rebuild only what actually differs.  This replaces the whole-task-keyed
memoisation that :class:`repro.pipeline.cache.TaskCache` used to implement
internally (the task cache still exists, as the task-level view over this
cache).

Builds of distinct keys run concurrently; builds of the same key are
serialised behind a per-key lock so each stage is computed exactly once.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from repro.reduction.task import STAGE_NAMES


class StageCounter:
    """Hit/miss/build-time counters of one stage (attribute bag, no locking)."""

    __slots__ = ("hits", "misses", "build_seconds")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.build_seconds = 0.0


class StageCache:
    """A thread-safe cache from stage fingerprints to stage artifacts.

    Parameters
    ----------
    max_entries:
        Per-stage size bound (oldest entries evicted first, FIFO) so a
        long-lived holder cannot grow without bound; ``None`` (the default)
        keeps every entry.

    Notes
    -----
    Fingerprints of :class:`~repro.spec.preconditions.Precondition` *objects*
    identify them by ``id()``; callers pass the owning object through ``pin``
    so the cache keeps it alive for as long as its keys are retained
    (otherwise a recycled id could alias a semantically different
    precondition).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self.max_entries = max_entries
        self._values: dict[str, dict[tuple, object]] = {name: {} for name in STAGE_NAMES}
        self._pins: dict[str, dict[tuple, object]] = {name: {} for name in STAGE_NAMES}
        self._key_locks: dict[tuple, threading.Lock] = {}
        self._lock = threading.Lock()
        self._counters: dict[str, StageCounter] = {name: StageCounter() for name in STAGE_NAMES}

    def __len__(self) -> int:
        with self._lock:
            return sum(len(values) for values in self._values.values())

    def get_or_build(
        self,
        stage: str,
        key: tuple,
        builder: Callable[[], object],
        pin: object = None,
    ) -> tuple[object, bool, float]:
        """The artifact for ``(stage, key)``, building it on first use.

        Returns ``(value, from_cache, build_seconds)``; ``build_seconds`` is
        zero for cache hits.
        """
        values = self._values[stage]
        counter = self._counters[stage]
        with self._lock:
            if key in values:
                counter.hits += 1
                return values[key], True, 0.0
            key_lock = self._key_locks.setdefault((stage, *key), threading.Lock())
        with key_lock:
            with self._lock:
                if key in values:
                    counter.hits += 1
                    return values[key], True, 0.0
            start = time.perf_counter()
            value = builder()
            elapsed = time.perf_counter() - start
            with self._lock:
                values[key] = value
                if pin is not None:
                    self._pins[stage][key] = pin
                counter.misses += 1
                counter.build_seconds += elapsed
                if self.max_entries is not None:
                    # FIFO bound per stage (dicts preserve insertion order):
                    # evict the oldest artifact with its pin and key lock.
                    while len(values) > self.max_entries:
                        oldest = next(iter(values))
                        values.pop(oldest)
                        self._pins[stage].pop(oldest, None)
                        self._key_locks.pop((stage, *oldest), None)
            return value, False, elapsed

    def stats(self) -> dict[str, float]:
        """Per-stage hit/miss counters and build times, flat (for dashboards)."""
        with self._lock:
            stats: dict[str, float] = {}
            for name in STAGE_NAMES:
                counter = self._counters[name]
                stats[f"stage_{name}_entries"] = float(len(self._values[name]))
                stats[f"stage_{name}_hits"] = float(counter.hits)
                stats[f"stage_{name}_misses"] = float(counter.misses)
                stats[f"stage_{name}_build_seconds"] = counter.build_seconds
            stats["stage_hits"] = float(sum(c.hits for c in self._counters.values()))
            stats["stage_misses"] = float(sum(c.misses for c in self._counters.values()))
            stats["stage_build_seconds"] = sum(c.build_seconds for c in self._counters.values())
            return stats

    def counters(self) -> Mapping[str, StageCounter]:
        """The live per-stage counters (read-only use)."""
        return self._counters

    def clear(self) -> None:
        with self._lock:
            for name in STAGE_NAMES:
                self._values[name].clear()
                self._pins[name].clear()
                self._counters[name] = StageCounter()
            self._key_locks.clear()
