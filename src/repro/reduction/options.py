"""Synthesis options: the paper's parameters d, n and Upsilon plus pipeline knobs.

This module is the canonical home of :class:`SynthesisOptions` (historically
defined in :mod:`repro.invariants.synthesis`, which still re-exports it).  It
lives in :mod:`repro.reduction` because the options determine the fingerprints
of every reduction stage; keeping them next to the stage compiler avoids a
circular import between the reduction package and the algorithm entry points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError

#: The sentinel accepted by ``SynthesisOptions.degree``: try d = 1, 2, ...,
#: ``max_degree`` under the request deadline and keep the smallest degree
#: that yields an invariant (the paper's "smallest template that works").
AUTO_DEGREE = "auto"


@dataclass(frozen=True)
class SynthesisOptions:
    """Parameters of the synthesis pipeline (the paper's d, n and Upsilon plus knobs).

    Attributes
    ----------
    degree:
        Degree ``d`` of the invariant templates, or the string ``"auto"`` to
        escalate adaptively: the engine tries d = 1, 2, ..., ``max_degree``
        (reusing every shared reduction stage between attempts) and returns
        the invariant of the smallest feasible degree.
    max_degree:
        The largest degree tried by adaptive escalation (``degree="auto"``);
        ignored for fixed degrees.
    conjuncts:
        Number ``n`` of atomic assertions per label.
    upsilon:
        The technical parameter: degree bound of the SOS multipliers.
    translation:
        ``"putinar"`` (the paper's main encoding) or ``"handelman"``
        (the Remark-2 alternative without Gram matrices).
    add_entry_assumptions:
        Add the implicit entry-label assumptions of Section 2.3.
    bounded:
        Apply the bounded-reals model (adds the compactness ball constraint of
        Remark 5 to every label's pre-condition).  Compactness is only needed
        for the *semi-completeness* guarantee; soundness holds without it and
        the numeric solvers behave better on the un-balled systems, so the
        default is off.
    bound:
        The bound ``c`` of the bounded-reals model (only meaningful when
        ``bounded=True``).
    with_witness:
        Include strict positivity witnesses (set to ``False`` for the
        non-strict variant of Remark 6).
    encode_sos:
        Encode SOS-ness of the multipliers through Cholesky factors.
    strategy:
        The Step-4 back-end: a registered strategy name (``"qclp"``,
        ``"gauss-newton"``, ``"alternating"``, ...) or ``"portfolio"`` to
        race several strategies on the compiled problem (see
        :mod:`repro.solvers.portfolio`).
    portfolio:
        The strategy list raced when ``strategy="portfolio"`` (empty means
        the default portfolio).
    verify:
        Post-solve verification tier (weak modes): ``"none"`` trusts the
        solver, ``"sample"`` runs the dynamic checker
        (:mod:`repro.certify.sampling`), ``"exact"`` lifts the solution to a
        rational :class:`~repro.certify.certificate.Certificate` validated by
        pure polynomial identity (:mod:`repro.certify.lift`).  A rejected
        solution enters the counterexample-guided repair loop.
    max_repair_rounds:
        Bound on the repair loop's harvest-cut-rerace rounds after a failed
        verification (0 disables repair).  Repair always re-races the solver
        portfolio (this options' ``portfolio`` line-up when non-empty) — the
        pinned ``strategy`` already produced the rejected solution.
    verify_seed:
        Seed of all verification/repair randomness (simulation schedules,
        derived arguments, sample valuations), for reproducible runs.
    scheduler:
        Per-request override of the engine's corpus-driven portfolio
        scheduler (:mod:`repro.schedule`): ``"inherit"`` (default) follows
        the :class:`~repro.api.engine.Engine`'s own ``scheduler`` mode,
        ``"off"`` disables prediction and recording for this request,
        ``"record-only"`` records the solve outcome without predicting, and
        ``"on"`` both predicts and records.  A request can only downgrade:
        an engine constructed without a corpus (``scheduler="off"``) ignores
        ``"on"``/``"record-only"`` requests.
    """

    degree: int | str = 2
    conjuncts: int = 1
    upsilon: int = 2
    translation: str = "putinar"
    add_entry_assumptions: bool = True
    bounded: bool = False
    bound: int = 100
    with_witness: bool = True
    encode_sos: bool = True
    strategy: str = "qclp"
    portfolio: tuple[str, ...] = ()
    max_degree: int = 3
    verify: str = "none"
    max_repair_rounds: int = 2
    verify_seed: int = 0
    scheduler: str = "inherit"

    def __post_init__(self) -> None:
        from repro.solvers.portfolio import STRATEGIES

        if self.degree != AUTO_DEGREE and (
            isinstance(self.degree, bool) or not isinstance(self.degree, int) or self.degree < 1
        ):
            raise SynthesisError(
                f"degree must be a positive integer or {AUTO_DEGREE!r}, got {self.degree!r}"
            )
        if isinstance(self.max_degree, bool) or not isinstance(self.max_degree, int) or self.max_degree < 1:
            raise SynthesisError(f"max_degree must be a positive integer, got {self.max_degree!r}")
        if self.translation not in ("putinar", "handelman"):
            raise SynthesisError(f"unknown translation {self.translation!r}")
        object.__setattr__(self, "portfolio", tuple(self.portfolio))
        known = (*STRATEGIES, "portfolio")
        if self.strategy not in known:
            raise SynthesisError(
                f"unknown strategy {self.strategy!r}; known strategies: {', '.join(known)}"
            )
        unknown = [name for name in self.portfolio if name not in STRATEGIES]
        if unknown:
            raise SynthesisError(
                f"unknown portfolio strategies {unknown!r}; known strategies: {', '.join(STRATEGIES)}"
            )
        if len(set(self.portfolio)) != len(self.portfolio):
            raise SynthesisError(f"duplicate portfolio strategies in {self.portfolio!r}")
        if self.verify not in ("none", "sample", "exact"):
            raise SynthesisError(
                f"unknown verify tier {self.verify!r}; known tiers: none, sample, exact"
            )
        if (
            isinstance(self.max_repair_rounds, bool)
            or not isinstance(self.max_repair_rounds, int)
            or self.max_repair_rounds < 0
        ):
            raise SynthesisError(
                f"max_repair_rounds must be a non-negative integer, got {self.max_repair_rounds!r}"
            )
        if isinstance(self.verify_seed, bool) or not isinstance(self.verify_seed, int):
            raise SynthesisError(f"verify_seed must be an integer, got {self.verify_seed!r}")
        if self.scheduler not in ("inherit", "off", "on", "record-only"):
            raise SynthesisError(
                f"unknown scheduler mode {self.scheduler!r}; "
                "known modes: inherit, off, on, record-only"
            )

    @property
    def is_auto_degree(self) -> bool:
        """Whether this request asks for adaptive degree escalation."""
        return self.degree == AUTO_DEGREE

    def escalation_degrees(self) -> list[int]:
        """The degree ladder tried by adaptive escalation (d = 1, ..., max_degree)."""
        return list(range(1, self.max_degree + 1))

    def reduction_fingerprint(self) -> tuple:
        """The option fields that determine the Step 1-3 reduction.

        Solver-side knobs (``strategy``, ``portfolio``) and the post-solve
        verification knobs (``verify``, ``max_repair_rounds``,
        ``verify_seed``) are deliberately excluded so jobs differing only in
        their Step-4 back-end or their verification tier share one reduction
        in the pipeline's task cache.  ``bound`` only participates
        when ``bounded=True``: an unused bound must not split the cache (two
        jobs differing only in an ignored ``bound`` share their reduction).
        """
        return (
            self.degree,
            self.conjuncts,
            self.upsilon,
            self.translation,
            self.add_entry_assumptions,
            self.bounded,
            self.bound if self.bounded else None,
            self.with_witness,
            self.encode_sos,
        )
