"""The individual stages of the Step 1-3 reduction.

Each function here is one stage of the staged reduction compiler
(:mod:`repro.reduction.plan`): a pure mapping from the previous stages'
artifacts (plus the relevant slice of :class:`SynthesisOptions`) to a new
artifact.  The stage boundaries are exactly the sharing boundaries of the
pipeline: two requests that agree on a stage's inputs share its output
through the :class:`~repro.reduction.cache.StageCache`.

========================  =======================================================
stage                     depends on
========================  =======================================================
``frontend``              program source
``preconditions``         frontend + precondition spec + entry/bounded knobs
``templates``             frontend + (degree, conjuncts)
``pairs``                 preconditions + templates
``translation``           pairs + (translation, upsilon, witness, SOS) — *not*
                          the objective, which is attached during assembly
========================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ProgramCFG
from repro.invariants.constraints import ConstraintPair
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.template import TemplateSet
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.reduction.options import SynthesisOptions
from repro.reduction.task import STAGE_NAMES
from repro.spec.bounded import apply_bounded_reals_model
from repro.spec.preconditions import Precondition, augment_entry_preconditions

if TYPE_CHECKING:  # pragma: no cover
    from repro.invariants.translation import TranslationPool

__all__ = [
    "Frontend",
    "STAGE_NAMES",
    "run_frontend",
    "run_pairs",
    "run_preconditions",
    "run_templates",
    "run_translation",
]


@dataclass(frozen=True)
class Frontend:
    """The Step-0 artifact: the parsed program and its control-flow graph."""

    program: Program
    cfg: ProgramCFG


def run_frontend(source: str, program: Program | None = None) -> Frontend:
    """Parse the program (unless a pre-parsed AST is supplied) and build its CFG."""
    parsed = program if program is not None else parse_program(source)
    return Frontend(program=parsed, cfg=build_cfg(parsed))


def run_preconditions(frontend: Frontend, precondition, options: SynthesisOptions) -> Precondition:
    """Coerce, augment and (optionally) bound the pre-condition."""
    if precondition is None:
        pre = Precondition.trivial()
    elif isinstance(precondition, Precondition):
        pre = precondition.copy()
    else:
        pre = Precondition.from_spec(frontend.cfg, precondition)
    if options.add_entry_assumptions:
        pre = augment_entry_preconditions(frontend.cfg, pre)
    if options.bounded:
        pre = apply_bounded_reals_model(frontend.cfg, pre, bound=options.bound)
    return pre


def run_templates(frontend: Frontend, options: SynthesisOptions) -> TemplateSet:
    """Step 1: build the invariant (and post-condition) templates."""
    return TemplateSet.build(frontend.cfg, degree=options.degree, conjuncts=options.conjuncts)


def run_pairs(
    frontend: Frontend, precondition: Precondition, templates: TemplateSet
) -> list[ConstraintPair]:
    """Step 2: generate the initiation/consecution constraint pairs."""
    return generate_constraint_pairs(frontend.cfg, precondition, templates)


def run_translation(
    pairs: list[ConstraintPair],
    options: SynthesisOptions,
    pool: "TranslationPool | None" = None,
) -> QuadraticSystem:
    """Step 3: the Positivstellensatz translation, objective-free.

    The objective is deliberately *not* part of this stage: it only sets the
    system's objective polynomial, so requests differing in their objective
    alone share the (expensive) constraint translation and attach their own
    objective during plan assembly.

    The translation runs the vectorised flat-array kernel
    (:mod:`repro.invariants.translation`); ``pool`` optionally fans the
    per-pair kernels out over shared-memory workers, with a result that is
    bit-identical to the sequential one because per-pair blocks are assembled
    in pair-index order and every generated unknown name is keyed by the pair
    index.
    """
    if options.translation == "putinar":
        return putinar_translate(
            pairs,
            upsilon=options.upsilon,
            with_witness=options.with_witness,
            encode_sos=options.encode_sos,
            pool=pool,
        )
    return handelman_translate(pairs, with_witness=options.with_witness, pool=pool)
