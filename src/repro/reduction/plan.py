"""The staged reduction compiler: Steps 1-3 as a fingerprinted stage plan.

:func:`compile_plan` lowers one synthesis request (program, pre-condition,
objective, options) into a :class:`ReductionPlan` — an IR whose five stages
(frontend, preconditions, templates, pairs, translation) each carry a
content-based fingerprint.  :meth:`ReductionPlan.execute` then runs the
stages, individually timed, through an optional
:class:`~repro.reduction.cache.StageCache`, so two plans sharing any stage
prefix (same program at a different degree; same constraint pairs at a
different Upsilon) recompute only the stages that actually differ.

The assembled :class:`SynthesisTask` is byte-for-byte equivalent to what the
historical monolithic ``build_task`` produced; the property tests in
``tests/property/test_reduction_equivalence.py`` pin that down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Union

from repro.errors import SynthesisError
from repro.invariants.constraints import ConstraintPair
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.template import TemplateSet
from repro.lang.ast_nodes import Program
from repro.lang.pretty import pretty_print
from repro.polynomial.polynomial import Polynomial
from repro.reduction.cache import StageCache
from repro.reduction.options import SynthesisOptions
from repro.reduction.stages import (
    Frontend,
    run_frontend,
    run_pairs,
    run_preconditions,
    run_templates,
    run_translation,
)
from repro.reduction.task import STAGE_NAMES, SynthesisTask
from repro.spec.objectives import FeasibilityObjective, Objective
from repro.spec.preconditions import Precondition

if TYPE_CHECKING:  # pragma: no cover
    from repro.invariants.translation import TranslationPool

ProgramLike = Union[str, Program]
PreconditionLike = Union[None, Precondition, Mapping[str, Mapping[int, str]]]


@dataclass(frozen=True)
class StageExecution:
    """How one stage of a plan execution was satisfied."""

    name: str
    seconds: float
    from_cache: bool


@dataclass(frozen=True)
class ReductionReport:
    """Per-stage timings and cache outcomes of one :meth:`ReductionPlan.execute`."""

    stages: tuple[StageExecution, ...]
    task_from_cache: bool = False
    extra_timings: tuple[tuple[str, float], ...] = ()

    @property
    def cached_stages(self) -> int:
        return sum(1 for stage in self.stages if stage.from_cache)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def timings(self) -> dict[str, float]:
        """The report flattened into response-timing keys.

        A whole-task hit carries no stage entries; it reports every stage as
        cached (which it is, transitively, through the assembled task).
        ``extra_timings`` carries the translation sub-phase split
        (``stage_translation_compile/fanout/assemble_seconds``) when the
        translation stage actually ran.
        """
        flat = {f"stage_{stage.name}_seconds": stage.seconds for stage in self.stages}
        flat.update(self.extra_timings)
        flat["stages_from_cache"] = float(
            len(STAGE_NAMES) if self.task_from_cache else self.cached_stages
        )
        return flat


def freeze_precondition(value: PreconditionLike) -> object:
    """A hashable, canonical view of a (possibly nested) precondition spec.

    :class:`~repro.spec.preconditions.Precondition` objects are compared by
    identity: two plans share precondition-dependent stages only when they
    share the same precondition instance (the caches pin those instances so
    a recycled ``id()`` can never alias).
    """
    if value is None:
        return None
    if isinstance(value, Precondition):
        return ("precondition-object", id(value))
    if isinstance(value, Mapping):
        return tuple(sorted((key, freeze_precondition(inner)) for key, inner in value.items()))
    return value


def objective_fingerprint(objective: Objective | None) -> object:
    """A hashable identity for an objective (``None`` for feasibility-only)."""
    if objective is None:
        return None
    return (type(objective).__qualname__, repr(objective))


@dataclass(frozen=True)
class ReductionPlan:
    """A compiled Step 1-3 reduction: inputs plus one fingerprint per stage.

    The fingerprints are the sharing contract: two plans with equal
    ``translation_key`` produce identical constraint systems, two plans with
    equal ``pairs_key`` identical constraint pairs, and so on up the prefix.
    ``task_key`` additionally folds in the objective (which is attached
    during assembly, after the cached translation) and is the whole-task
    dedup key used by :class:`repro.pipeline.cache.TaskCache`.
    """

    source: str
    precondition: PreconditionLike
    objective: Objective | None
    options: SynthesisOptions
    frontend_key: tuple
    precondition_key: tuple
    template_key: tuple
    pairs_key: tuple
    translation_key: tuple
    task_key: tuple
    program: Program | None = field(default=None, compare=False, repr=False)

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        cache: StageCache | None = None,
        translation_pool: "TranslationPool | None" = None,
    ) -> tuple[SynthesisTask, ReductionReport]:
        """Run the plan, reusing every stage ``cache`` already holds.

        Returns the assembled task together with a :class:`ReductionReport`
        recording, per stage, the build time (zero on a cache hit) and
        whether it came from the cache.  ``translation_pool`` fans the
        vectorised per-pair translation kernels out over shared-memory
        workers (see :mod:`repro.invariants.translation`).
        """
        executions: list[StageExecution] = []

        def stage(name: str, key: tuple, builder):
            if cache is None:
                start = time.perf_counter()
                value = builder()
                elapsed = time.perf_counter() - start
                hit = False
            else:
                value, hit, elapsed = cache.get_or_build(name, key, builder, pin=self.precondition)
            executions.append(StageExecution(name=name, seconds=elapsed, from_cache=hit))
            return value

        frontend: Frontend = stage(
            "frontend", self.frontend_key, lambda: run_frontend(self.source, self.program)
        )
        pre: Precondition = stage(
            "preconditions",
            self.precondition_key,
            lambda: run_preconditions(frontend, self.precondition, self.options),
        )
        templates: TemplateSet = stage(
            "templates", self.template_key, lambda: run_templates(frontend, self.options)
        )
        pairs: list[ConstraintPair] = stage(
            "pairs", self.pairs_key, lambda: run_pairs(frontend, pre, templates)
        )
        translated: QuadraticSystem = stage(
            "translation",
            self.translation_key,
            lambda: run_translation(pairs, self.options, pool=translation_pool),
        )

        start = time.perf_counter()
        system = self._attach_objective(translated, templates)
        assembly_seconds = time.perf_counter() - start

        # Surface the translation kernel's compile/fanout/assemble split when
        # the stage actually ran (a cached stage reports only the hit).
        extra_timings: tuple[tuple[str, float], ...] = ()
        profile = getattr(translated, "translation_profile", None)
        if profile is not None and not executions[-1].from_cache:
            extra_timings = (
                ("stage_translation_compile_seconds", profile.compile_seconds),
                ("stage_translation_fanout_seconds", profile.fanout_seconds),
                ("stage_translation_assemble_seconds", profile.assemble_seconds),
                ("stage_translation_workers", float(profile.workers)),
            )

        report = ReductionReport(stages=tuple(executions), extra_timings=extra_timings)
        by_name = {stage.name: stage.seconds for stage in executions}
        statistics = {
            "time_frontend": by_name["frontend"],
            "time_preconditions": by_name["preconditions"],
            "time_templates": by_name["templates"],
            "time_constraint_pairs": by_name["pairs"],
            "time_translation": by_name["translation"] + assembly_seconds,
            "constraint_pairs": float(len(pairs)),
            "system_size": float(system.size),
            "stages_from_cache": float(report.cached_stages),
        }
        for key, value in extra_timings:
            if key.endswith("_seconds"):
                statistics[key.replace("stage_translation_", "time_translation_")] = value
        task = SynthesisTask(
            program=frontend.program,
            cfg=frontend.cfg,
            precondition=pre,
            templates=templates,
            pairs=pairs,
            system=system,
            options=self.options,
            objective=self.objective if self.objective is not None else FeasibilityObjective(),
            statistics=statistics,
        )
        return task, report

    def _attach_objective(self, translated: QuadraticSystem, templates: TemplateSet) -> QuadraticSystem:
        """Attach this plan's objective to the (objective-free) cached translation.

        A zero objective reuses the cached system object as-is; a non-trivial
        one gets its own :class:`QuadraticSystem` sharing the translated
        constraint objects, so an objective sweep never re-translates.
        """
        objective = self.objective if self.objective is not None else FeasibilityObjective()
        polynomial: Polynomial = objective.polynomial(templates)
        if polynomial.is_zero():
            return translated
        return QuadraticSystem(
            constraints=list(translated.constraints),
            objective=polynomial,
            provenance=list(translated.provenance),
        )


def compile_plan(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
) -> ReductionPlan:
    """Lower one synthesis request into its staged :class:`ReductionPlan`.

    The program may be source text or a parsed AST; ASTs are fingerprinted by
    their canonical pretty-printed source (which re-parses to the same
    program) and carried along so the frontend stage never re-parses them.
    Requests with ``degree="auto"`` cannot be compiled directly — the engine
    escalates them into a ladder of fixed-degree plans first.
    """
    options = options if options is not None else SynthesisOptions()
    if options.is_auto_degree:
        raise SynthesisError(
            'degree="auto" requires adaptive escalation; compile one plan per concrete degree '
            "(the Engine does this automatically)"
        )
    parsed: Program | None = None
    if isinstance(program, Program):
        parsed = program
        source = pretty_print(program)
    else:
        source = program

    frozen_pre = freeze_precondition(precondition)
    pre_knobs = (
        options.add_entry_assumptions,
        options.bounded,
        options.bound if options.bounded else None,
    )
    frontend_key = (source,)
    precondition_key = (source, frozen_pre, *pre_knobs)
    template_key = (source, options.degree, options.conjuncts)
    pairs_key = (*precondition_key, options.degree, options.conjuncts)
    if options.translation == "putinar":
        translation_knobs = ("putinar", options.upsilon, options.with_witness, options.encode_sos)
    else:
        # Handelman ignores Upsilon and the SOS encoding: leaving them out of
        # the fingerprint lets requests differing only in those share the stage.
        translation_knobs = ("handelman", options.with_witness)
    translation_key = (*pairs_key, *translation_knobs)
    task_key = (*translation_key, objective_fingerprint(objective))
    return ReductionPlan(
        source=source,
        precondition=precondition,
        objective=objective,
        options=options,
        frontend_key=frontend_key,
        precondition_key=precondition_key,
        template_key=template_key,
        pairs_key=pairs_key,
        translation_key=translation_key,
        task_key=task_key,
        program=parsed,
    )
