"""Batch synthesis orchestration.

This package turns the one-program-at-a-time algorithms of
:mod:`repro.invariants.synthesis` into a throughput-oriented service layer:

* :class:`~repro.pipeline.jobs.SynthesisJob` — a picklable description of one
  (program, precondition, objective, options) synthesis request.
* :class:`~repro.pipeline.cache.TaskCache` — memoises the exact Step 1-3
  reductions, so jobs sharing a reduction are translated once.
* :class:`~repro.pipeline.pipeline.SynthesisPipeline` — accepts many jobs,
  deduplicates their reductions, fans the numeric Step-4 solves out across a
  process pool and streams per-job
  :class:`~repro.invariants.result.SynthesisResult` values back in submission
  order.

The pipeline is the substrate the benchmark runner (``python -m repro.bench``)
and the batch examples build on; see ``DESIGN.md`` for how it relates to the
paper's Steps 1-4.
"""

from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob, job_from_benchmark
from repro.pipeline.pipeline import PipelineOutcome, SynthesisPipeline

__all__ = [
    "PipelineOutcome",
    "SynthesisJob",
    "SynthesisPipeline",
    "TaskCache",
    "job_from_benchmark",
]
