"""Batch synthesis orchestration.

This package turns the one-program-at-a-time algorithms of
:mod:`repro.invariants.synthesis` into a throughput-oriented service layer:

* :class:`~repro.pipeline.jobs.SynthesisJob` — a picklable description of one
  (program, precondition, objective, options) synthesis request.
* :class:`~repro.pipeline.cache.TaskCache` — memoises the exact Step 1-3
  reductions, so jobs sharing a reduction are translated once.
* :class:`~repro.pipeline.pipeline.SynthesisPipeline` — accepts many jobs,
  deduplicates their reductions, fans the numeric Step-4 solves out across a
  process pool and streams per-job
  :class:`~repro.invariants.result.SynthesisResult` values back in submission
  order.

Since the service-API refactor the pipeline is a thin adapter over
:class:`repro.api.Engine`, which is what the benchmark runner
(``python -m repro.bench``) and the batch examples build on directly; new
code should prefer the engine (typed requests, JSON round-trip, out-of-order
streaming, structured errors).  See ``DESIGN.md`` for how both relate to the
paper's Steps 1-4.
"""

from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob, job_from_benchmark
from repro.pipeline.pipeline import PipelineOutcome, SynthesisPipeline

__all__ = [
    "PipelineOutcome",
    "SynthesisJob",
    "SynthesisPipeline",
    "TaskCache",
    "job_from_benchmark",
]
