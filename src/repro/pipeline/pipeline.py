"""The batch synthesis pipeline: dedupe reductions, fan out solves, stream results.

:class:`SynthesisPipeline` is the orchestration layer between many
(program, precondition, objective) jobs and the per-program algorithms of
:mod:`repro.invariants.synthesis`:

1. **Reduce** — every job's Step 1-3 reduction is built through a
   :class:`~repro.pipeline.cache.TaskCache`, so jobs sharing a reduction are
   translated exactly once.  Reductions run in the submitting process, where
   they share the interned-monomial flyweight table.
2. **Solve** — the numeric Step-4 solves are independent of each other, so
   with ``workers > 1`` they are fanned out across a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Only the (picklable)
   quadratic system travels to the worker and only the small
   :class:`~repro.solvers.base.SolverResult` travels back.  Jobs whose
   reduction *and* solver coincide share a single solve.
3. **Stream** — per-job :class:`~repro.pipeline.pipeline.PipelineOutcome`
   values are yielded in submission order as soon as they are ready, each
   carrying the same :class:`~repro.invariants.result.SynthesisResult` a
   sequential :func:`~repro.invariants.synthesis.weak_inv_synth` call would
   have produced (both go through
   :func:`~repro.invariants.synthesis.result_from_solution`).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.invariants.result import SynthesisResult
from repro.invariants.synthesis import SynthesisTask, result_from_solution
from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.portfolio import make_solver


def _solve_system(solver: Solver, system) -> tuple[SolverResult, float]:
    """Worker entry point: run one Step-4 solve (module-level for picklability).

    Returns the result together with the solve's own compute time, so pooled
    runs report per-job solver time rather than queue latency.
    """
    start = time.perf_counter()
    result = solver.solve(system)
    return result, time.perf_counter() - start


@dataclass
class PipelineOutcome:
    """Everything the pipeline knows about one finished job.

    ``result`` is ``None`` for reduction-only runs (``solve=False``) and for
    jobs that failed; failures carry the formatted traceback in ``error`` so a
    bad job never takes the rest of the batch down.
    """

    job: SynthesisJob
    task: SynthesisTask | None
    result: SynthesisResult | None
    reduction_seconds: float
    solve_seconds: float | None = None
    from_cache: bool = False
    shared_solve: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SynthesisPipeline:
    """Run many synthesis jobs with shared reductions and parallel solves.

    Parameters
    ----------
    solver:
        An explicit Step-4 solver applied to every job.  When ``None`` (the
        default) each job's solver is resolved from its own synthesis
        options' ``strategy``/``portfolio`` knobs through
        :func:`~repro.solvers.portfolio.make_solver` — so a single batch can
        mix penalty, alternating and portfolio solves.  Solvers must be
        picklable when ``workers > 1``; every solver in :mod:`repro.solvers`
        is.
    workers:
        ``0`` or ``1`` solves sequentially in-process; ``n > 1`` fans solves
        out over a pool of ``n`` worker processes.  Portfolio jobs reuse that
        same fan-out: each pooled worker races its job's strategies inside
        the worker process.
    cache:
        The Step 1-3 task cache; pass a shared instance to reuse reductions
        across several pipeline runs.
    solver_options:
        The :class:`~repro.solvers.base.SolverOptions` given to per-job
        solvers resolved from job options (ignored for an explicit
        ``solver``).
    """

    def __init__(
        self,
        solver: Solver | None = None,
        workers: int = 0,
        cache: TaskCache | None = None,
        solver_options: SolverOptions | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.solver = solver
        self.solver_options = solver_options
        self.workers = workers
        self.cache = cache if cache is not None else TaskCache()

    def _solver_for(self, job: SynthesisJob) -> Solver:
        """The solver an individual job runs under (explicit or options-derived)."""
        if self.solver is not None:
            return self.solver
        return make_solver(
            job.options.strategy, options=self.solver_options, portfolio=job.options.portfolio
        )

    # -- reduction --------------------------------------------------------------

    def reduce(
        self, jobs: Iterable[SynthesisJob]
    ) -> list[tuple[SynthesisJob, SynthesisTask | None, float, bool, str | None]]:
        """Run (or reuse) every job's Step 1-3 reduction.

        Returns one ``(job, task, seconds, from_cache, error)`` tuple per job,
        in submission order.  ``task`` is ``None`` when the reduction raised.
        """
        reduced = []
        for job in jobs:
            start = time.perf_counter()
            try:
                task, from_cache = self.cache.get_or_build(job)
                error = None
            except Exception:
                task, from_cache = None, False
                error = traceback.format_exc()
            reduced.append((job, task, time.perf_counter() - start, from_cache, error))
        return reduced

    # -- full runs --------------------------------------------------------------

    def run(self, jobs: Iterable[SynthesisJob], solve: bool = True) -> list[PipelineOutcome]:
        """Run the whole batch and return outcomes in submission order."""
        return list(self.stream(jobs, solve=solve))

    def stream(self, jobs: Iterable[SynthesisJob], solve: bool = True) -> Iterator[PipelineOutcome]:
        """Run the batch, yielding each job's outcome as soon as it is ready.

        Outcomes are yielded in submission order.  With ``workers > 1`` the
        Step-4 solves execute concurrently in a process pool while this
        generator assembles and yields finished results.
        """
        reduced = self.reduce(list(jobs))
        if not solve:
            for job, task, seconds, from_cache, error in reduced:
                yield PipelineOutcome(
                    job=job,
                    task=task,
                    result=None,
                    reduction_seconds=seconds,
                    from_cache=from_cache,
                    error=error,
                )
            return
        if self.workers > 1:
            yield from self._stream_pooled(reduced)
        else:
            yield from self._stream_sequential(reduced)

    # -- sequential back-end ----------------------------------------------------

    def _stream_sequential(self, reduced: Sequence[tuple]) -> Iterator[PipelineOutcome]:
        solved: dict[tuple, SolverResult] = {}
        for job, task, seconds, from_cache, error in reduced:
            if error is not None:
                yield PipelineOutcome(
                    job=job,
                    task=task,
                    result=None,
                    reduction_seconds=seconds,
                    from_cache=from_cache,
                    error=error,
                )
                continue
            key = job.solve_key()
            shared = key in solved
            try:
                if shared:
                    solve_result, solve_seconds = solved[key]
                else:
                    solve_result, solve_seconds = _solve_system(self._solver_for(job), task.system)
            except Exception:
                yield PipelineOutcome(
                    job=job,
                    task=task,
                    result=None,
                    reduction_seconds=seconds,
                    from_cache=from_cache,
                    error=traceback.format_exc(),
                )
                continue
            solved[key] = (solve_result, solve_seconds)
            yield self._outcome(job, task, seconds, solve_seconds, from_cache, shared, solve_result)

    # -- process-pool back-end ---------------------------------------------------

    def _stream_pooled(self, reduced: Sequence[tuple]) -> Iterator[PipelineOutcome]:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures: dict[tuple, Future] = {}
            for job, task, _, _, error in reduced:
                if error is not None:
                    continue
                key = job.solve_key()
                if key not in futures:
                    futures[key] = pool.submit(_solve_system, self._solver_for(job), task.system)
            seen: set[tuple] = set()
            for job, task, seconds, from_cache, error in reduced:
                if error is not None:
                    yield PipelineOutcome(
                        job=job,
                        task=task,
                        result=None,
                        reduction_seconds=seconds,
                        from_cache=from_cache,
                        error=error,
                    )
                    continue
                key = job.solve_key()
                shared = key in seen
                seen.add(key)
                try:
                    solve_result, solve_seconds = futures[key].result()
                except Exception:
                    yield PipelineOutcome(
                        job=job,
                        task=task,
                        result=None,
                        reduction_seconds=seconds,
                        from_cache=from_cache,
                        shared_solve=shared,
                        error=traceback.format_exc(),
                    )
                    continue
                yield self._outcome(job, task, seconds, solve_seconds, from_cache, shared, solve_result)

    # -- assembly ----------------------------------------------------------------

    def _outcome(
        self,
        job: SynthesisJob,
        task: SynthesisTask,
        reduction_seconds: float,
        solve_seconds: float,
        from_cache: bool,
        shared_solve: bool,
        solve_result: SolverResult,
    ) -> PipelineOutcome:
        task.statistics["time_solver"] = solve_seconds
        result = result_from_solution(task, solve_result)
        return PipelineOutcome(
            job=job,
            task=task,
            result=result,
            reduction_seconds=reduction_seconds,
            solve_seconds=solve_seconds,
            from_cache=from_cache,
            shared_solve=shared_solve,
            error=None,
        )
