"""The batch synthesis pipeline, as a thin adapter over the service Engine.

:class:`SynthesisPipeline` predates the typed :mod:`repro.api` surface; it is
kept as the job-oriented batch view over the same execution core:

1. **Reduce** — every job's Step 1-3 reduction is built through the engine's
   :class:`~repro.pipeline.cache.TaskCache`, so jobs sharing a reduction are
   translated exactly once.
2. **Solve** — jobs become :class:`~repro.api.request.SynthesisRequest`
   values and run on a private :class:`~repro.api.engine.Engine`; with
   ``workers > 1`` the Step-4 solves fan out across the engine's process
   pool, and jobs whose reduction *and* solver coincide share a single solve.
3. **Stream** — per-job :class:`PipelineOutcome` values are yielded in
   submission order as soon as they are ready, each carrying the same
   :class:`~repro.invariants.result.SynthesisResult` a sequential
   :func:`~repro.invariants.synthesis.weak_inv_synth` call would have
   produced (both go through
   :func:`~repro.invariants.synthesis.result_from_solution`).

New code should prefer :class:`repro.api.Engine` directly — it adds typed
requests, JSON round-trip, out-of-order streaming and structured errors.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.invariants.result import SynthesisResult
from repro.invariants.synthesis import SynthesisTask
from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob
from repro.solvers.base import Solver, SolverOptions


@dataclass
class PipelineOutcome:
    """Everything the pipeline knows about one finished job.

    ``result`` is ``None`` for reduction-only runs (``solve=False``) and for
    jobs that failed; failures carry the formatted traceback in ``error`` so a
    bad job never takes the rest of the batch down.
    """

    job: SynthesisJob
    task: SynthesisTask | None
    result: SynthesisResult | None
    reduction_seconds: float
    solve_seconds: float | None = None
    from_cache: bool = False
    shared_solve: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SynthesisPipeline:
    """Run many synthesis jobs with shared reductions and parallel solves.

    Parameters
    ----------
    solver:
        An explicit Step-4 solver applied to every job.  When ``None`` (the
        default) each job's solver is resolved from its own synthesis
        options' ``strategy``/``portfolio`` knobs — so a single batch can
        mix penalty, alternating and portfolio solves.  Solvers must be
        picklable when ``workers > 1``; every solver in :mod:`repro.solvers`
        is.
    workers:
        ``0`` or ``1`` solves sequentially in-process; ``n > 1`` fans solves
        out over the engine's pool of ``n`` worker processes.  Portfolio jobs
        reuse that same fan-out: each pooled worker races its job's
        strategies inside the worker process.
    cache:
        The Step 1-3 task cache; pass a shared instance to reuse reductions
        across several pipeline runs.
    solver_options:
        The :class:`~repro.solvers.base.SolverOptions` given to per-job
        solvers resolved from job options (ignored for an explicit
        ``solver``).
    """

    def __init__(
        self,
        solver: Solver | None = None,
        workers: int = 0,
        cache: TaskCache | None = None,
        solver_options: SolverOptions | None = None,
    ) -> None:
        from repro.api.engine import Engine

        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.solver = solver
        self.solver_options = solver_options
        self.workers = workers
        self.engine = Engine(
            workers=workers,
            cache=cache,
            solver=solver,
            solver_options=solver_options,
            # Step-4-only fan-out: pipeline consumers read the in-process
            # ``result``/``task`` extras, which the whole-job wire path
            # (executor="process") deliberately does not carry.
            executor="solve-process" if workers > 1 else "thread",
        )
        self.cache = self.engine.cache

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut down the underlying engine's worker pools.

        A pipeline can be reused across many ``run``/``stream`` calls (its
        task cache persists); call this — or use the pipeline as a context
        manager — when done, so the pools don't outlive the batch work.
        """
        self.engine.close()

    def __enter__(self) -> "SynthesisPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- reduction --------------------------------------------------------------

    def reduce(
        self, jobs: Iterable[SynthesisJob]
    ) -> list[tuple[SynthesisJob, SynthesisTask | None, float, bool, str | None]]:
        """Run (or reuse) every job's Step 1-3 reduction.

        Returns one ``(job, task, seconds, from_cache, error)`` tuple per job,
        in submission order.  ``task`` is ``None`` when the reduction raised.
        """
        reduced = []
        for job in jobs:
            start = time.perf_counter()
            try:
                task, from_cache = self.cache.get_or_build(job)
                error = None
            except Exception:
                task, from_cache = None, False
                error = traceback.format_exc()
            reduced.append((job, task, time.perf_counter() - start, from_cache, error))
        return reduced

    # -- full runs --------------------------------------------------------------

    def run(self, jobs: Iterable[SynthesisJob], solve: bool = True) -> list[PipelineOutcome]:
        """Run the whole batch and return outcomes in submission order."""
        return list(self.stream(jobs, solve=solve))

    def stream(self, jobs: Iterable[SynthesisJob], solve: bool = True) -> Iterator[PipelineOutcome]:
        """Run the batch, yielding each job's outcome as soon as it is ready.

        Outcomes are yielded in submission order.  With ``workers > 1`` the
        Step-4 solves execute concurrently while this generator assembles and
        yields finished results.
        """
        jobs = list(jobs)
        # A job whose request cannot even be constructed (e.g. degree="auto"
        # with solve=False) must become a per-job error outcome, not abort
        # the batch: the pipeline shares the engine's contract that one bad
        # request never takes the rest down.
        prepared: list[tuple[SynthesisJob, object | None, str | None]] = []
        for job in jobs:
            try:
                prepared.append((job, self._request_for(job, solve), None))
            except Exception:
                prepared.append((job, None, traceback.format_exc()))
        requests = [request for _, request, _ in prepared if request is not None]
        try:
            responses = iter(self.engine.map(requests, ordered=True))
            for job, request, error in prepared:
                if request is None:
                    yield PipelineOutcome(
                        job=job, task=None, result=None, reduction_seconds=0.0, error=error
                    )
                else:
                    yield self._outcome_from_response(job, next(responses), solve)
        finally:
            # Scope the worker pools to this batch (the historical contract:
            # the old implementation opened its process pool per stream call).
            # The engine and its caches stay usable for the next run.
            self.engine.shutdown_pools()

    # -- request/response adaptation ---------------------------------------------

    def _request_for(self, job: SynthesisJob, solve: bool):
        from repro.api.request import SynthesisRequest

        return SynthesisRequest(
            program=job.source,
            mode="weak",
            precondition=job.precondition,
            objective=job.objective,
            options=job.options,
            request_id=job.name,
            reduce_only=not solve,
        )

    def _outcome_from_response(self, job: SynthesisJob, response, solve: bool) -> PipelineOutcome:
        error = None
        if response.error is not None:
            error = response.error.traceback or f"{response.error.type}: {response.error.message}"
        return PipelineOutcome(
            job=job,
            task=response.task,
            result=response.result,
            reduction_seconds=response.timings.get("reduction_seconds", 0.0),
            solve_seconds=response.timings.get("solve_seconds") if solve else None,
            from_cache=response.from_cache,
            shared_solve=response.shared_solve,
            error=error,
        )
