"""Memoisation of Step 1-3 reductions shared between batched jobs.

Since the staged-reduction refactor the :class:`TaskCache` is a task-level
view over a multi-level :class:`~repro.reduction.cache.StageCache`: each
job's reduction is compiled into a :class:`~repro.reduction.plan.ReductionPlan`
and executed stage by stage against the shared stage cache, so two jobs that
agree on any stage *prefix* (same program at a different degree; same
constraint pairs at a different Upsilon) reuse the shared stages even when
their whole-task keys differ.  Jobs with equal task keys additionally share
the assembled :class:`~repro.reduction.task.SynthesisTask` object itself —
the historical whole-task contract the engine's solve dedup relies on.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.reduction.cache import StageCache
from repro.reduction.plan import ReductionPlan, ReductionReport, compile_plan
from repro.reduction.task import STAGE_NAMES, SynthesisTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invariants.translation import TranslationPool
    from repro.pipeline.jobs import SynthesisJob


#: The all-cached report returned for whole-task hits.
_TASK_HIT_REPORT = ReductionReport(stages=(), task_from_cache=True)


class TaskCache:
    """A thread-safe cache from job reduction keys to built synthesis tasks.

    The reduction (template construction, constraint-pair generation and the
    Putinar/Handelman translation) is the expensive exact-arithmetic part of
    the pipeline; many batched jobs — parameter sweeps, repeated solver runs,
    re-submitted benchmarks — share it verbatim, and many more share a prefix
    of it.  Whole-task builds of distinct keys run concurrently; builds of
    the same key are serialised so the reduction is performed exactly once,
    and the underlying :class:`~repro.reduction.cache.StageCache` serialises
    per-stage builds the same way.

    ``max_entries`` bounds both the task table and every stage table (oldest
    entries evicted first) so a long-lived holder — e.g. the module-level
    default engine behind the paper-named functions — cannot grow without
    bound; ``None`` (the default) keeps the historical unbounded behaviour.
    """

    def __init__(self, max_entries: int | None = None, stages: StageCache | None = None) -> None:
        self.max_entries = max_entries
        self.stages = stages if stages is not None else StageCache(max_entries=max_entries)
        self._tasks: dict[tuple, SynthesisTask] = {}
        # The job that built each entry is pinned alongside its task: reduction
        # keys identify Precondition *objects* by id(), so the cache must keep
        # those objects alive for as long as their keys are retained (otherwise
        # a recycled id could alias a semantically different precondition).
        self._jobs: dict[tuple, "SynthesisJob"] = {}
        self._key_locks: dict[tuple, threading.Lock] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._tasks)

    def get_or_build(
        self, job: "SynthesisJob", translation_pool: "TranslationPool | None" = None
    ) -> tuple[SynthesisTask, bool]:
        """The task for ``job``, building it on first use.

        Returns ``(task, from_cache)``; ``from_cache`` reports a *whole-task*
        hit (stage-level reuse shows up in :meth:`stats` instead).
        """
        task, from_cache, _ = self.get_or_build_with_report(
            job, translation_pool=translation_pool
        )
        return task, from_cache

    def get_or_build_with_report(
        self, job: "SynthesisJob", translation_pool: "TranslationPool | None" = None
    ) -> tuple[SynthesisTask, bool, ReductionReport]:
        """Like :meth:`get_or_build`, plus the per-stage execution report.

        For a whole-task hit the report carries no stage entries and
        ``task_from_cache=True``; otherwise it records, per stage, the build
        time and whether the stage came from the shared stage cache.
        """
        plan = self.plan_for(job)
        key = plan.task_key
        with self._lock:
            cached = self._tasks.get(key)
            if cached is not None:
                self.hits += 1
                return cached, True, _TASK_HIT_REPORT
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                cached = self._tasks.get(key)
                if cached is not None:
                    self.hits += 1
                    return cached, True, _TASK_HIT_REPORT
            start = time.perf_counter()
            task, report = plan.execute(
                cache=self.stages, translation_pool=translation_pool
            )
            elapsed = time.perf_counter() - start
            with self._lock:
                self._tasks[key] = task
                self._jobs[key] = job
                self.misses += 1
                self.build_seconds += elapsed
                if self.max_entries is not None:
                    # FIFO bound (dicts preserve insertion order): evict the
                    # oldest task together with its pinned job and key lock.
                    while len(self._tasks) > self.max_entries:
                        oldest = next(iter(self._tasks))
                        self._tasks.pop(oldest)
                        self._jobs.pop(oldest, None)
                        self._key_locks.pop(oldest, None)
            return task, False, report

    def plan_for(self, job: "SynthesisJob") -> ReductionPlan:
        """The staged reduction plan of one job (compiled fresh, cheap)."""
        return compile_plan(job.source, job.precondition, job.objective, job.options)

    def stats(self) -> dict[str, float]:
        """Task-level and per-stage hit/miss counters (for reports).

        Task-level counters keep their historical names (``entries``,
        ``hits``, ``misses``, ``build_seconds``); the per-stage counters of
        the underlying stage cache are merged in under ``stage_*`` keys
        (e.g. ``stage_translation_hits``).
        """
        with self._lock:
            stats = {
                "entries": float(len(self._tasks)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "build_seconds": self.build_seconds,
            }
        stats.update(self.stages.stats())
        return stats

    def clear(self) -> None:
        with self._lock:
            self._tasks.clear()
            self._jobs.clear()
            self._key_locks.clear()
            self.hits = 0
            self.misses = 0
            self.build_seconds = 0.0
        self.stages.clear()


__all__ = ["STAGE_NAMES", "StageCache", "TaskCache"]
