"""Memoisation of Step 1-3 reductions shared between batched jobs."""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.invariants.synthesis import SynthesisTask, build_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.jobs import SynthesisJob


class TaskCache:
    """A thread-safe cache from job reduction keys to built synthesis tasks.

    The reduction (template construction, constraint-pair generation and the
    Putinar/Handelman translation) is the expensive exact-arithmetic part of
    the pipeline; many batched jobs — parameter sweeps, repeated solver runs,
    re-submitted benchmarks — share it verbatim.  Builds of distinct keys run
    concurrently; builds of the same key are serialised so the reduction is
    performed exactly once.

    ``max_entries`` bounds the cache (oldest entries evicted first) so a
    long-lived holder — e.g. the module-level default engine behind the
    paper-named functions — cannot grow without bound; ``None`` (the
    default) keeps the historical unbounded behaviour.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self.max_entries = max_entries
        self._tasks: dict[tuple, SynthesisTask] = {}
        # The job that built each entry is pinned alongside its task: reduction
        # keys identify Precondition *objects* by id(), so the cache must keep
        # those objects alive for as long as their keys are retained (otherwise
        # a recycled id could alias a semantically different precondition).
        self._jobs: dict[tuple, "SynthesisJob"] = {}
        self._key_locks: dict[tuple, threading.Lock] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._tasks)

    def get_or_build(self, job: "SynthesisJob") -> tuple[SynthesisTask, bool]:
        """The task for ``job``, building it on first use.

        Returns ``(task, from_cache)``.
        """
        key = job.reduction_key()
        with self._lock:
            cached = self._tasks.get(key)
            if cached is not None:
                self.hits += 1
                return cached, True
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                cached = self._tasks.get(key)
                if cached is not None:
                    self.hits += 1
                    return cached, True
            start = time.perf_counter()
            task = build_task(job.source, job.precondition, job.objective, job.options)
            elapsed = time.perf_counter() - start
            with self._lock:
                self._tasks[key] = task
                self._jobs[key] = job
                self.misses += 1
                self.build_seconds += elapsed
                if self.max_entries is not None:
                    # FIFO bound (dicts preserve insertion order): evict the
                    # oldest task together with its pinned job and key lock.
                    while len(self._tasks) > self.max_entries:
                        oldest = next(iter(self._tasks))
                        self._tasks.pop(oldest)
                        self._jobs.pop(oldest, None)
                        self._key_locks.pop(oldest, None)
            return task, False

    def stats(self) -> dict[str, float]:
        """Hit/miss counters and cumulative build time (for reports)."""
        with self._lock:
            return {
                "entries": float(len(self._tasks)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "build_seconds": self.build_seconds,
            }

    def clear(self) -> None:
        with self._lock:
            self._tasks.clear()
            self._jobs.clear()
            self._key_locks.clear()
            self.hits = 0
            self.misses = 0
            self.build_seconds = 0.0
