"""Job descriptors consumed by the batch synthesis pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.invariants.synthesis import SynthesisOptions
from repro.reduction.plan import freeze_precondition, objective_fingerprint
from repro.spec.objectives import Objective
from repro.spec.preconditions import Precondition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.suite.base import Benchmark


@dataclass(frozen=True)
class SynthesisJob:
    """One batched synthesis request: a program plus its specification.

    All fields are picklable, so jobs can cross process boundaries.  The
    program is carried as source text (not a parsed AST) because parsing is a
    negligible fraction of the reduction and text keys make the task cache
    trivially correct.
    """

    name: str
    source: str
    precondition: Mapping[str, Mapping[int, str]] | Precondition | None = None
    objective: Objective | None = None
    options: SynthesisOptions = field(default_factory=SynthesisOptions)

    def reduction_key(self) -> tuple:
        """Hashable key identifying this job's Step 1-3 reduction.

        Jobs with equal keys produce identical
        :class:`~repro.invariants.synthesis.SynthesisTask` objects, so the
        pipeline translates the first and reuses it for the rest.  Solver-side
        option knobs (``strategy``/``portfolio``) are excluded: jobs differing
        only in their Step-4 back-end still share one reduction.
        """
        return (
            self.source,
            freeze_precondition(self.precondition),
            self.options.reduction_fingerprint(),
            objective_fingerprint(self.objective),
        )

    def solve_key(self) -> tuple:
        """Hashable key identifying this job's Step-4 solve.

        Extends :meth:`reduction_key` with the solver strategy, so the
        pipeline deduplicates solves only between jobs that would run the
        same back-end on the same system.
        """
        return (*self.reduction_key(), self.options.strategy, self.options.portfolio)


def job_from_benchmark(benchmark: "Benchmark", quick: bool = False, **option_overrides) -> SynthesisJob:
    """Build a :class:`SynthesisJob` from a suite :class:`~repro.suite.base.Benchmark`.

    ``quick`` applies the CI preset (multiplier degree Upsilon = 1), matching
    the historical behaviour of the benchmark runner; further keyword
    arguments override individual synthesis options.
    """
    if quick:
        option_overrides.setdefault("upsilon", 1)
    return SynthesisJob(
        name=benchmark.name,
        source=benchmark.source,
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(**option_overrides),
    )
