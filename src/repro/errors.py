"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch every library-specific failure with a single ``except``
clause while still letting genuine programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PolynomialError(ReproError):
    """Raised for invalid polynomial operations (e.g. division by a non-constant)."""


class ParseError(ReproError):
    """Raised when program source text cannot be tokenized or parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class ValidationError(ReproError):
    """Raised when a parsed program violates the syntactic assumptions of Appendix A."""


class SemanticsError(ReproError):
    """Raised by the interpreter for runtime failures (e.g. calling an unknown function)."""


class SpecificationError(ReproError):
    """Raised for malformed pre-conditions, post-conditions or objectives."""


class SynthesisError(ReproError):
    """Raised when the invariant-synthesis pipeline receives inconsistent inputs."""


class SolverError(ReproError):
    """Raised when a Step-4 solver fails in a way that is not simply 'infeasible'."""


class InfeasibleError(SolverError):
    """Raised when a solver proves (or strongly suspects) that no solution exists."""
