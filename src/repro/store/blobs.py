"""The content-addressed blob store: process-safe, disk-persistent, write-once.

A :class:`BlobStore` maps ``(namespace, key)`` to one JSON document on disk,
where ``key`` is a content hash (see :func:`content_key`) and ``namespace``
partitions the deployments' artifact kinds (``responses``, ``solves``,
``certificates``).  The layout is sharded by key prefix so no directory grows
unbounded::

    <root>/<namespace>/<key[:2]>/<key>.json
    <root>/corpus/solve_corpus.jsonl          (the schedule corpus rides along)

Three properties make the store safe to share between concurrent worker
processes without any locking:

* **Atomic write-once blobs.**  A put writes the full document to a unique
  temp file in the destination shard, fsyncs it and publishes with one
  ``os.replace`` — readers only ever observe a missing blob or a complete
  one, never a half-written prefix.  Two processes racing on the same key
  both write complete files; the last rename wins and the content is
  identical by construction (the key *is* the content hash of its inputs).
* **Corrupt blobs degrade to misses.**  A blob that fails to read, decode or
  validate (torn by a crashed writer before the rename discipline existed,
  bit-rotted, hand-truncated) is counted, unlinked best-effort so a future
  put can repair it, and reported as a miss — never an exception.  This is
  the *miss-and-repair boundary* every namespace view relies on.
* **Advisory writes.**  A full disk or unwritable root must never fail the
  request whose artifact is being persisted; failed puts are counted and
  dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from typing import Iterator

#: Blob payload layout version; bump on incompatible changes so readers of a
#: newer codebase treat foreign-era blobs as misses instead of guessing.
STORE_SCHEMA_VERSION = 1

#: Environment override for :func:`default_store_root`.
STORE_ROOT_ENV = "REPRO_STORE_ROOT"

#: Keys are content hashes rendered as lowercase hex (defensive: a malformed
#: key must never escape the shard layout or traverse paths).
_KEY_RE = re.compile(r"^[0-9a-f]{8,128}$")
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def default_store_root() -> str:
    """Where a deployment stores its artifacts when the caller names no root.

    ``$REPRO_STORE_ROOT`` when set, else a per-user cache location — stores
    are meant to outlive processes, so a tmpdir would defeat them.
    """
    override = os.environ.get(STORE_ROOT_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "store")


def content_key(*parts: object) -> str:
    """The sha256 content hash of a tuple of JSON-able parts (the blob key).

    Parts are serialised with sorted keys and ``default=str`` so option
    tuples, ``Fraction``s and other reprs participate deterministically;
    the same logical inputs hash identically across processes and restarts.
    """
    payload = json.dumps(parts, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class BlobStore:
    """A process-safe content-addressed store of JSON blobs under one root.

    All methods are advisory and exception-free towards the caller: a
    filesystem failure or corrupt blob is counted in :meth:`stats` and
    surfaces as a miss (``get``) or a dropped write (``put``).  Only
    programming errors — an invalid namespace or a non-hex key — raise.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        self._lock = threading.Lock()
        self._counters = {
            "store_blob_reads": 0,
            "store_blob_writes": 0,
            "store_blob_write_skips": 0,
            "store_blob_write_failures": 0,
            "store_blob_corrupt": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlobStore({self.root!r})"

    # -- paths -------------------------------------------------------------------

    @property
    def corpus_path(self) -> str:
        """The schedule corpus of this deployment (one data directory per root)."""
        return os.path.join(self.root, "corpus", "solve_corpus.jsonl")

    def path_for(self, namespace: str, key: str) -> str:
        """The on-disk path of one blob (validates namespace and key)."""
        if not _NAMESPACE_RE.match(namespace):
            raise ValueError(f"invalid store namespace {namespace!r}")
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid store key {key!r} (expected lowercase hex)")
        return os.path.join(self.root, namespace, key[:2], f"{key}.json")

    # -- writing -----------------------------------------------------------------

    def put(self, namespace: str, key: str, payload: dict, overwrite: bool = False) -> bool:
        """Persist one blob atomically; returns whether a new file was written.

        Write-once by default: an existing blob is left untouched (the key is
        a content hash, so it already holds this payload) and the put counts
        as a skip.  ``overwrite=True`` republishes — still atomic, used when
        a repair round replaces a previously stored solve.
        """
        try:
            path = self.path_for(namespace, key)
        except ValueError:
            raise
        if not overwrite and os.path.exists(path):
            self._bump("store_blob_write_skips")
            return False
        data = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=shard, prefix=".tmp-", suffix=".json")
            try:
                os.write(fd, data)
                os.fsync(fd)  # data durable before the rename publishes it
            finally:
                os.close(fd)
            os.replace(tmp_path, path)  # atomic publish: readers never see a prefix
        except OSError:
            self._bump("store_blob_write_failures")
            try:
                os.unlink(tmp_path)  # type: ignore[possibly-undefined]
            except (OSError, NameError):
                pass
            return False
        self._bump("store_blob_writes")
        return True

    # -- reading -----------------------------------------------------------------

    def get(self, namespace: str, key: str) -> dict | None:
        """The blob for ``(namespace, key)``, or ``None`` on miss *or* corruption.

        A blob that fails to decode (or decodes to a non-object) is unlinked
        best-effort — the miss-and-repair boundary: the next put rewrites it.
        """
        path = self.path_for(namespace, key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        self._bump("store_blob_reads")
        try:
            payload = json.loads(data)
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            self.discard(namespace, key, corrupt=True)
            return None
        return payload

    def contains(self, namespace: str, key: str) -> bool:
        """Whether a blob exists on disk (no validation)."""
        return os.path.exists(self.path_for(namespace, key))

    def discard(self, namespace: str, key: str, corrupt: bool = False) -> None:
        """Drop one blob best-effort (used to repair corrupt/stale entries)."""
        if corrupt:
            self._bump("store_blob_corrupt")
        try:
            os.unlink(self.path_for(namespace, key))
        except OSError:
            pass

    def keys(self, namespace: str) -> Iterator[str]:
        """Every blob key currently stored under ``namespace``."""
        if not _NAMESPACE_RE.match(namespace):
            raise ValueError(f"invalid store namespace {namespace!r}")
        base = os.path.join(self.root, namespace)
        try:
            shards = sorted(os.listdir(base))
        except OSError:
            return
        for shard in shards:
            try:
                names = sorted(os.listdir(os.path.join(base, shard)))
            except OSError:
                continue
            for name in names:
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield name[: -len(".json")]

    def count(self, namespace: str) -> int:
        """Number of blobs stored under ``namespace`` (directory scan)."""
        return sum(1 for _ in self.keys(namespace))

    def usage(self, namespaces: tuple[str, ...] | None = None) -> dict[str, float]:
        """Per-namespace blob and byte counts of what is on disk right now.

        Walks the root (so it reflects *every* process writing to it, not
        just this handle) and reports ``store_<ns>_blobs`` /
        ``store_<ns>_bytes`` per namespace plus ``store_total_bytes``.
        In-flight temp files are excluded; a namespace directory that does
        not exist yet reports zeros.  Advisory like everything else here: an
        unreadable entry is skipped, never an exception.
        """
        if namespaces is None:
            try:
                namespaces = tuple(
                    sorted(
                        entry
                        for entry in os.listdir(self.root)
                        if _NAMESPACE_RE.match(entry)
                        and entry != "corpus"
                        and os.path.isdir(os.path.join(self.root, entry))
                    )
                )
            except OSError:
                namespaces = ()
        report: dict[str, float] = {}
        total_bytes = 0.0
        for namespace in namespaces:
            blobs = 0.0
            size = 0.0
            base = os.path.join(self.root, namespace)
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    if not name.endswith(".json") or name.startswith(".tmp-"):
                        continue
                    try:
                        size += float(os.path.getsize(os.path.join(dirpath, name)))
                    except OSError:
                        continue
                    blobs += 1.0
            report[f"store_{namespace}_blobs"] = blobs
            report[f"store_{namespace}_bytes"] = size
            total_bytes += size
        report["store_total_bytes"] = total_bytes
        return report

    # -- counters ----------------------------------------------------------------

    def _bump(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def stats(self) -> dict[str, float]:
        """Read/write/corruption counters of this process's store handle."""
        with self._lock:
            return {key: float(value) for key, value in self._counters.items()}
