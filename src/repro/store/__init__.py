"""repro.store — the persistent content-addressed artifact store.

One disk root per deployment holds every artifact the engine would otherwise
recompute: response envelopes, Step-4 solver results, exact certificates and
the schedule corpus — all keyed by stable content hashes, all shared between
concurrent worker processes, all surviving restarts.  See
:mod:`repro.store.blobs` for the crash-safety model and
:mod:`repro.store.views` for the namespaces the
:class:`~repro.api.engine.Engine` plugs into via ``Engine(store=...)``.
"""

from repro.store.blobs import (
    STORE_ROOT_ENV,
    STORE_SCHEMA_VERSION,
    BlobStore,
    content_key,
    default_store_root,
)
from repro.store.views import (
    CertificateStore,
    EngineStore,
    ResponseStore,
    SolveStore,
    open_store,
)

__all__ = [
    "BlobStore",
    "CertificateStore",
    "EngineStore",
    "ResponseStore",
    "STORE_ROOT_ENV",
    "STORE_SCHEMA_VERSION",
    "SolveStore",
    "content_key",
    "default_store_root",
    "open_store",
]
