"""Namespace views over the blob store: what the engine actually plugs into.

Each view owns one namespace of the shared :class:`~repro.store.blobs.BlobStore`
and speaks the JSON codec of its artifact kind:

* :class:`ResponseStore` — whole :class:`~repro.api.response.SynthesisResponse`
  envelopes keyed by the request's stable content hash.  A hit short-circuits
  the entire reduce-solve-verify path; the second request for the same
  program is served from disk, across restarts and worker processes.
* :class:`SolveStore` — Step-4 :class:`~repro.solvers.base.SolverResult`
  values keyed by the solve's stable content hash (the persistent sibling of
  the engine's in-memory solve-dedup table): requests differing only in
  their verification tier still share one persisted solve.
* :class:`CertificateStore` — exact rational
  :class:`~repro.certify.certificate.Certificate` documents, addressed by
  their own content fingerprint so any response can name (and any auditor
  re-load and re-check) the certificate that gated it.

Every ``load`` is guarded by the blob store's miss-and-repair boundary *and*
a codec guard of its own: a blob that decodes to JSON but no longer matches
the artifact schema (a foreign version, a hand-edited document) is discarded
and reported as a miss, never an exception.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Mapping

from repro.store.blobs import BlobStore, STORE_SCHEMA_VERSION, content_key, default_store_root

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import SynthesisRequest
    from repro.api.response import SynthesisResponse
    from repro.certify.certificate import Certificate
    from repro.solvers.base import SolverResult


class ResponseStore:
    """The ``responses`` namespace: request content hash -> response envelope."""

    namespace = "responses"

    def __init__(self, blobs: BlobStore) -> None:
        self.blobs = blobs

    @staticmethod
    def key_for(request: "SynthesisRequest", engine_solver_options: str | None = None) -> str:
        """The stable content hash of one request's *semantic* payload.

        ``request_id`` is excluded (a caller label, not an input); the
        engine's default solver options participate because they shape the
        solve when the request carries none of its own.
        """
        payload = request.to_dict()
        payload.pop("request_id", None)
        return content_key("response", STORE_SCHEMA_VERSION, payload, engine_solver_options)

    def load(self, key: str) -> "SynthesisResponse | None":
        payload = self.blobs.get(self.namespace, key)
        if payload is None or payload.get("v") != STORE_SCHEMA_VERSION:
            return None
        from repro.api.response import SynthesisResponse

        try:
            return SynthesisResponse.from_dict(payload.get("response"))
        except Exception:  # schema drift / hand-edited blob: miss-and-repair
            self.blobs.discard(self.namespace, key, corrupt=True)
            return None

    def store(self, key: str, response: "SynthesisResponse") -> bool:
        """Persist a response worth re-serving; returns whether a blob was written.

        Only verified successes are persisted: ``status="ok"`` and — when a
        verification tier ran — a passing verdict.  Errors, deadline-shaped
        ``no_invariant`` outcomes and rejected solutions must be recomputed,
        never replayed.
        """
        if response.status != "ok":
            return False
        if response.verification is not None and not response.verification.get("verified"):
            return False
        return self.blobs.put(
            self.namespace,
            key,
            {"v": STORE_SCHEMA_VERSION, "response": response.to_dict()},
        )


class SolveStore:
    """The ``solves`` namespace: solve content hash -> Step-4 solver result."""

    namespace = "solves"

    def __init__(self, blobs: BlobStore) -> None:
        self.blobs = blobs

    @staticmethod
    def key_for(request: "SynthesisRequest", scheduled: bool, solver_options: str) -> str:
        """The stable content hash of one Step-4 solve.

        Mirrors the engine's in-memory dedup key, rendered content-stable:
        the reduction inputs (program, precondition, objective, reduction
        fingerprint), the strategy line-up, whether a corpus scheduler may
        reorder the race, and the effective solver options.  Verification
        knobs are deliberately absent — ``verify="exact"`` and
        ``verify="none"`` share one persisted solve.
        """
        from repro.api.request import objective_to_dict, precondition_to_spec

        options = request.options
        payload = [
            request.program,
            precondition_to_spec(request.precondition),
            objective_to_dict(request.objective) if request.objective is not None else None,
            [str(knob) for knob in options.reduction_fingerprint()],
            options.strategy,
            list(options.portfolio),
            request.mode,
            scheduled,
            solver_options,
        ]
        return content_key("solve", STORE_SCHEMA_VERSION, payload)

    def load(self, key: str) -> "tuple[SolverResult, float] | None":
        """``(result, original_solve_seconds)`` or ``None`` on miss/corruption."""
        payload = self.blobs.get(self.namespace, key)
        if payload is None or payload.get("v") != STORE_SCHEMA_VERSION:
            return None
        from repro.solvers.base import SolverResult

        try:
            result = SolverResult.from_dict(payload.get("result"))
            seconds = float(payload.get("seconds", 0.0))
        except Exception:
            self.blobs.discard(self.namespace, key, corrupt=True)
            return None
        return result, seconds

    def store(
        self, key: str, result: "SolverResult", seconds: float, overwrite: bool = False
    ) -> bool:
        """Persist one feasible solve (repair rounds republish with ``overwrite``)."""
        if not result.feasible:
            return False
        return self.blobs.put(
            self.namespace,
            key,
            {"v": STORE_SCHEMA_VERSION, "result": result.to_dict(), "seconds": float(seconds)},
            overwrite=overwrite,
        )


class CertificateStore:
    """The ``certificates`` namespace: certificate fingerprint -> exact witness."""

    namespace = "certificates"

    def __init__(self, blobs: BlobStore) -> None:
        self.blobs = blobs

    def put(self, certificate: "Certificate | Mapping") -> tuple[str, bool]:
        """Persist one certificate under its own content fingerprint.

        Returns ``(fingerprint, wrote)``; the fingerprint is valid either way
        (an already-present blob holds the identical content) and equals
        :meth:`repro.certify.certificate.Certificate.fingerprint`.
        """
        from repro.certify.certificate import certificate_fingerprint

        payload = certificate if isinstance(certificate, Mapping) else certificate.to_dict()
        key = certificate_fingerprint(payload)
        wrote = self.blobs.put(
            self.namespace, key, {"v": STORE_SCHEMA_VERSION, "certificate": dict(payload)}
        )
        return key, wrote

    def load(self, key: str) -> "Certificate | None":
        payload = self.blobs.get(self.namespace, key)
        if payload is None or payload.get("v") != STORE_SCHEMA_VERSION:
            return None
        from repro.certify.certificate import Certificate

        try:
            return Certificate.from_dict(payload.get("certificate"))
        except Exception:
            self.blobs.discard(self.namespace, key, corrupt=True)
            return None


class EngineStore:
    """One deployment's persistent data directory, as the engine sees it.

    Bundles the blob store with its three namespace views and the schedule
    corpus path, so ``Engine(store=...)`` (or the HTTP server) needs exactly
    one handle — and two engines handed the same root transparently share
    every artifact kind across processes and restarts.
    """

    def __init__(self, blobs: BlobStore) -> None:
        self.blobs = blobs
        self.responses = ResponseStore(blobs)
        self.solves = SolveStore(blobs)
        self.certificates = CertificateStore(blobs)

    @property
    def root(self) -> str:
        return self.blobs.root

    @property
    def corpus_path(self) -> str:
        return self.blobs.corpus_path

    def stats(self) -> dict[str, float]:
        """Handle counters plus on-disk byte/blob accounting per namespace.

        The usage side is computed from the filesystem, so it reflects what
        every process sharing this root has written — the first slice of
        store lifecycle management (watch ``store_total_bytes`` grow).
        """
        stats = self.blobs.stats()
        stats.update(
            self.blobs.usage(
                (ResponseStore.namespace, SolveStore.namespace, CertificateStore.namespace)
            )
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineStore({self.root!r})"


def open_store(store: "EngineStore | BlobStore | str | os.PathLike | None" = None) -> EngineStore:
    """Coerce any store spec — a root path, a blob store, an existing
    :class:`EngineStore`, or ``None`` for :func:`default_store_root` — into
    an :class:`EngineStore`."""
    if isinstance(store, EngineStore):
        return store
    if isinstance(store, BlobStore):
        return EngineStore(store)
    root = default_store_root() if store is None else os.fspath(store)
    return EngineStore(BlobStore(root))
