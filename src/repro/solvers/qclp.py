"""Penalty and Gauss-Newton solvers over the compiled problem IR.

The paper hands its quadratically-constrained linear programs to the LOQO
interior-point solver.  This environment has no commercial solver, so
:class:`PenaltyQCLPSolver` minimises the merit function::

    objective(x) + rho * sum_i residual_i(x)^2

over an increasing penalty schedule ``rho``, with analytic gradients from the
shared :class:`~repro.solvers.problem.CompiledProblem` IR and several random
restarts.  :class:`GaussNewtonSolver` is the cheap pure-feasibility strategy
of the portfolio: it skips the penalty schedule entirely and drives the
residuals to zero with sparse trust-region least squares.  Both enforce
``SolverOptions.time_limit`` *inside* their iteration loops through
:class:`~repro.solvers.problem.SolveControl` deadline checks, honour
portfolio cancellation, and can seed restarts from the portfolio's
best-known point.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.solvers.base import Solver, SolverResult
from repro.solvers.batched import (
    BatchDescent,
    KernelCounters,
    batched_least_squares,
    batched_penalty_descent,
    run_multistart,
)
from repro.solvers.problem import (
    CompiledProblem,
    Deadline,
    SolveControl,
    SolverInterrupted,
    improves,
)


def _trivial_result() -> SolverResult:
    return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)


class _BestTracker:
    """Track the best point seen by one solver, mirroring reports to the control."""

    def __init__(self, control: SolveControl, tolerance: float, strategy: str):
        self.control = control
        self.tolerance = tolerance
        self.strategy = strategy
        self.point: np.ndarray | None = None
        self.violation = np.inf
        self.objective = np.inf

    def offer(self, point: np.ndarray, violation: float, objective: float) -> None:
        if improves(self.violation, self.objective, violation, objective, self.tolerance):
            self.point = point.copy()
            self.violation = violation
            self.objective = objective
        self.control.report(point, violation, objective, strategy=self.strategy)

    @property
    def feasible(self) -> bool:
        return self.violation <= self.tolerance


def _restart_point(
    problem: CompiledProblem,
    control: SolveControl,
    rng: np.random.Generator,
    attempt: int,
    cold_scale: float,
    warm_scale: float,
) -> np.ndarray:
    """Start from the portfolio's best-known point on odd attempts, else cold-start.

    Alternating keeps the exploration of independent random restarts while
    still exploiting whatever the portfolio (or this solver's earlier
    restarts) already found.  The jitter scale grows with ``attempt + 1`` so
    the first warm restart is already perturbed — a zero scale would
    duplicate the warm point exactly and waste the restart.
    """
    if attempt % 2 == 1:
        warm = control.warm_start()
        if warm is not None:
            return problem.perturbed(warm, rng, warm_scale * (attempt + 1))
    return problem.initial_point(rng, cold_scale)


class PenaltyQCLPSolver(Solver):
    """Quadratic-penalty solver with random restarts (the default Step-4 back-end)."""

    def __init__(
        self,
        options=None,
        penalty_schedule: tuple[float, ...] = (1.0, 10.0, 100.0, 1_000.0, 10_000.0),
        objective_weight: float = 1.0,
        polish_iterations: int = 1000,
    ):
        super().__init__(options)
        self.penalty_schedule = penalty_schedule
        self.objective_weight = objective_weight
        self.polish_iterations = polish_iterations

    def _polish(
        self, problem: CompiledProblem, point: np.ndarray, control: SolveControl
    ) -> tuple[np.ndarray, int, int]:
        """Drive the residuals to zero with a sparse Gauss-Newton (least-squares) phase."""
        latest = point

        def residuals(x: np.ndarray) -> np.ndarray:
            nonlocal latest
            control.interrupt_if_stopped()
            latest = x
            return problem.residuals(x)

        try:
            result = optimize.least_squares(
                fun=residuals,
                x0=point,
                jac=problem.residual_jacobian,
                method="trf",
                tr_solver="lsmr" if problem.dimension > 2 else None,
                max_nfev=self.polish_iterations,
                xtol=1e-14,
                ftol=1e-14,
                gtol=1e-14,
            )
        except SolverInterrupted:
            candidate = np.asarray(latest, dtype=float)
            if problem.max_violation(candidate) <= problem.max_violation(point):
                return candidate, 0, 0
            return point, 0, 0
        except Exception:  # pragma: no cover - scipy edge cases on degenerate systems
            return point, 0, 0
        nfev, njev = int(result.nfev), int(getattr(result, "njev", 0) or 0)
        if problem.max_violation(result.x) <= problem.max_violation(point):
            return result.x, nfev, njev
        return point, nfev, njev

    # -- batched restart axis (batch="on"/"rows") --------------------------------------

    def _cold_scale(self, attempt: int) -> float:
        # The very first restart of the default seed starts from the origin (good
        # for the highly structured Step-3 systems); every other restart perturbs
        # randomly so multi-seed enumeration explores different components.
        return 0.0 if (attempt == 0 and self.options.seed == 0) else 0.1 * max(attempt, 1)

    def _win_trigger(self):
        options = self.options
        if self.objective_weight == 0.0:
            return lambda violation, objective: violation <= options.tolerance
        return lambda violation, objective: (
            violation <= options.tolerance and objective <= options.stop_at_objective
        )

    def _descend(
        self,
        problem: CompiledProblem,
        control: SolveControl,
        points: np.ndarray,
        counters: KernelCounters,
    ) -> BatchDescent:
        """The batched member pipeline: feasibility sprint → schedule → polish.

        Phase A drives every member's residuals toward zero with batched
        Levenberg–Marquardt (feasibility is cheap on the structured Step-3
        systems — the penalty schedule is not the tool for it).  Phase B
        minimises the penalty merit under the rho schedule with per-member
        stages: a member leaves the schedule as soon as a finished rho phase
        leaves it feasible, exactly like the sequential loop's in-schedule
        break.  Phase C re-runs the sprint on members the schedule left
        infeasible (the legacy polish).
        """
        options = self.options
        tolerance = options.tolerance
        target = max(tolerance * 1e-3, 1e-12)
        sprint_budget = max(options.max_iterations, 50)
        trigger = self._win_trigger()

        outcome = batched_least_squares(
            problem,
            points,
            control=control,
            counters=counters,
            max_iterations=sprint_budget,
            target=target,
            win_tolerance=tolerance if self.objective_weight == 0.0 else None,
        )
        x = outcome.points
        iterations = outcome.iterations
        if outcome.interrupted:
            return BatchDescent(x, iterations, True)

        members = x.shape[0]
        schedule = np.asarray(self.penalty_schedule, dtype=float)
        finished = np.zeros(members, dtype=bool)
        #: Members the sequential loop would never have started: once a lower
        #: member completes its pipeline satisfying the win trigger, the fold
        #: of :func:`~repro.solvers.batched.winning_member` stops before the
        #: higher members, so their rows stop iterating (and skip the polish).
        cancelled = np.zeros(members, dtype=bool)

        def cancel_overtaken_members(violation: np.ndarray) -> None:
            complete = np.flatnonzero(finished & (violation <= tolerance) & ~cancelled)
            if complete.size == 0:
                return
            objectives = (
                problem.objective_value_batch(x) if self.objective_weight else None
            )
            for index in complete:
                if objectives is None or trigger(violation[index], objectives[index]):
                    cancelled[index + 1 :] = True
                    return

        stage = np.zeros(members, dtype=int)
        if self.objective_weight == 0.0:
            # Pure feasibility: members the sprint already satisfied are done.
            violation = problem.max_violation_batch(x)
            finished |= violation <= tolerance
            cancel_overtaken_members(violation)
        else:
            # Members the sprint already made feasible skip straight to the
            # top rho: a low penalty weight would trade their feasibility
            # away for objective, leaving the closing polish to re-earn it
            # from far outside the feasible manifold (the expensive case).
            violation = problem.max_violation_batch(x)
            stage = np.where(violation <= tolerance, schedule.size - 1, 0)
        while not (finished | cancelled).all():
            if control.should_stop():
                return BatchDescent(x, iterations, True)
            outcome = batched_penalty_descent(
                problem,
                x,
                schedule[stage],
                control=control,
                counters=counters,
                objective_weight=self.objective_weight,
                max_iterations=options.max_iterations,
                active=~finished & ~cancelled,
            )
            x = outcome.points
            iterations += outcome.iterations
            if outcome.interrupted:
                return BatchDescent(x, iterations, True)
            violation = problem.max_violation_batch(x)
            finished |= violation <= tolerance
            finished |= stage >= schedule.size - 1
            stage = np.minimum(stage + 1, schedule.size - 1)
            cancel_overtaken_members(violation)

        need_polish = (problem.max_violation_batch(x) > tolerance) & ~cancelled
        if need_polish.any():
            outcome = batched_least_squares(
                problem,
                x,
                control=control,
                counters=counters,
                max_iterations=sprint_budget,
                target=target,
                active=need_polish,
            )
            x = outcome.points
            iterations += outcome.iterations
            if outcome.interrupted:
                return BatchDescent(x, iterations, True)
        return BatchDescent(x, iterations, False)

    # -- main loop ---------------------------------------------------------------------

    def solve_compiled(
        self, problem: CompiledProblem, control: SolveControl | None = None
    ) -> SolverResult:
        options = self.options
        if control is None:
            control = SolveControl(
                deadline=Deadline.after(options.time_limit), tolerance=options.tolerance
            )
        if problem.dimension == 0:
            return _trivial_result()
        if options.batch != "off":
            return run_multistart(
                problem,
                control,
                options,
                self.label(),
                cold_scale=self._cold_scale,
                warm_scale=lambda attempt: 0.05 * (attempt + 1),
                descend=lambda points, counters: self._descend(problem, control, points, counters),
                trigger=self._win_trigger(),
            )
        return self._solve_sequential(problem, control)

    def _solve_sequential(
        self, problem: CompiledProblem, control: SolveControl
    ) -> SolverResult:
        """The retired per-restart SciPy loop (``batch="off"``, the perf baseline)."""
        options = self.options
        rng = np.random.default_rng(options.seed)
        best = _BestTracker(control, options.tolerance, self.label())
        iterations = 0
        restarts_used = 0
        residual_evaluations = 0
        jacobian_evaluations = 0
        interrupted = False

        for attempt in range(options.restarts):
            if control.should_stop():
                interrupted = True
                break
            restarts_used += 1
            cold_scale = self._cold_scale(attempt)
            point = _restart_point(problem, control, rng, attempt, cold_scale, warm_scale=0.05)

            latest = point
            for rho in self.penalty_schedule:
                def fun(x: np.ndarray, rho: float = rho) -> float:
                    nonlocal latest
                    control.interrupt_if_stopped()
                    latest = x
                    return problem.penalty(x, rho, self.objective_weight)

                def jac(x: np.ndarray, rho: float = rho) -> np.ndarray:
                    return problem.penalty_gradient(x, rho, self.objective_weight)

                try:
                    result = optimize.minimize(
                        fun=fun,
                        x0=point,
                        jac=jac,
                        method="L-BFGS-B",
                        options={"maxiter": options.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
                    )
                except SolverInterrupted:
                    point = np.asarray(latest, dtype=float)
                    interrupted = True
                    break
                point = result.x
                iterations += int(result.nit)
                residual_evaluations += int(result.nfev)
                jacobian_evaluations += int(getattr(result, "njev", 0))
                if problem.max_violation(point) <= options.tolerance:
                    break

            if not interrupted and problem.max_violation(point) > options.tolerance:
                point, polish_steps, polish_jacobians = self._polish(problem, point, control)
                iterations += polish_steps
                residual_evaluations += polish_steps
                jacobian_evaluations += polish_jacobians

            violation = problem.max_violation(point)
            objective = problem.objective_value(point)
            best.offer(point, violation, objective)
            if options.verbose:
                print(f"[qclp] restart {attempt}: violation={violation:.3g} objective={objective:.6g}")
            if interrupted:
                break
            if best.feasible and (
                self.objective_weight == 0.0 or best.objective <= options.stop_at_objective
            ):
                break

        if best.point is None:
            return SolverResult(
                assignment=None,
                status="no-progress",
                iterations=iterations,
                details={"timed_out": float(control.timed_out)},
                strategy=self.label(),
                residual_evaluations=residual_evaluations,
                jacobian_evaluations=jacobian_evaluations,
            )

        feasible = best.feasible
        status = "optimal" if feasible else "infeasible-best-effort"
        return SolverResult(
            assignment=problem.assignment(best.point) if feasible else None,
            status=status,
            objective_value=best.objective,
            max_violation=best.violation,
            iterations=iterations,
            restarts_used=restarts_used,
            details={
                "dimension": float(problem.dimension),
                "constraints": float(problem.row_count),
                "timed_out": float(control.timed_out),
            },
            strategy=self.label(),
            residual_evaluations=residual_evaluations,
            jacobian_evaluations=jacobian_evaluations,
        )


class GaussNewtonSolver(Solver):
    """Pure-feasibility strategy: sparse trust-region least squares on the residuals.

    This is the cheapest certificate in the portfolio: no penalty schedule, no
    objective tracking — just drive all residuals to zero from a few starting
    points.  On the highly structured Step-3 systems it often finds a feasible
    point long before the penalty solver finishes its first schedule, which is
    exactly what first-feasible-wins racing exploits.
    """

    def __init__(self, options=None, max_nfev: int | None = None):
        super().__init__(options)
        self.max_nfev = max_nfev

    def _cold_scale(self, attempt: int) -> float:
        # Restart 0 deliberately starts at the deterministic role-floor
        # origin under every seed: the structured Step-3 systems often solve
        # right there, and the exact-certificate repair re-race (decorrelated
        # seed) counts on the structured solutions it yields.  Later restarts
        # jitter with strictly growing scales, so no two batch rows coincide.
        return 0.2 * attempt

    def _budget(self) -> int:
        return self.max_nfev if self.max_nfev is not None else max(self.options.max_iterations, 50)

    def _descend(
        self,
        problem: CompiledProblem,
        control: SolveControl,
        points: np.ndarray,
        counters: KernelCounters,
    ) -> BatchDescent:
        tolerance = self.options.tolerance
        return batched_least_squares(
            problem,
            points,
            control=control,
            counters=counters,
            max_iterations=self._budget(),
            target=max(tolerance * 1e-3, 1e-12),
            win_tolerance=tolerance,
        )

    def solve_compiled(
        self, problem: CompiledProblem, control: SolveControl | None = None
    ) -> SolverResult:
        options = self.options
        if control is None:
            control = SolveControl(
                deadline=Deadline.after(options.time_limit), tolerance=options.tolerance
            )
        if problem.dimension == 0:
            return _trivial_result()
        if problem.row_count == 0:
            point = problem.initial_point(np.random.default_rng(options.seed), 0.0)
            return SolverResult(
                assignment=problem.assignment(point),
                status="optimal",
                objective_value=problem.objective_value(point),
                max_violation=0.0,
                strategy=self.label(),
            )
        if options.batch != "off":
            return run_multistart(
                problem,
                control,
                options,
                self.label(),
                cold_scale=self._cold_scale,
                warm_scale=lambda attempt: 0.1 * (attempt + 1),
                descend=lambda points, counters: self._descend(problem, control, points, counters),
                trigger=lambda violation, objective: violation <= options.tolerance,
            )
        return self._solve_sequential(problem, control)

    def _solve_sequential(
        self, problem: CompiledProblem, control: SolveControl
    ) -> SolverResult:
        """The retired per-restart SciPy loop (``batch="off"``, the perf baseline)."""
        options = self.options
        rng = np.random.default_rng(options.seed)
        best = _BestTracker(control, options.tolerance, self.label())
        iterations = 0
        restarts_used = 0
        residual_evaluations = 0
        jacobian_evaluations = 0
        budget = self._budget()

        for attempt in range(options.restarts):
            if control.should_stop():
                break
            restarts_used += 1
            cold_scale = self._cold_scale(attempt)
            point = _restart_point(problem, control, rng, attempt, cold_scale, warm_scale=0.1)

            latest = point

            def residuals(x: np.ndarray) -> np.ndarray:
                nonlocal latest
                control.interrupt_if_stopped()
                latest = x
                return problem.residuals(x)

            try:
                result = optimize.least_squares(
                    fun=residuals,
                    x0=point,
                    jac=problem.residual_jacobian,
                    method="trf",
                    tr_solver="lsmr" if problem.dimension > 2 else None,
                    max_nfev=budget,
                    xtol=1e-14,
                    ftol=1e-14,
                    gtol=1e-12,
                )
                point = result.x
                iterations += int(result.nfev)
                residual_evaluations += int(result.nfev)
                jacobian_evaluations += int(getattr(result, "njev", 0) or 0)
            except SolverInterrupted:
                point = np.asarray(latest, dtype=float)
            except Exception:  # pragma: no cover - scipy edge cases on degenerate systems
                continue

            violation = problem.max_violation(point)
            objective = problem.objective_value(point)
            best.offer(point, violation, objective)
            if options.verbose:
                print(f"[gn] restart {attempt}: violation={violation:.3g}")
            if best.feasible or control.should_stop():
                break

        if best.point is None:
            return SolverResult(
                assignment=None,
                status="no-progress",
                iterations=iterations,
                details={"timed_out": float(control.timed_out)},
                strategy=self.label(),
                residual_evaluations=residual_evaluations,
                jacobian_evaluations=jacobian_evaluations,
            )
        feasible = best.feasible
        return SolverResult(
            assignment=problem.assignment(best.point) if feasible else None,
            status="optimal" if feasible else "infeasible-best-effort",
            objective_value=best.objective,
            max_violation=best.violation,
            iterations=iterations,
            restarts_used=restarts_used,
            details={
                "dimension": float(problem.dimension),
                "constraints": float(problem.row_count),
                "timed_out": float(control.timed_out),
            },
            strategy=self.label(),
            residual_evaluations=residual_evaluations,
            jacobian_evaluations=jacobian_evaluations,
        )
