"""The default QCLP solver: exact penalty + multi-restart L-BFGS.

The paper hands its quadratically-constrained linear programs to the LOQO
interior-point solver.  This environment has no commercial solver, so we
minimise the merit function::

    objective(x) + rho * sum_i residual_i(x)^2

over an increasing penalty schedule ``rho``, with analytic gradients from
:class:`~repro.solvers.numeric.VectorisedSystem` and several random restarts.
The returned status reports honestly whether the best point found is feasible
within tolerance.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from repro.invariants.quadratic_system import QuadraticSystem, VariableRole, classify_unknown
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.numeric import VectorisedSystem


class PenaltyQCLPSolver(Solver):
    """Quadratic-penalty solver with random restarts (the default Step-4 back-end)."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        penalty_schedule: tuple[float, ...] = (1.0, 10.0, 100.0, 1_000.0, 10_000.0),
        objective_weight: float = 1.0,
        polish_iterations: int = 1000,
    ):
        super().__init__(options)
        self.penalty_schedule = penalty_schedule
        self.objective_weight = objective_weight
        self.polish_iterations = polish_iterations

    # -- initial points ------------------------------------------------------------

    @staticmethod
    def _role_masks(vectorised: VectorisedSystem) -> tuple[np.ndarray, np.ndarray]:
        """Boolean masks of the witness and Cholesky-diagonal unknowns.

        Classifying every unknown by name is linear in the system dimension, so
        it is done once per solve rather than once per restart.
        """
        witness = np.zeros(vectorised.dimension, dtype=bool)
        cholesky_diagonal = np.zeros(vectorised.dimension, dtype=bool)
        for position, name in enumerate(vectorised.variables):
            role = classify_unknown(name)
            if role is VariableRole.WITNESS:
                witness[position] = True
            elif role is VariableRole.CHOLESKY and name.rsplit("_", 2)[-2] == name.rsplit("_", 2)[-1]:
                cholesky_diagonal[position] = True
        return witness, cholesky_diagonal

    def _initial_point(
        self,
        vectorised: VectorisedSystem,
        rng: np.random.Generator,
        attempt: int,
        witness_mask: np.ndarray,
        cholesky_diagonal_mask: np.ndarray,
    ) -> np.ndarray:
        point = np.zeros(vectorised.dimension)
        # The very first restart of the default seed starts from the origin (good for the
        # highly structured Step-3 systems); every other restart perturbs randomly so that
        # multi-seed enumeration explores different connected components.
        scale = 0.0 if (attempt == 0 and self.options.seed == 0) else 0.1 * max(attempt, 1)
        if scale:
            point = rng.normal(0.0, scale, size=vectorised.dimension)
        point[witness_mask] = np.maximum(point[witness_mask], 10 * self.options.strict_margin)
        # Diagonal entries of the Cholesky factors start slightly positive.
        point[cholesky_diagonal_mask] = np.abs(point[cholesky_diagonal_mask]) + 1e-3
        return point

    def _polish(self, vectorised: VectorisedSystem, point: np.ndarray) -> tuple[np.ndarray, int]:
        """Drive the residuals to zero with a sparse Gauss-Newton (least-squares) phase."""
        try:
            result = optimize.least_squares(
                fun=vectorised.residuals,
                x0=point,
                jac=vectorised.residual_jacobian,
                method="trf",
                tr_solver="lsmr" if vectorised.dimension > 2 else None,
                max_nfev=self.polish_iterations,
                xtol=1e-14,
                ftol=1e-14,
                gtol=1e-14,
            )
        except Exception:  # pragma: no cover - scipy edge cases on degenerate systems
            return point, 0
        if vectorised.max_violation(result.x) <= vectorised.max_violation(point):
            return result.x, int(result.nfev)
        return point, int(result.nfev)

    # -- main loop ---------------------------------------------------------------------

    def solve(self, system: QuadraticSystem) -> SolverResult:
        vectorised = VectorisedSystem(system, strict_margin=self.options.strict_margin)
        if vectorised.dimension == 0:
            return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)

        rng = np.random.default_rng(self.options.seed)
        witness_mask, cholesky_diagonal_mask = self._role_masks(vectorised)
        start_time = time.monotonic()
        best_point: np.ndarray | None = None
        best_violation = np.inf
        best_objective = np.inf
        iterations = 0
        restarts_used = 0

        for attempt in range(self.options.restarts):
            if self.options.time_limit is not None and time.monotonic() - start_time > self.options.time_limit:
                break
            restarts_used += 1
            point = self._initial_point(vectorised, rng, attempt, witness_mask, cholesky_diagonal_mask)
            for rho in self.penalty_schedule:
                result = optimize.minimize(
                    fun=lambda x, rho=rho: vectorised.penalty(x, rho, self.objective_weight),
                    x0=point,
                    jac=lambda x, rho=rho: vectorised.penalty_gradient(x, rho, self.objective_weight),
                    method="L-BFGS-B",
                    options={"maxiter": self.options.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
                )
                point = result.x
                iterations += int(result.nit)
                if vectorised.max_violation(point) <= self.options.tolerance:
                    break

            if vectorised.max_violation(point) > self.options.tolerance:
                point, polish_steps = self._polish(vectorised, point)
                iterations += polish_steps

            violation = vectorised.max_violation(point)
            objective = vectorised.objective_value(point)
            better_feasible = violation <= self.options.tolerance and (
                best_violation > self.options.tolerance or objective < best_objective
            )
            better_infeasible = best_violation > self.options.tolerance and violation < best_violation
            if better_feasible or better_infeasible:
                best_point = point.copy()
                best_violation = violation
                best_objective = objective
            if self.options.verbose:
                print(
                    f"[qclp] restart {attempt}: violation={violation:.3g} objective={objective:.6g}"
                )
            if best_violation <= self.options.tolerance and (
                self.objective_weight == 0.0 or best_objective <= self.options.stop_at_objective
            ):
                break

        if best_point is None:
            return SolverResult(assignment=None, status="no-progress", iterations=iterations)

        feasible = best_violation <= self.options.tolerance
        status = "optimal" if feasible else "infeasible-best-effort"
        return SolverResult(
            assignment=vectorised.assignment(best_point) if feasible else None,
            status=status,
            objective_value=best_objective,
            max_violation=best_violation,
            iterations=iterations,
            restarts_used=restarts_used,
            details={"dimension": float(vectorised.dimension), "constraints": float(vectorised.row_count)},
        )
