"""The compiled Step-4 problem IR shared by every numeric solver.

Step 3 hands every solver the same :class:`~repro.invariants.quadratic_system.
QuadraticSystem`; historically each solver privately re-vectorised it (flat
numpy arrays, strict-margin rewriting, variable classification) before its
first iteration.  :class:`CompiledProblem` performs that lowering **once** per
system — through :func:`compile_problem`, which memoises on the system — and
every solver consumes the compiled form:

* flat residual / constraint-value / penalty closures built from the triplet
  arrays of :mod:`repro.polynomial.compiled` (no ``Fraction`` arithmetic in
  any inner loop);
* strict-inequality rewriting (``p > 0`` becomes ``p >= strict_margin``) and
  the equality/inequality masks derived from it;
* the canonical variable ordering plus role masks (template, witness,
  Cholesky-diagonal unknowns) used for block splits and initial points;
* the lowered objective and its gradient.

The module also defines the solve-time control plane: :class:`Deadline` (a
wall-clock budget checked *inside* iteration loops, not just between
restarts) and :class:`SolveControl` (shared cancellation, best-known-point
exchange and first-feasible-wins signalling for the solver portfolio).
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.invariants.quadratic_system import (
    ConstraintKind,
    QuadraticSystem,
    VariableRole,
    classify_unknown,
)
from repro.solvers.base import DEFAULT_STRICT_MARGIN, DEFAULT_TOLERANCE
from repro.polynomial.compiled import lower_quadratic
from repro.polynomial.polynomial import Polynomial


class SolverInterrupted(RuntimeError):
    """Raised inside solver iteration loops when the solve must stop now.

    Carries no payload: the raising closure records the last iterate it saw,
    and the catching solver keeps the best point found so far.
    """


class Deadline:
    """A wall-clock budget usable from the innermost evaluation closures.

    ``Deadline.after(None)`` never expires, so solvers can check
    unconditionally without branching on whether a limit was configured.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float | None = None):
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` means no limit)."""
        if seconds is None:
            return cls(None)
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining(self) -> float | None:
        """Seconds left, ``None`` when unlimited (never negative)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())


def improves(
    best_violation: float,
    best_objective: float,
    violation: float,
    objective: float,
    tolerance: float,
) -> bool:
    """The shared "is this point better" ordering of every Step-4 solver.

    Feasible points beat infeasible ones; among feasible points a lower
    objective wins; among infeasible points a lower violation wins.
    """
    if violation <= tolerance:
        return best_violation > tolerance or objective < best_objective
    return best_violation > tolerance and violation < best_violation


class SolveControl:
    """Shared budget, cancellation and warm-start state of one Step-4 solve.

    A single solver uses it to enforce its deadline inside iteration loops; a
    :class:`~repro.solvers.portfolio.PortfolioSolver` shares one instance
    across all racing strategies, which gives first-feasible-wins cancellation
    (the first strategy to report a feasible point sets the stop event) and
    warm-start exchange (every strategy can seed a restart from the
    portfolio's best-known point).
    """

    def __init__(
        self,
        deadline: Deadline | None = None,
        tolerance: float | None = None,
        stop_on_feasible: bool = False,
    ):
        self.deadline = deadline if deadline is not None else Deadline.never()
        self.tolerance = DEFAULT_TOLERANCE if tolerance is None else tolerance
        self.stop_on_feasible = stop_on_feasible
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._best_point: np.ndarray | None = None
        self._best_violation = np.inf
        self._best_objective = np.inf
        self._winner: str | None = None

    # -- cancellation -----------------------------------------------------------

    def should_stop(self) -> bool:
        return self._stop.is_set() or self.deadline.expired()

    def interrupt_if_stopped(self) -> None:
        """Raise :class:`SolverInterrupted` when the solve must end (call from closures)."""
        if self.should_stop():
            raise SolverInterrupted()

    def stop(self) -> None:
        self._stop.set()

    def wait_stop(self, timeout: float | None = None) -> bool:
        """Block until the solve is stopped or ``timeout`` elapses.

        Returns True when the solve should not proceed (another strategy won,
        someone cancelled, or the deadline ran out while waiting).  This is
        what a staggered portfolio strategy sleeps on during its grace
        period: a primary win during the wait cancels the launch outright.
        """
        remaining = self.deadline.remaining()
        if remaining is not None:
            timeout = remaining if timeout is None else min(timeout, remaining)
        if self._stop.wait(timeout):
            return True
        return self.deadline.expired()

    @property
    def timed_out(self) -> bool:
        return self.deadline.expired()

    # -- best-known-point exchange -----------------------------------------------

    def report(
        self, point: np.ndarray, violation: float, objective: float, strategy: str | None = None
    ) -> None:
        """Record a candidate; feasible reports may trigger first-feasible-wins."""
        with self._lock:
            if improves(self._best_violation, self._best_objective, violation, objective, self.tolerance):
                self._best_point = np.array(point, dtype=float, copy=True)
                self._best_violation = violation
                self._best_objective = objective
                if violation <= self.tolerance and self._winner is None:
                    self._winner = strategy
        if self.stop_on_feasible and violation <= self.tolerance:
            self._stop.set()

    def warm_start(self) -> np.ndarray | None:
        """A copy of the best-known point so far (``None`` before any report)."""
        with self._lock:
            if self._best_point is None:
                return None
            return self._best_point.copy()

    @property
    def best_violation(self) -> float:
        with self._lock:
            return self._best_violation

    @property
    def winner(self) -> str | None:
        """The strategy that first reported a feasible point (portfolio runs)."""
        with self._lock:
            return self._winner


class _QuadraticTerms:
    """Flat triplet representation of all bilinear terms, tagged by constraint row.

    Besides the per-point evaluation used by the scalar kernels, the class
    lazily builds three aggregation matrices that turn per-term contribution
    arrays into per-row (or per-variable) sums with one sparse ``dot`` — the
    building blocks of the batched kernels, where a ``(k, n_terms)``
    contribution matrix covers all ``k`` batch members at once:

    * ``row_agg @ C.T`` sums term contributions into constraint rows;
    * ``left_agg @ C.T`` / ``right_agg @ C.T`` scatter weighted term
      contributions onto the left/right variable of each bilinear term (the
      two halves of the product rule).

    The term coefficients are baked into the aggregation values, so the
    contribution matrices carry only the point-dependent factors.
    """

    __slots__ = ("rows", "left", "right", "coefficients", "_row_agg", "_left_agg", "_right_agg")

    def __init__(self, rows: np.ndarray, left: np.ndarray, right: np.ndarray, coefficients: np.ndarray):
        self.rows = rows
        self.left = left
        self.right = right
        self.coefficients = coefficients
        self._row_agg: sparse.csr_matrix | None = None
        self._left_agg: sparse.csr_matrix | None = None
        self._right_agg: sparse.csr_matrix | None = None

    def values(self, point: np.ndarray, row_count: int) -> np.ndarray:
        if self.rows.size == 0:
            return np.zeros(row_count)
        contributions = self.coefficients * point[self.left] * point[self.right]
        return np.bincount(self.rows, weights=contributions, minlength=row_count)

    def add_weighted_gradient(
        self, point: np.ndarray, weights: np.ndarray, gradient: np.ndarray
    ) -> None:
        if self.rows.size == 0:
            return
        scale = weights[self.rows] * self.coefficients
        np.add.at(gradient, self.left, scale * point[self.right])
        np.add.at(gradient, self.right, scale * point[self.left])

    # -- batched aggregation -----------------------------------------------------

    def row_aggregator(self, row_count: int) -> sparse.csr_matrix:
        if self._row_agg is None:
            term_ids = np.arange(self.rows.size)
            self._row_agg = sparse.csr_matrix(
                (self.coefficients, (self.rows, term_ids)), shape=(row_count, self.rows.size)
            )
        return self._row_agg

    def side_aggregators(self, dimension: int) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        if self._left_agg is None:
            term_ids = np.arange(self.rows.size)
            self._left_agg = sparse.csr_matrix(
                (self.coefficients, (self.left, term_ids)), shape=(dimension, self.rows.size)
            )
            self._right_agg = sparse.csr_matrix(
                (self.coefficients, (self.right, term_ids)), shape=(dimension, self.rows.size)
            )
        return self._left_agg, self._right_agg

    def values_batch(self, points: np.ndarray, row_count: int) -> np.ndarray:
        """Constraint-row sums of the bilinear terms for every batch member."""
        if self.rows.size == 0:
            return np.zeros((points.shape[0], row_count))
        contributions = points[:, self.left] * points[:, self.right]
        return self.row_aggregator(row_count).dot(contributions.T).T

    def weighted_gradient_batch(
        self, points: np.ndarray, weights: np.ndarray, dimension: int
    ) -> np.ndarray:
        """Per-member gradient contribution of ``sum_r weights[r] * quad_r(x)``."""
        if self.rows.size == 0:
            return np.zeros((points.shape[0], dimension))
        left_agg, right_agg = self.side_aggregators(dimension)
        row_weights = weights[:, self.rows]
        gradient = np.ascontiguousarray(left_agg.dot((row_weights * points[:, self.right]).T).T)
        gradient += right_agg.dot((row_weights * points[:, self.left]).T).T
        return gradient


def _compile_rows(
    polynomials: Sequence[Polynomial], index: Mapping[str, int], dimension: int
) -> tuple[np.ndarray, sparse.csr_matrix, _QuadraticTerms]:
    triplets = lower_quadratic(polynomials, index)
    linear = sparse.csr_matrix(
        (triplets.linear_values, (triplets.linear_rows, triplets.linear_cols)),
        shape=(len(polynomials), dimension),
    )
    quadratic = _QuadraticTerms(
        rows=triplets.quad_rows,
        left=triplets.quad_left,
        right=triplets.quad_right,
        coefficients=triplets.quad_values,
    )
    return triplets.constants, linear, quadratic


class CompiledProblem:
    """A :class:`QuadraticSystem` lowered once into solver-ready numeric form.

    Build through :func:`compile_problem` (memoised) rather than directly, so
    that a portfolio of solvers racing on the same system shares one IR.
    """

    def __init__(self, system: QuadraticSystem, strict_margin: float | None = None):
        self.system = system
        self.variables: list[str] = system.variables()
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.variables)}
        self.dimension = len(self.variables)
        self.strict_margin = DEFAULT_STRICT_MARGIN if strict_margin is None else strict_margin

        polynomials = [constraint.polynomial for constraint in system.constraints]
        self.constants, self.linear, self.quadratic = _compile_rows(
            polynomials, self.index, self.dimension
        )
        kinds = [constraint.kind for constraint in system.constraints]
        self.equality_mask = np.array([kind is ConstraintKind.EQUALITY for kind in kinds], dtype=bool)
        self.nonneg_mask = np.array([kind is ConstraintKind.NONNEGATIVE for kind in kinds], dtype=bool)
        self.positive_mask = np.array([kind is ConstraintKind.POSITIVE for kind in kinds], dtype=bool)
        self.row_count = len(polynomials)

        objective_constants, objective_linear, objective_quadratic = _compile_rows(
            [system.objective], self.index, self.dimension
        )
        self.objective_constant = float(objective_constants[0]) if objective_constants.size else 0.0
        self.objective_linear_dense = np.asarray(objective_linear.todense()).ravel().astype(float)
        self.objective_quadratic = objective_quadratic

        roles = [classify_unknown(name) for name in self.variables]
        self.template_mask = np.array([role is VariableRole.TEMPLATE for role in roles], dtype=bool)
        self.witness_mask = np.array([role is VariableRole.WITNESS for role in roles], dtype=bool)
        self.cholesky_diagonal_mask = np.array(
            [
                role is VariableRole.CHOLESKY and name.rsplit("_", 2)[-2] == name.rsplit("_", 2)[-1]
                for role, name in zip(roles, self.variables)
            ],
            dtype=bool,
        )

    # -- values ------------------------------------------------------------------

    def constraint_values(self, point: np.ndarray) -> np.ndarray:
        """The value of every constraint polynomial at ``point``."""
        if self.row_count == 0:
            return np.zeros(0)
        values = self.constants + self.linear.dot(point)
        values = values + self.quadratic.values(point, self.row_count)
        return values

    def residuals(self, point: np.ndarray) -> np.ndarray:
        """Signed residuals: zero exactly when the corresponding constraint holds."""
        return self._residuals_of(self.constraint_values(point))

    def _residuals_of(self, values: np.ndarray) -> np.ndarray:
        residuals = np.zeros_like(values)
        residuals[self.equality_mask] = values[self.equality_mask]
        nonneg = self.nonneg_mask
        residuals[nonneg] = np.minimum(values[nonneg], 0.0)
        positive = self.positive_mask
        residuals[positive] = np.minimum(values[positive] - self.strict_margin, 0.0)
        return residuals

    def max_violation(self, point: np.ndarray) -> float:
        """The largest absolute residual (0 when feasible)."""
        residuals = self.residuals(point)
        return float(np.max(np.abs(residuals))) if residuals.size else 0.0

    def objective_value(self, point: np.ndarray) -> float:
        """Value of the objective polynomial at ``point``."""
        value = self.objective_constant + float(self.objective_linear_dense @ point)
        value += float(self.objective_quadratic.values(point, 1)[0])
        return value

    def objective_gradient(self, point: np.ndarray) -> np.ndarray:
        gradient = self.objective_linear_dense.copy()
        self.objective_quadratic.add_weighted_gradient(point, np.ones(1), gradient)
        return gradient

    # -- penalty function ---------------------------------------------------------

    def penalty(self, point: np.ndarray, rho: float, objective_weight: float = 1.0) -> float:
        """The exact quadratic-penalty merit function."""
        residuals = self.residuals(point)
        return objective_weight * self.objective_value(point) + rho * float(residuals @ residuals)

    def penalty_gradient(
        self, point: np.ndarray, rho: float, objective_weight: float = 1.0
    ) -> np.ndarray:
        """Analytic gradient of :meth:`penalty`."""
        residuals = self._residuals_of(self.constraint_values(point))
        weights = 2.0 * rho * residuals
        gradient = self.linear.T.dot(weights)
        gradient = np.asarray(gradient).ravel()
        self.quadratic.add_weighted_gradient(point, weights, gradient)
        gradient += objective_weight * self.objective_gradient(point)
        return gradient

    def residual_jacobian(self, point: np.ndarray) -> sparse.csr_matrix:
        """Sparse Jacobian of :meth:`residuals` (rows of inactive inequalities are zero)."""
        values = self.constraint_values(point)
        active = np.ones(self.row_count)
        active[self.nonneg_mask] = (values[self.nonneg_mask] < 0.0).astype(float)
        active[self.positive_mask] = (values[self.positive_mask] < self.strict_margin).astype(float)

        jacobian = self.linear
        if self.quadratic.rows.size:
            rows = np.concatenate([self.quadratic.rows, self.quadratic.rows])
            cols = np.concatenate([self.quadratic.left, self.quadratic.right])
            vals = np.concatenate(
                [
                    self.quadratic.coefficients * point[self.quadratic.right],
                    self.quadratic.coefficients * point[self.quadratic.left],
                ]
            )
            quadratic_part = sparse.coo_matrix(
                (vals, (rows, cols)), shape=(self.row_count, self.dimension)
            )
            jacobian = jacobian + quadratic_part.tocsr()
        return sparse.diags(active).dot(jacobian).tocsr()

    # -- batched kernels (one call per iteration covers every restart) -------------

    def _linear_transposed(self) -> sparse.csr_matrix:
        cached = getattr(self, "_linear_T", None)
        if cached is None:
            cached = self.linear.T.tocsr()
            self._linear_T = cached
        return cached

    def constraint_values_batch(self, points: np.ndarray) -> np.ndarray:
        """:meth:`constraint_values` over a ``(k, d)`` batch of points → ``(k, rows)``.

        Every batched kernel evaluates its members independently — row ``i``
        of the result is a pure function of row ``i`` of ``points`` — so a
        width-``k`` call is equivalent to ``k`` width-1 calls (the lockstep
        guarantee the batched solvers' determinism rests on).
        """
        points = np.asarray(points, dtype=float)
        if self.row_count == 0:
            return np.zeros((points.shape[0], 0))
        # ascontiguousarray: sparse dot yields an F-ordered transpose view, and
        # strided row reductions are not bit-identical to contiguous ones —
        # C-contiguous outputs keep the lockstep guarantee exact.
        values = np.ascontiguousarray(self.linear.dot(points.T).T)
        values += self.constants[None, :]
        values += self.quadratic.values_batch(points, self.row_count)
        return values

    def residuals_batch(self, points: np.ndarray) -> np.ndarray:
        """:meth:`residuals` over a batch → ``(k, rows)`` signed residuals."""
        return self._residuals_of_batch(self.constraint_values_batch(points))

    def _residuals_of_batch(self, values: np.ndarray) -> np.ndarray:
        residuals = np.zeros_like(values)
        residuals[:, self.equality_mask] = values[:, self.equality_mask]
        nonneg = self.nonneg_mask
        residuals[:, nonneg] = np.minimum(values[:, nonneg], 0.0)
        positive = self.positive_mask
        residuals[:, positive] = np.minimum(values[:, positive] - self.strict_margin, 0.0)
        return residuals

    def max_violation_batch(self, points: np.ndarray) -> np.ndarray:
        """Per-member largest absolute residual → ``(k,)``."""
        residuals = self.residuals_batch(points)
        if residuals.shape[1] == 0:
            return np.zeros(residuals.shape[0])
        return np.max(np.abs(residuals), axis=1)

    def objective_value_batch(self, points: np.ndarray) -> np.ndarray:
        """Per-member objective value → ``(k,)``."""
        points = np.asarray(points, dtype=float)
        values = self.objective_constant + points @ self.objective_linear_dense
        values += self.objective_quadratic.values_batch(points, 1)[:, 0]
        return values

    def objective_gradient_batch(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        gradient = np.broadcast_to(self.objective_linear_dense, points.shape).copy()
        gradient += self.objective_quadratic.weighted_gradient_batch(
            points, np.ones((points.shape[0], 1)), self.dimension
        )
        return gradient

    def penalty_batch(
        self, points: np.ndarray, rho: float | np.ndarray, objective_weight: float = 1.0
    ) -> np.ndarray:
        """:meth:`penalty` over a batch → ``(k,)`` merit values.

        ``rho`` may be a scalar or a ``(k,)`` array — the batched penalty
        solver walks its members through the rho schedule independently.
        """
        residuals = self.residuals_batch(points)
        merit = np.asarray(rho, dtype=float) * np.einsum("km,km->k", residuals, residuals)
        if objective_weight:
            merit = merit + objective_weight * self.objective_value_batch(points)
        return merit

    def penalty_gradient_batch(
        self, points: np.ndarray, rho: float | np.ndarray, objective_weight: float = 1.0
    ) -> np.ndarray:
        """Analytic gradient of :meth:`penalty_batch` → ``(k, d)``."""
        points = np.asarray(points, dtype=float)
        residuals = self._residuals_of_batch(self.constraint_values_batch(points))
        rho = np.asarray(rho, dtype=float)
        weights = 2.0 * (rho[:, None] if rho.ndim else rho) * residuals
        gradient = np.ascontiguousarray(self._linear_transposed().dot(weights.T).T)
        gradient += self.quadratic.weighted_gradient_batch(points, weights, self.dimension)
        if objective_weight:
            gradient += objective_weight * self.objective_gradient_batch(points)
        return gradient

    def residual_jacobian_batch(self, points: np.ndarray) -> "BatchJacobian":
        """The stacked block-sparse Jacobian of :meth:`residuals_batch`.

        Returned as an operator (per-member ``matvec``/``rmatvec`` plus an
        explicit :meth:`BatchJacobian.block_diagonal` materialisation) so the
        batched least-squares solver can run matrix-free CG without ever
        assembling ``k`` sparse matrices per iteration.
        """
        return BatchJacobian(self, np.asarray(points, dtype=float))

    # -- starting points ------------------------------------------------------------

    def initial_points(self, rng: np.random.Generator, scales: np.ndarray) -> np.ndarray:
        """All ``k`` restart starting points of a batched solve in one draw.

        ``scales[i]`` is member ``i``'s Gaussian spread; a zero scale yields
        the deterministic role-floor point (the draw is still consumed, so
        the batch is reproducible regardless of which rows are cold).  Rows
        with distinct non-zero scales are almost surely pairwise distinct —
        the no-duplicate-rows property the restart-jitter fix guarantees.
        """
        scales = np.asarray(scales, dtype=float)
        points = rng.standard_normal((scales.size, self.dimension)) * scales[:, None]
        return self.apply_role_floors_batch(points)

    def perturbed_batch(
        self, point: np.ndarray, rng: np.random.Generator, scales: np.ndarray
    ) -> np.ndarray:
        """A batch of warm-start restarts: per-member jitter around one point."""
        scales = np.asarray(scales, dtype=float)
        jittered = point[None, :] + rng.standard_normal((scales.size, self.dimension)) * scales[:, None]
        return self.apply_role_floors_batch(jittered)

    def apply_role_floors_batch(self, points: np.ndarray) -> np.ndarray:
        points[:, self.witness_mask] = np.maximum(
            points[:, self.witness_mask], 10 * self.strict_margin
        )
        points[:, self.cholesky_diagonal_mask] = (
            np.abs(points[:, self.cholesky_diagonal_mask]) + 1e-3
        )
        return points

    def initial_point(self, rng: np.random.Generator, scale: float) -> np.ndarray:
        """A restart's starting point: optional Gaussian spread plus role floors.

        Witness unknowns start comfortably above the strict margin and the
        diagonal entries of the Cholesky factors start slightly positive, which
        keeps the first penalty evaluations away from degenerate stationary
        points.
        """
        if scale:
            point = rng.normal(0.0, scale, size=self.dimension)
        else:
            point = np.zeros(self.dimension)
        return self.apply_role_floors(point)

    def perturbed(self, point: np.ndarray, rng: np.random.Generator, scale: float) -> np.ndarray:
        """A warm-start restart: jitter an existing point and re-apply role floors."""
        jittered = point + rng.normal(0.0, scale, size=self.dimension)
        return self.apply_role_floors(jittered)

    def apply_role_floors(self, point: np.ndarray) -> np.ndarray:
        point[self.witness_mask] = np.maximum(point[self.witness_mask], 10 * self.strict_margin)
        point[self.cholesky_diagonal_mask] = np.abs(point[self.cholesky_diagonal_mask]) + 1e-3
        return point

    # -- conversions -----------------------------------------------------------------

    def assignment(self, point: np.ndarray) -> dict[str, float]:
        """Name-to-value view of a solution vector."""
        return {name: float(value) for name, value in zip(self.variables, point)}

    def vector(self, assignment: Mapping[str, float]) -> np.ndarray:
        """Vector view of a name-to-value assignment (missing names default to 0)."""
        return np.array([float(assignment.get(name, 0.0)) for name in self.variables])


class BatchJacobian:
    """The Jacobian of :meth:`CompiledProblem.residuals_batch` at ``k`` points.

    Logically a block-diagonal ``(k * rows, k * dim)`` sparse matrix (one
    :meth:`CompiledProblem.residual_jacobian` block per batch member); held as
    an operator because the batched Levenberg–Marquardt solver only ever needs
    per-member products.  ``matvec``/``rmatvec`` keep members strictly
    independent — member ``i`` of the output touches only member ``i`` of the
    input — preserving the lockstep guarantee of the batched kernels.
    """

    __slots__ = ("problem", "points", "active", "_left_values", "_right_values")

    def __init__(self, problem: CompiledProblem, points: np.ndarray):
        self.problem = problem
        self.points = points
        values = problem.constraint_values_batch(points)
        active = np.ones_like(values)
        nonneg = problem.nonneg_mask
        active[:, nonneg] = (values[:, nonneg] < 0.0).astype(float)
        positive = problem.positive_mask
        active[:, positive] = (values[:, positive] < problem.strict_margin).astype(float)
        #: (k, rows) 0/1 mask: rows of inactive inequalities are zeroed.
        self.active = active
        quadratic = problem.quadratic
        #: Point-dependent term factors, shared by matvec and rmatvec.
        self._left_values = points[:, quadratic.left] if quadratic.rows.size else None
        self._right_values = points[:, quadratic.right] if quadratic.rows.size else None

    @property
    def batch_width(self) -> int:
        return self.points.shape[0]

    def matvec(self, vectors: np.ndarray) -> np.ndarray:
        """Per-member ``J_i @ v_i`` → ``(k, rows)``."""
        problem = self.problem
        result = np.ascontiguousarray(problem.linear.dot(vectors.T).T)
        quadratic = problem.quadratic
        if quadratic.rows.size:
            contributions = (
                self._left_values * vectors[:, quadratic.right]
                + self._right_values * vectors[:, quadratic.left]
            )
            result += quadratic.row_aggregator(problem.row_count).dot(contributions.T).T
        return self.active * result

    def rmatvec(self, weights: np.ndarray) -> np.ndarray:
        """Per-member ``J_i.T @ w_i`` → ``(k, dim)``."""
        problem = self.problem
        masked = self.active * weights
        result = np.ascontiguousarray(problem._linear_transposed().dot(masked.T).T)
        quadratic = problem.quadratic
        if quadratic.rows.size:
            left_agg, right_agg = quadratic.side_aggregators(problem.dimension)
            row_weights = masked[:, quadratic.rows]
            result += left_agg.dot((row_weights * self._right_values).T).T
            result += right_agg.dot((row_weights * self._left_values).T).T
        return result

    def gradient(self, residuals: np.ndarray) -> np.ndarray:
        """The least-squares gradient ``J_i.T @ r_i`` of ``0.5 * ||r_i||^2``."""
        return self.rmatvec(residuals)

    def block_diagonal(self) -> sparse.csr_matrix:
        """The stacked ``(k * rows, k * dim)`` block-diagonal materialisation."""
        return sparse.block_diag(
            [self.problem.residual_jacobian(self.points[i]) for i in range(self.batch_width)],
            format="csr",
        )


def compile_problem(system: QuadraticSystem, strict_margin: float | None = None) -> CompiledProblem:
    """The memoised :class:`CompiledProblem` of ``system``.

    ``strict_margin`` defaults (via ``None``) to
    :data:`~repro.solvers.base.DEFAULT_STRICT_MARGIN`; solvers pass their own
    ``SolverOptions.strict_margin`` so a per-request margin reaches the
    residual rewrite of the compiled problem.

    The cache lives on the system object itself and is keyed by the strict
    margin plus the system's mutation counter (every API-level mutation —
    added constraints, objective assignment — bumps it), so stale entries can
    never be served while racing solvers share one compilation.  The
    constraint count stays in the key as a belt-and-braces guard against
    direct ``system.constraints`` list mutation, which bypasses the counter.
    """
    if strict_margin is None:
        strict_margin = DEFAULT_STRICT_MARGIN
    key = (float(strict_margin), system.version, len(system.constraints))
    cache: dict | None = getattr(system, "_compiled_problems", None)
    if cache is None:
        cache = {}
        try:
            system._compiled_problems = cache
        except AttributeError:  # pragma: no cover - systems with __slots__
            return CompiledProblem(system, strict_margin=strict_margin)
    problem = cache.get(key)
    if problem is None:
        problem = CompiledProblem(system, strict_margin=strict_margin)
        if len(cache) >= 4:  # systems are compiled under a handful of margins at most
            cache.clear()
        cache[key] = problem
    return problem
