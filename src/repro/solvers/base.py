"""Common solver interface and result type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.invariants.quadratic_system import QuadraticSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solvers.problem import CompiledProblem, SolveControl

#: The canonical numeric-solve defaults.  These used to be hard-coded at every
#: consumer (``CompiledProblem``, ``SolveControl``); they now live here, next
#: to the :class:`SolverOptions` fields they default, and every consumer
#: resolves an explicit ``None`` back to them.
DEFAULT_STRICT_MARGIN = 1e-4
DEFAULT_TOLERANCE = 1e-5


@dataclass(frozen=True)
class SolverOptions:
    """Knobs shared by the numeric solvers.

    Attributes
    ----------
    max_iterations:
        Iteration budget per restart (meaning depends on the solver).
    restarts:
        Number of random restarts.
    tolerance:
        Feasibility tolerance: an assignment is accepted when the maximum
        constraint violation is below this value.
    seed:
        Seed of the pseudo-random restart generator (for reproducibility).
    strict_margin:
        The margin used to turn strict inequalities ``p > 0`` into
        ``p >= strict_margin`` for the numeric solvers.
    verbose:
        Whether to print progress information.
    time_limit:
        Wall-clock limit in seconds.  Enforced *inside* each restart's
        iteration loop — the evaluation closures check a
        :class:`~repro.solvers.problem.Deadline` on every call — as well as
        between restarts, so a solve never overshoots the budget by more than
        one constraint evaluation.
    stop_at_objective:
        Stop restarting as soon as a feasible point with an objective value at
        or below this threshold has been found (the objectives used for weak
        synthesis are squared distances, so 0 means "target matched exactly").
    batch:
        How the multi-start solvers walk the restart axis.  ``"on"`` (the
        default) iterates all restarts as one vectorised batch with survivor
        masks; ``"rows"`` runs the same batched engine one restart at a time
        (the sequential loop — the differential-test oracle: same-seed
        ``"on"``/``"rows"`` runs produce the same winning assignment
        fingerprint); ``"off"`` selects the retired per-restart SciPy path
        (the perf baseline of the ``--min-batch-speedup`` gate).
    """

    max_iterations: int = 400
    restarts: int = 3
    tolerance: float = DEFAULT_TOLERANCE
    seed: int = 0
    strict_margin: float = DEFAULT_STRICT_MARGIN
    verbose: bool = False
    time_limit: float | None = None
    stop_at_objective: float = 1e-6
    batch: str = "on"

    def __post_init__(self) -> None:
        if self.batch not in ("on", "rows", "off"):
            raise ValueError(
                f"batch must be one of 'on', 'rows', 'off'; got {self.batch!r}"
            )


@dataclass
class SolverResult:
    """Outcome of a Step-4 solve.

    ``residual_evaluations`` / ``jacobian_evaluations`` count kernel work in
    *member evaluations* (a width-``k`` batched call on ``k`` live members
    counts ``k``), so they stay comparable across batch modes;
    ``batch_width`` is the restart-batch width the solver iterated (1 per
    member in ``"rows"`` mode, 0 on the legacy ``"off"`` path).
    """

    assignment: Mapping[str, float] | None
    status: str
    objective_value: float | None = None
    max_violation: float | None = None
    iterations: int = 0
    restarts_used: int = 0
    details: dict[str, float] = field(default_factory=dict)
    strategy: str | None = None
    residual_evaluations: int = 0
    jacobian_evaluations: int = 0
    batch_width: int = 0

    @property
    def feasible(self) -> bool:
        """Whether the solver returned an assignment it considers feasible."""
        return self.assignment is not None

    # -- JSON round-trip (the persistent solve store speaks this) -----------------

    def to_dict(self) -> dict:
        return {
            "assignment": dict(self.assignment) if self.assignment is not None else None,
            "status": self.status,
            "objective_value": self.objective_value,
            "max_violation": self.max_violation,
            "iterations": self.iterations,
            "restarts_used": self.restarts_used,
            "details": {str(name): float(value) for name, value in self.details.items()},
            "strategy": self.strategy,
            "residual_evaluations": self.residual_evaluations,
            "jacobian_evaluations": self.jacobian_evaluations,
            "batch_width": self.batch_width,
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "SolverResult":
        if not isinstance(payload, Mapping):
            raise ValueError("solver result document must be a JSON object")
        assignment = payload.get("assignment")
        objective_value = payload.get("objective_value")
        max_violation = payload.get("max_violation")
        strategy = payload.get("strategy")
        return SolverResult(
            assignment={str(k): float(v) for k, v in assignment.items()}
            if assignment is not None
            else None,
            status=str(payload.get("status", "")),
            objective_value=float(objective_value) if objective_value is not None else None,
            max_violation=float(max_violation) if max_violation is not None else None,
            iterations=int(payload.get("iterations", 0)),
            restarts_used=int(payload.get("restarts_used", 0)),
            details={str(k): float(v) for k, v in (payload.get("details") or {}).items()},
            strategy=str(strategy) if strategy is not None else None,
            residual_evaluations=int(payload.get("residual_evaluations", 0)),
            jacobian_evaluations=int(payload.get("jacobian_evaluations", 0)),
            batch_width=int(payload.get("batch_width", 0)),
        )

    def __str__(self) -> str:
        pieces = [f"status={self.status}"]
        if self.objective_value is not None:
            pieces.append(f"objective={self.objective_value:.6g}")
        if self.max_violation is not None:
            pieces.append(f"max_violation={self.max_violation:.3g}")
        pieces.append(f"iterations={self.iterations}")
        return "SolverResult(" + ", ".join(pieces) + ")"


class Solver(ABC):
    """Interface of every Step-4 solver.

    Solvers operate on the compiled problem IR
    (:class:`~repro.solvers.problem.CompiledProblem`); :meth:`solve` is a
    convenience wrapper that compiles (memoised) and delegates to
    :meth:`solve_compiled`.  Racing callers compile once, build a shared
    :class:`~repro.solvers.problem.SolveControl` and call
    :meth:`solve_compiled` directly.
    """

    def __init__(self, options: SolverOptions | None = None):
        self.options = options if options is not None else SolverOptions()
        #: Portfolio strategy key this instance runs under (set by the portfolio).
        self.strategy_label: str | None = None

    def label(self) -> str:
        """The name this solver reports results under (strategy key or class name)."""
        return self.strategy_label if self.strategy_label is not None else self.name()

    def solve(self, system: QuadraticSystem) -> SolverResult:
        """Find an assignment of the unknowns satisfying ``system`` (best effort)."""
        from repro.solvers.problem import compile_problem

        return self.solve_compiled(compile_problem(system, self.options.strict_margin))

    @abstractmethod
    def solve_compiled(
        self, problem: "CompiledProblem", control: "SolveControl | None" = None
    ) -> SolverResult:
        """Solve an already-compiled problem under an optional shared control."""

    def name(self) -> str:
        """Short solver name used in reports."""
        return type(self).__name__
