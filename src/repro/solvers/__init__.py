"""Step-4 solvers: numeric back-ends for the quadratic systems of Step 3.

The paper solves its systems with the commercial QCLP solver LOQO; this
reproduction replaces it with SciPy-based solvers sharing one compiled
problem IR:

* :mod:`repro.solvers.problem` — :class:`CompiledProblem`, the IR every
  solver consumes: flat residual/Jacobian/penalty evaluation built once per
  system (memoised through :func:`compile_problem`), strict-margin
  rewriting, variable ordering and role masks, plus the solve-time control
  plane (:class:`Deadline`, :class:`SolveControl`).
* :mod:`repro.solvers.batched` — the batched multi-start descent engines
  (per-member Levenberg–Marquardt and L-BFGS over the batch
  kernels of the IR) that vectorise the restart axis of every multi-start
  solver; ``SolverOptions.batch`` selects between them and the retired
  per-restart SciPy loops.
* :class:`~repro.solvers.qclp.PenaltyQCLPSolver` — the default: an
  exact-penalty / multi-restart nonlinear programming solver with analytic
  gradients and a Gauss-Newton polish.
* :class:`~repro.solvers.qclp.GaussNewtonSolver` — the cheap
  pure-feasibility sprint (sparse trust-region least squares on the
  residuals).
* :class:`~repro.solvers.alternating.AlternatingSolver` — exploits the
  bilinear structure of the systems (template coefficients vs. certificate
  multipliers) with block-coordinate penalty sweeps.
* :class:`~repro.solvers.portfolio.PortfolioSolver` — races a configurable
  strategy list on one compiled problem with a shared deadline,
  first-feasible-wins cancellation and warm-start exchange.
* :mod:`repro.solvers.sdp` — sum-of-squares feasibility for *fixed* template
  coefficients via alternating projections onto the PSD cone; used by the
  certificate checker.
* :class:`~repro.solvers.strong.RepresentativeEnumerator` — the practical
  substitute for the Grigor'ev–Vorobjov procedure of Strong synthesis:
  multi-start search plus solution clustering.
* :mod:`repro.solvers.farkas` — the linear baseline in the spirit of
  [Colón et al. 2003] used for comparison experiments.
"""

from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.batched import (
    BatchDescent,
    KernelCounters,
    batched_least_squares,
    batched_penalty_descent,
    run_multistart,
    start_batch,
    winning_member,
)
from repro.solvers.farkas import farkas_translate, linear_baseline_system
from repro.solvers.portfolio import (
    DEFAULT_PORTFOLIO,
    PortfolioSolver,
    STRATEGIES,
    make_solver,
    strategy_names,
)
from repro.solvers.problem import (
    CompiledProblem,
    Deadline,
    SolveControl,
    SolverInterrupted,
    compile_problem,
)
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver
from repro.solvers.sdp import SOSFeasibilityResult, check_putinar_certificate, solve_sos_feasibility
from repro.solvers.strong import RepresentativeEnumerator

__all__ = [
    "AlternatingSolver",
    "BatchDescent",
    "CompiledProblem",
    "DEFAULT_PORTFOLIO",
    "Deadline",
    "GaussNewtonSolver",
    "KernelCounters",
    "PenaltyQCLPSolver",
    "PortfolioSolver",
    "RepresentativeEnumerator",
    "SOSFeasibilityResult",
    "STRATEGIES",
    "SolveControl",
    "Solver",
    "SolverInterrupted",
    "SolverOptions",
    "SolverResult",
    "batched_least_squares",
    "batched_penalty_descent",
    "check_putinar_certificate",
    "compile_problem",
    "farkas_translate",
    "linear_baseline_system",
    "make_solver",
    "run_multistart",
    "solve_sos_feasibility",
    "start_batch",
    "strategy_names",
    "winning_member",
]
