"""Step-4 solvers: numeric back-ends for the quadratic systems of Step 3.

The paper solves its systems with the commercial QCLP solver LOQO; this
reproduction replaces it with SciPy-based solvers:

* :class:`~repro.solvers.qclp.PenaltyQCLPSolver` — the default: an
  exact-penalty / multi-restart nonlinear programming solver with analytic
  gradients, optionally polished with SLSQP.
* :class:`~repro.solvers.alternating.AlternatingSolver` — exploits the
  bilinear structure of the systems (template coefficients vs. certificate
  multipliers) by alternating linear least-squares steps with SOS
  (positive-semidefinite) projections.
* :mod:`repro.solvers.sdp` — sum-of-squares feasibility for *fixed* template
  coefficients via alternating projections onto the PSD cone; used by the
  certificate checker.
* :class:`~repro.solvers.strong.RepresentativeEnumerator` — the practical
  substitute for the Grigor'ev–Vorobjov procedure of Strong synthesis:
  multi-start search plus solution clustering.
* :mod:`repro.solvers.farkas` — the linear baseline in the spirit of
  [Colón et al. 2003] used for comparison experiments.
"""

from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.farkas import farkas_translate, linear_baseline_system
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.solvers.sdp import SOSFeasibilityResult, check_putinar_certificate, solve_sos_feasibility
from repro.solvers.strong import RepresentativeEnumerator

__all__ = [
    "AlternatingSolver",
    "PenaltyQCLPSolver",
    "RepresentativeEnumerator",
    "SOSFeasibilityResult",
    "Solver",
    "SolverOptions",
    "SolverResult",
    "check_putinar_certificate",
    "farkas_translate",
    "linear_baseline_system",
    "solve_sos_feasibility",
]
