"""Linear-invariant baseline in the spirit of [Colón et al. 2003].

The CAV 2003 approach generates *linear* invariants for *linear* programs by
applying Farkas' lemma to every consecution condition, which yields bilinear
constraints over the template coefficients and the Farkas multipliers.  In
the vocabulary of this library that is exactly the Handelman translation with
degree-1 templates and single-factor products (no polynomial products, no SOS
matrices), so the baseline is a thin wrapper over the existing machinery.

It is used in the comparison/ablation benchmarks to reproduce the paper's
observation that linear-invariant generators cannot handle the benchmarks
that need genuinely polynomial invariants (Remark 11).
"""

from __future__ import annotations

from typing import Sequence

from repro.cfg.graph import ProgramCFG
from repro.invariants.constraints import ConstraintPair
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.handelman import handelman_translate
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.template import TemplateSet
from repro.polynomial.polynomial import Polynomial
from repro.spec.preconditions import Precondition


def farkas_translate(
    pairs: Sequence[ConstraintPair],
    with_witness: bool = False,
    objective: Polynomial | None = None,
) -> QuadraticSystem:
    """Farkas-style translation: one non-negative multiplier per assumption.

    Equivalent to the Handelman translation restricted to single factors.
    Sound for any degree, complete only for linear invariants of linear
    programs (the [Colón et al. 2003] setting).
    """
    return handelman_translate(pairs, max_factors=1, with_witness=with_witness, objective=objective)


def linear_baseline_system(
    cfg: ProgramCFG,
    precondition: Precondition,
    conjuncts: int = 1,
    objective: Polynomial | None = None,
) -> tuple[TemplateSet, QuadraticSystem]:
    """Build the full linear-baseline pipeline: degree-1 templates + Farkas translation.

    Returns the templates (so callers can interpret solutions) and the
    bilinear system.  The system is expected to be infeasible — or unable to
    express the target — on the paper's polynomial benchmarks, which is the
    comparison point of the ablation experiments.
    """
    templates = TemplateSet.build(cfg, degree=1, conjuncts=conjuncts)
    pairs = generate_constraint_pairs(cfg, precondition, templates)
    system = farkas_translate(pairs, objective=objective)
    return templates, system


def can_express_target(templates: TemplateSet, target: Polynomial, function: str, label_index: int) -> bool:
    """Whether a degree-1 template can even represent the target invariant.

    Linear baselines fail on the paper's benchmarks for one of two reasons:
    the target needs quadratic monomials (this check), or no linear inductive
    strengthening exists.  The ablation bench reports which of the two applied.
    """
    entry = templates.entry_for(function, label_index)
    return all(monomial in entry.monomials for monomial in target.terms)
