"""Block-coordinate (alternating) solver exploiting the bilinear structure.

The Step-3 systems are *bilinear*: every quadratic term is either a product of
a template coefficient (s-variable) with a multiplier coefficient
(t-variable), or a product of two Cholesky entries (l-variables).  Fixing one
block makes the merit function much better conditioned in the other, so this
solver alternates L-BFGS sweeps over

* the template block (s-variables), and
* the certificate block (t-, l- and eps-variables),

under an increasing penalty schedule.  It tends to track a target-invariant
objective more faithfully than the joint penalty solver, at the cost of more
iterations.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.invariants.quadratic_system import QuadraticSystem, VariableRole, classify_unknown
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.numeric import VectorisedSystem


class AlternatingSolver(Solver):
    """Alternate penalty minimisation over the template and certificate blocks."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        sweeps: int = 6,
        penalty_schedule: tuple[float, ...] = (10.0, 100.0, 1_000.0, 10_000.0),
        objective_weight: float = 1.0,
    ):
        super().__init__(options)
        self.sweeps = sweeps
        self.penalty_schedule = penalty_schedule
        self.objective_weight = objective_weight

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _blocks(vectorised: VectorisedSystem) -> tuple[np.ndarray, np.ndarray]:
        template = np.array(
            [classify_unknown(name) is VariableRole.TEMPLATE for name in vectorised.variables]
        )
        return template, ~template

    def _minimise_block(
        self,
        vectorised: VectorisedSystem,
        point: np.ndarray,
        mask: np.ndarray,
        rho: float,
    ) -> np.ndarray:
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            return point

        def fun(sub: np.ndarray) -> float:
            full = point.copy()
            full[indices] = sub
            return vectorised.penalty(full, rho, self.objective_weight)

        def jac(sub: np.ndarray) -> np.ndarray:
            full = point.copy()
            full[indices] = sub
            return vectorised.penalty_gradient(full, rho, self.objective_weight)[indices]

        result = optimize.minimize(
            fun=fun,
            x0=point[indices],
            jac=jac,
            method="L-BFGS-B",
            options={"maxiter": self.options.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        updated = point.copy()
        updated[indices] = result.x
        return updated

    def _initial_point(self, vectorised: VectorisedSystem, rng: np.random.Generator, attempt: int) -> np.ndarray:
        scale = 0.05 * attempt
        point = rng.normal(0.0, scale, size=vectorised.dimension) if scale else np.zeros(vectorised.dimension)
        for position, name in enumerate(vectorised.variables):
            role = classify_unknown(name)
            if role is VariableRole.WITNESS:
                point[position] = max(point[position], 10 * self.options.strict_margin)
        return point

    # -- main loop -------------------------------------------------------------------------

    def solve(self, system: QuadraticSystem) -> SolverResult:
        vectorised = VectorisedSystem(system, strict_margin=self.options.strict_margin)
        if vectorised.dimension == 0:
            return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)

        template_mask, certificate_mask = self._blocks(vectorised)
        rng = np.random.default_rng(self.options.seed)

        best_point: np.ndarray | None = None
        best_violation = np.inf
        best_objective = np.inf
        iterations = 0

        for attempt in range(self.options.restarts):
            point = self._initial_point(vectorised, rng, attempt)
            for rho in self.penalty_schedule:
                for _ in range(self.sweeps):
                    point = self._minimise_block(vectorised, point, certificate_mask, rho)
                    point = self._minimise_block(vectorised, point, template_mask, rho)
                    iterations += 1
                if vectorised.max_violation(point) <= self.options.tolerance:
                    break
            violation = vectorised.max_violation(point)
            objective = vectorised.objective_value(point)
            improved_feasible = violation <= self.options.tolerance and (
                best_violation > self.options.tolerance or objective < best_objective
            )
            improved_infeasible = best_violation > self.options.tolerance and violation < best_violation
            if improved_feasible or improved_infeasible:
                best_point, best_violation, best_objective = point.copy(), violation, objective
            if self.options.verbose:
                print(f"[alt] restart {attempt}: violation={violation:.3g} objective={objective:.6g}")

        if best_point is None:
            return SolverResult(assignment=None, status="no-progress", iterations=iterations)
        feasible = best_violation <= self.options.tolerance
        return SolverResult(
            assignment=vectorised.assignment(best_point) if feasible else None,
            status="optimal" if feasible else "infeasible-best-effort",
            objective_value=best_objective,
            max_violation=best_violation,
            iterations=iterations,
            restarts_used=min(self.options.restarts, attempt + 1),
        )
