"""Block-coordinate (alternating) solver exploiting the bilinear structure.

The Step-3 systems are *bilinear*: every quadratic term is either a product of
a template coefficient (s-variable) with a multiplier coefficient
(t-variable), or a product of two Cholesky entries (l-variables).  Fixing one
block makes the merit function much better conditioned in the other, so this
solver alternates L-BFGS sweeps over

* the template block (s-variables), and
* the certificate block (t-, l- and eps-variables),

under an increasing penalty schedule.  It tends to track a target-invariant
objective more faithfully than the joint penalty solver, at the cost of more
iterations.  Like every Step-4 solver it consumes the shared
:class:`~repro.solvers.problem.CompiledProblem` IR and cooperates with
portfolio deadlines/cancellation through
:class:`~repro.solvers.problem.SolveControl`.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.solvers.base import Solver, SolverResult
from repro.solvers.batched import (
    BatchDescent,
    KernelCounters,
    batched_penalty_descent,
    run_multistart,
)
from repro.solvers.problem import (
    CompiledProblem,
    Deadline,
    SolveControl,
    SolverInterrupted,
    improves,
)


class AlternatingSolver(Solver):
    """Alternate penalty minimisation over the template and certificate blocks."""

    def __init__(
        self,
        options=None,
        sweeps: int = 6,
        penalty_schedule: tuple[float, ...] = (10.0, 100.0, 1_000.0, 10_000.0),
        objective_weight: float = 1.0,
    ):
        super().__init__(options)
        self.sweeps = sweeps
        self.penalty_schedule = penalty_schedule
        self.objective_weight = objective_weight

    # -- helpers --------------------------------------------------------------------

    def _minimise_block(
        self,
        problem: CompiledProblem,
        point: np.ndarray,
        mask: np.ndarray,
        rho: float,
        control: SolveControl,
    ) -> tuple[np.ndarray, int, int]:
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            return point, 0, 0

        def fun(sub: np.ndarray) -> float:
            control.interrupt_if_stopped()
            full = point.copy()
            full[indices] = sub
            return problem.penalty(full, rho, self.objective_weight)

        def jac(sub: np.ndarray) -> np.ndarray:
            full = point.copy()
            full[indices] = sub
            return problem.penalty_gradient(full, rho, self.objective_weight)[indices]

        result = optimize.minimize(
            fun=fun,
            x0=point[indices],
            jac=jac,
            method="L-BFGS-B",
            options={"maxiter": self.options.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        updated = point.copy()
        updated[indices] = result.x
        return updated, int(result.nfev), int(getattr(result, "njev", 0) or 0)

    def _cold_scale(self, attempt: int) -> float:
        """Restart ``attempt``'s cold-start jitter scale.

        The deterministic role-floor start (scale ``0.0``) is what lets the
        block sweeps crack most bilinear systems, so restart 0 keeps it as
        the deliberate single origin row under every seed; the remaining
        rows jitter with strictly growing scales, so no two batch rows ever
        coincide.
        """
        return 0.05 * attempt

    # -- batched restart axis (batch="on"/"rows") ----------------------------------------

    def _descend(
        self,
        problem: CompiledProblem,
        control: SolveControl,
        points: np.ndarray,
        counters: KernelCounters,
    ) -> BatchDescent:
        """Batched block-coordinate sweeps with per-member penalty stages.

        Every member alternates certificate-block and template-block descents
        under its own rho stage; a member leaves the schedule as soon as a
        finished stage leaves it feasible (the sequential loop's in-schedule
        break), and retired members' rows freeze while the rest sweep on.
        """
        options = self.options
        tolerance = options.tolerance
        template_columns = problem.template_mask.astype(float)
        certificate_columns = 1.0 - template_columns
        schedule = np.asarray(self.penalty_schedule, dtype=float)

        x = points.copy()
        members = x.shape[0]
        stage = np.zeros(members, dtype=int)
        finished = np.zeros(members, dtype=bool)
        iterations = 0
        while not finished.all():
            if control.should_stop():
                return BatchDescent(x, iterations, True)
            active = ~finished
            for _ in range(self.sweeps):
                for columns in (certificate_columns, template_columns):
                    if not columns.any():
                        continue
                    outcome = batched_penalty_descent(
                        problem,
                        x,
                        schedule[stage],
                        control=control,
                        counters=counters,
                        objective_weight=self.objective_weight,
                        max_iterations=options.max_iterations,
                        active=active,
                        columns=columns,
                    )
                    x = outcome.points
                    iterations += outcome.iterations
                    if outcome.interrupted:
                        return BatchDescent(x, iterations, True)
            violation = problem.max_violation_batch(x)
            finished |= violation <= tolerance
            finished |= stage >= schedule.size - 1
            stage = np.minimum(stage + 1, schedule.size - 1)
        return BatchDescent(x, iterations, False)

    # -- main loop -------------------------------------------------------------------------

    def solve_compiled(
        self, problem: CompiledProblem, control: SolveControl | None = None
    ) -> SolverResult:
        options = self.options
        if control is None:
            control = SolveControl(
                deadline=Deadline.after(options.time_limit), tolerance=options.tolerance
            )
        if problem.dimension == 0:
            return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)
        if options.batch != "off":
            return run_multistart(
                problem,
                control,
                options,
                self.label(),
                cold_scale=self._cold_scale,
                warm_scale=None,
                descend=lambda points, counters: self._descend(problem, control, points, counters),
                trigger=None,
                size_details=False,
            )
        return self._solve_sequential(problem, control)

    def _solve_sequential(
        self, problem: CompiledProblem, control: SolveControl
    ) -> SolverResult:
        """The retired per-restart SciPy loop (``batch="off"``, the perf baseline)."""
        options = self.options
        template_mask = problem.template_mask
        certificate_mask = ~template_mask
        rng = np.random.default_rng(options.seed)

        best_point: np.ndarray | None = None
        best_violation = np.inf
        best_objective = np.inf
        iterations = 0
        residual_evaluations = 0
        jacobian_evaluations = 0
        attempt = -1

        for attempt in range(options.restarts):
            if control.should_stop():
                break
            point = problem.initial_point(rng, self._cold_scale(attempt))
            interrupted = False
            for rho in self.penalty_schedule:
                for _ in range(self.sweeps):
                    try:
                        point, nfev, njev = self._minimise_block(
                            problem, point, certificate_mask, rho, control
                        )
                        residual_evaluations += nfev
                        jacobian_evaluations += njev
                        point, nfev, njev = self._minimise_block(
                            problem, point, template_mask, rho, control
                        )
                        residual_evaluations += nfev
                        jacobian_evaluations += njev
                    except SolverInterrupted:
                        interrupted = True
                        break
                    iterations += 1
                if interrupted or problem.max_violation(point) <= options.tolerance:
                    break
            violation = problem.max_violation(point)
            objective = problem.objective_value(point)
            if improves(best_violation, best_objective, violation, objective, options.tolerance):
                best_point, best_violation, best_objective = point.copy(), violation, objective
            control.report(point, violation, objective, strategy=self.label())
            if options.verbose:
                print(f"[alt] restart {attempt}: violation={violation:.3g} objective={objective:.6g}")
            if interrupted:
                break

        if best_point is None:
            return SolverResult(
                assignment=None,
                status="no-progress",
                iterations=iterations,
                details={"timed_out": float(control.timed_out)},
                strategy=self.label(),
                residual_evaluations=residual_evaluations,
                jacobian_evaluations=jacobian_evaluations,
            )
        feasible = best_violation <= options.tolerance
        return SolverResult(
            assignment=problem.assignment(best_point) if feasible else None,
            status="optimal" if feasible else "infeasible-best-effort",
            objective_value=best_objective,
            max_violation=best_violation,
            iterations=iterations,
            restarts_used=min(options.restarts, attempt + 1),
            details={"timed_out": float(control.timed_out)},
            strategy=self.label(),
            residual_evaluations=residual_evaluations,
            jacobian_evaluations=jacobian_evaluations,
        )
