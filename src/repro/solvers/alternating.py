"""Block-coordinate (alternating) solver exploiting the bilinear structure.

The Step-3 systems are *bilinear*: every quadratic term is either a product of
a template coefficient (s-variable) with a multiplier coefficient
(t-variable), or a product of two Cholesky entries (l-variables).  Fixing one
block makes the merit function much better conditioned in the other, so this
solver alternates L-BFGS sweeps over

* the template block (s-variables), and
* the certificate block (t-, l- and eps-variables),

under an increasing penalty schedule.  It tends to track a target-invariant
objective more faithfully than the joint penalty solver, at the cost of more
iterations.  Like every Step-4 solver it consumes the shared
:class:`~repro.solvers.problem.CompiledProblem` IR and cooperates with
portfolio deadlines/cancellation through
:class:`~repro.solvers.problem.SolveControl`.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.solvers.base import Solver, SolverResult
from repro.solvers.problem import (
    CompiledProblem,
    Deadline,
    SolveControl,
    SolverInterrupted,
    improves,
)


class AlternatingSolver(Solver):
    """Alternate penalty minimisation over the template and certificate blocks."""

    def __init__(
        self,
        options=None,
        sweeps: int = 6,
        penalty_schedule: tuple[float, ...] = (10.0, 100.0, 1_000.0, 10_000.0),
        objective_weight: float = 1.0,
    ):
        super().__init__(options)
        self.sweeps = sweeps
        self.penalty_schedule = penalty_schedule
        self.objective_weight = objective_weight

    # -- helpers --------------------------------------------------------------------

    def _minimise_block(
        self,
        problem: CompiledProblem,
        point: np.ndarray,
        mask: np.ndarray,
        rho: float,
        control: SolveControl,
    ) -> np.ndarray:
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            return point

        def fun(sub: np.ndarray) -> float:
            control.interrupt_if_stopped()
            full = point.copy()
            full[indices] = sub
            return problem.penalty(full, rho, self.objective_weight)

        def jac(sub: np.ndarray) -> np.ndarray:
            full = point.copy()
            full[indices] = sub
            return problem.penalty_gradient(full, rho, self.objective_weight)[indices]

        result = optimize.minimize(
            fun=fun,
            x0=point[indices],
            jac=jac,
            method="L-BFGS-B",
            options={"maxiter": self.options.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        updated = point.copy()
        updated[indices] = result.x
        return updated

    # -- main loop -------------------------------------------------------------------------

    def solve_compiled(
        self, problem: CompiledProblem, control: SolveControl | None = None
    ) -> SolverResult:
        options = self.options
        if control is None:
            control = SolveControl(
                deadline=Deadline.after(options.time_limit), tolerance=options.tolerance
            )
        if problem.dimension == 0:
            return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)

        template_mask = problem.template_mask
        certificate_mask = ~template_mask
        rng = np.random.default_rng(options.seed)

        best_point: np.ndarray | None = None
        best_violation = np.inf
        best_objective = np.inf
        iterations = 0
        attempt = -1

        for attempt in range(options.restarts):
            if control.should_stop():
                break
            point = problem.initial_point(rng, 0.05 * attempt)
            interrupted = False
            for rho in self.penalty_schedule:
                for _ in range(self.sweeps):
                    try:
                        point = self._minimise_block(problem, point, certificate_mask, rho, control)
                        point = self._minimise_block(problem, point, template_mask, rho, control)
                    except SolverInterrupted:
                        interrupted = True
                        break
                    iterations += 1
                if interrupted or problem.max_violation(point) <= options.tolerance:
                    break
            violation = problem.max_violation(point)
            objective = problem.objective_value(point)
            if improves(best_violation, best_objective, violation, objective, options.tolerance):
                best_point, best_violation, best_objective = point.copy(), violation, objective
            control.report(point, violation, objective, strategy=self.label())
            if options.verbose:
                print(f"[alt] restart {attempt}: violation={violation:.3g} objective={objective:.6g}")
            if interrupted:
                break

        if best_point is None:
            return SolverResult(
                assignment=None,
                status="no-progress",
                iterations=iterations,
                details={"timed_out": float(control.timed_out)},
                strategy=self.label(),
            )
        feasible = best_violation <= options.tolerance
        return SolverResult(
            assignment=problem.assignment(best_point) if feasible else None,
            status="optimal" if feasible else "infeasible-best-effort",
            objective_value=best_objective,
            max_violation=best_violation,
            iterations=iterations,
            restarts_used=min(options.restarts, attempt + 1),
            details={"timed_out": float(control.timed_out)},
            strategy=self.label(),
        )
