"""A racing portfolio of Step-4 strategies over one compiled problem.

The paper's Step 4 hands each quadratic system to a single solver; in
practice different systems favour different back-ends (the pure-feasibility
Gauss-Newton sprint cracks most structured systems in a fraction of the
penalty solver's schedule, while objective-tracking instances need the full
penalty machinery).  :class:`PortfolioSolver` compiles the system **once**
into the shared :class:`~repro.solvers.problem.CompiledProblem` IR and races
a configurable list of strategies over it:

* a **shared deadline** (``SolverOptions.time_limit``) enforced inside every
  strategy's iteration loop;
* **first-feasible-wins cancellation** — the first strategy to report a
  feasible point stops the rest through the shared
  :class:`~repro.solvers.problem.SolveControl`;
* **warm-start exchange** — every strategy may seed its next restart from the
  portfolio's best-known point.

Three executors are supported.  ``"thread"`` races all strategies
concurrently (the numpy-heavy evaluation closures release the GIL for most of
their work).  ``"sequential"`` runs the strategies cheapest-first and stops at
the first feasible point — the optimistic "race cheap certificates before
expensive ones" mode, and the right choice on single-core machines.
``"process"`` fans strategies out over separate processes (no warm-start
exchange, cancellation only between completions).  The default ``"auto"``
picks ``"thread"`` on multi-core machines and ``"sequential"`` otherwise.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.errors import SynthesisError
from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.problem import CompiledProblem, Deadline, SolveControl, improves
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver


def _qclp_feasibility(options: SolverOptions) -> Solver:
    return PenaltyQCLPSolver(options, objective_weight=0.0)


#: Registered Step-4 strategies, cheapest first (the sequential executor
#: honours this ordering when the caller does not specify one).
STRATEGIES: dict[str, Callable[[SolverOptions], Solver]] = {
    "gauss-newton": GaussNewtonSolver,
    "qclp": PenaltyQCLPSolver,
    "qclp-feasibility": _qclp_feasibility,
    "alternating": AlternatingSolver,
}

#: The default racing line-up: the cheap feasibility sprint, the default
#: penalty solver, and the bilinear block-coordinate solver.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("gauss-newton", "qclp", "alternating")

EXECUTORS = ("auto", "thread", "sequential", "process")


def strategy_names() -> tuple[str, ...]:
    """Every registered strategy name (for CLIs and option validation)."""
    return tuple(STRATEGIES)


def parse_strategy(value: str | None) -> dict:
    """Turn a ``--strategy`` CLI value into synthesis-option overrides.

    A single registered name selects that back-end; ``"portfolio"`` races the
    default line-up; a comma-separated list races exactly those strategies.
    Returns a (possibly empty) dict of ``strategy``/``portfolio`` overrides
    for :class:`~repro.invariants.synthesis.SynthesisOptions`.
    """
    if not value:
        return {}
    names = [name.strip() for name in value.split(",") if name.strip()]
    if len(names) == 1 and names[0] != "portfolio":
        return {"strategy": names[0]}
    if names == ["portfolio"]:
        return {"strategy": "portfolio"}
    return {"strategy": "portfolio", "portfolio": tuple(name for name in names if name != "portfolio")}


def make_solver(
    strategy: str = "qclp",
    options: SolverOptions | None = None,
    portfolio: Sequence[str] = (),
    executor: str = "auto",
) -> Solver:
    """Instantiate the Step-4 solver named by ``strategy``.

    ``strategy`` is either a registered strategy name or ``"portfolio"``, in
    which case ``portfolio`` lists the strategies to race (empty means
    :data:`DEFAULT_PORTFOLIO`).
    """
    if strategy == "portfolio":
        return PortfolioSolver(options, strategies=tuple(portfolio) or DEFAULT_PORTFOLIO, executor=executor)
    factory = STRATEGIES.get(strategy)
    if factory is None:
        known = ", ".join([*STRATEGIES, "portfolio"])
        raise SynthesisError(f"unknown solver strategy {strategy!r}; known strategies: {known}")
    solver = factory(options if options is not None else SolverOptions())
    solver.strategy_label = strategy
    return solver


@dataclass
class StrategyOutcome:
    """What one racing strategy produced (``result`` is None when it was skipped).

    ``seconds`` is recorded for every strategy — winners, losers and
    cancelled entries alike — so schedulers mining race outcomes see the full
    per-strategy cost, not just the winning time.  ``cancelled`` marks a
    strategy that never ran its solver: the race was already won (or the
    deadline gone) when its turn came, including a staggered launch whose
    grace period was cut short by the primary's win.
    """

    name: str
    result: SolverResult | None
    seconds: float
    error: str | None = None
    cancelled: bool = False

    @property
    def feasible(self) -> bool:
        return self.result is not None and self.result.feasible


def _run_strategy(solver: Solver, problem: CompiledProblem) -> tuple[SolverResult, float]:
    """Process-executor entry point (module-level for picklability)."""
    start = time.perf_counter()
    result = solver.solve_compiled(problem)
    return result, time.perf_counter() - start


class PortfolioSolver(Solver):
    """Race several Step-4 strategies on one shared compiled problem."""

    def __init__(
        self,
        options: SolverOptions | None = None,
        strategies: Sequence[str] = DEFAULT_PORTFOLIO,
        executor: str = "auto",
        stop_on_feasible: bool = True,
        stagger_seconds: float = 0.0,
    ):
        super().__init__(options)
        if not strategies:
            raise SynthesisError("a portfolio needs at least one strategy")
        if stagger_seconds < 0:
            raise SynthesisError(f"stagger_seconds must be non-negative, got {stagger_seconds}")
        unknown = [name for name in strategies if name not in STRATEGIES]
        if unknown:
            raise SynthesisError(
                f"unknown portfolio strategies {unknown!r}; known strategies: {', '.join(STRATEGIES)}"
            )
        if len(set(strategies)) != len(strategies):
            raise SynthesisError(
                f"duplicate portfolio strategies in {tuple(strategies)!r}; "
                "outcomes and racing columns are keyed by strategy name"
            )
        if executor not in EXECUTORS:
            raise SynthesisError(f"unknown executor {executor!r}; known executors: {', '.join(EXECUTORS)}")
        self.strategies = tuple(strategies)
        self.executor = executor
        self.stop_on_feasible = stop_on_feasible
        #: Grace period before every strategy after the first launches (a
        #: scheduler's "predicted primary first" staggered start).  0 races
        #: everything at once — the historical behaviour.
        self.stagger_seconds = stagger_seconds

    # -- strategy construction -----------------------------------------------------

    def _solvers(self) -> list[tuple[str, Solver]]:
        """One freshly configured solver per strategy, with decorrelated seeds."""
        solvers = []
        for index, name in enumerate(self.strategies):
            per_strategy = replace(self.options, seed=self.options.seed + 1009 * index)
            solver = STRATEGIES[name](per_strategy)
            solver.strategy_label = name
            solvers.append((name, solver))
        return solvers

    def _resolved_executor(self) -> str:
        if self.executor != "auto":
            return self.executor
        return "thread" if (os.cpu_count() or 1) > 1 else "sequential"

    # -- main entry ------------------------------------------------------------------

    def solve_compiled(
        self, problem: CompiledProblem, control: SolveControl | None = None
    ) -> SolverResult:
        if problem.dimension == 0:
            return SolverResult(assignment={}, status="trivial", objective_value=0.0, max_violation=0.0)
        if control is None:
            control = SolveControl(
                deadline=Deadline.after(self.options.time_limit),
                tolerance=self.options.tolerance,
                stop_on_feasible=self.stop_on_feasible,
            )
        executor = self._resolved_executor()
        if executor == "thread":
            outcomes = self._race_threads(problem, control)
        elif executor == "process":
            outcomes = self._race_processes(problem, control)
        else:
            outcomes = self._race_sequential(problem, control)
        return self._assemble(outcomes, control)

    # -- executors ----------------------------------------------------------------------

    def _race_sequential(
        self, problem: CompiledProblem, control: SolveControl
    ) -> list[StrategyOutcome]:
        """Cheapest-first racing with early exit: optimistic certificate order."""
        outcomes = []
        for name, solver in self._solvers():
            if control.should_stop():
                outcomes.append(StrategyOutcome(name=name, result=None, seconds=0.0, cancelled=True))
                continue
            start = time.perf_counter()
            try:
                result = solver.solve_compiled(problem, control)
                outcomes.append(StrategyOutcome(name, result, time.perf_counter() - start))
            except Exception as error:  # pragma: no cover - defensive: bad strategy config
                outcomes.append(
                    StrategyOutcome(name, None, time.perf_counter() - start, error=repr(error))
                )
        return outcomes

    def _race_threads(self, problem: CompiledProblem, control: SolveControl) -> list[StrategyOutcome]:
        solvers = self._solvers()

        def run(entry: tuple[str, Solver], defer_seconds: float = 0.0) -> StrategyOutcome:
            name, solver = entry
            start = time.perf_counter()
            # Staggered launch: sleep out the grace period on the shared
            # control so a primary win (or the deadline) cancels the launch
            # outright — the deferred strategy then never costs a core.
            if defer_seconds > 0.0 and control.wait_stop(defer_seconds):
                return StrategyOutcome(name, None, time.perf_counter() - start, cancelled=True)
            try:
                result = solver.solve_compiled(problem, control)
                return StrategyOutcome(name, result, time.perf_counter() - start)
            except Exception as error:  # pragma: no cover - defensive: bad strategy config
                return StrategyOutcome(name, None, time.perf_counter() - start, error=repr(error))

        with ThreadPoolExecutor(max_workers=len(solvers)) as pool:
            futures = [
                pool.submit(run, entry, self.stagger_seconds if index else 0.0)
                for index, entry in enumerate(solvers)
            ]
            return [future.result() for future in futures]

    def _race_processes(self, problem: CompiledProblem, control: SolveControl) -> list[StrategyOutcome]:
        """Process racing: isolated strategies, first feasible completion wins.

        No shared control crosses the process boundary, so there is no
        warm-start exchange and cancellation happens between completions: once
        a feasible result arrives the remaining futures are abandoned.
        """
        solvers = self._solvers()
        remaining = control.deadline.remaining()
        if remaining is not None:
            solvers = [
                (name, replace_time_limit(solver, remaining)) for name, solver in solvers
            ]
        outcomes: dict[str, StrategyOutcome] = {}
        with ProcessPoolExecutor(max_workers=len(solvers)) as pool:
            futures = {
                pool.submit(_run_strategy, solver, problem): name for name, solver in solvers
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                stop = False
                for future in done:
                    name = futures[future]
                    try:
                        result, seconds = future.result()
                        outcomes[name] = StrategyOutcome(name, result, seconds)
                        if result.feasible:
                            control.report(
                                problem.vector(result.assignment),
                                result.max_violation or 0.0,
                                result.objective_value or 0.0,
                                strategy=name,
                            )
                            if self.stop_on_feasible:
                                stop = True
                    except Exception as error:  # pragma: no cover - worker crash
                        outcomes[name] = StrategyOutcome(name, None, 0.0, error=repr(error))
                if stop:
                    for future in pending:
                        future.cancel()
                    break
        for name, _ in solvers:
            outcomes.setdefault(name, StrategyOutcome(name=name, result=None, seconds=0.0, cancelled=True))
        return [outcomes[name] for name, _ in solvers]

    # -- result assembly ------------------------------------------------------------------

    def _assemble(self, outcomes: list[StrategyOutcome], control: SolveControl) -> SolverResult:
        tolerance = self.options.tolerance
        best: SolverResult | None = None
        best_name: str | None = None
        best_violation = float("inf")
        best_objective = float("inf")
        iterations = 0
        restarts = 0
        residual_evaluations = 0
        jacobian_evaluations = 0
        batch_width = 0
        details: dict[str, float] = {}

        for outcome in outcomes:
            details[f"portfolio_{outcome.name}_seconds"] = outcome.seconds
            details[f"portfolio_{outcome.name}_cancelled"] = float(outcome.cancelled)
            if outcome.result is None:
                details[f"portfolio_{outcome.name}_feasible"] = -1.0  # skipped or failed
                continue
            result = outcome.result
            details[f"portfolio_{outcome.name}_feasible"] = float(result.feasible)
            iterations += result.iterations
            restarts += result.restarts_used
            residual_evaluations += result.residual_evaluations
            jacobian_evaluations += result.jacobian_evaluations
            batch_width = max(batch_width, result.batch_width)
            violation = result.max_violation if result.max_violation is not None else float("inf")
            objective = result.objective_value if result.objective_value is not None else float("inf")
            if best is None or improves(best_violation, best_objective, violation, objective, tolerance):
                best, best_name = result, outcome.name
                best_violation, best_objective = violation, objective

        if best is None:
            return SolverResult(
                assignment=None,
                status="no-progress",
                iterations=iterations,
                restarts_used=restarts,
                details=details,
                strategy=None,
                residual_evaluations=residual_evaluations,
                jacobian_evaluations=jacobian_evaluations,
                batch_width=batch_width,
            )
        details.update(best.details)
        details["timed_out"] = float(control.timed_out)
        return SolverResult(
            assignment=best.assignment,
            status=best.status,
            objective_value=best.objective_value,
            max_violation=best.max_violation,
            iterations=iterations,
            restarts_used=restarts,
            details=details,
            residual_evaluations=residual_evaluations,
            jacobian_evaluations=jacobian_evaluations,
            batch_width=batch_width,
            # The strategy whose result is actually returned; the first
            # feasible *reporter* (control.winner) can differ when a slower
            # strategy still finishes with a better point.
            strategy=best_name,
        )


def replace_time_limit(solver: Solver, seconds: float) -> Solver:
    """A copy-free tightening of a solver's wall-clock budget (process racing)."""
    limit = solver.options.time_limit
    solver.options = replace(
        solver.options, time_limit=seconds if limit is None else min(limit, seconds)
    )
    return solver
