"""Sum-of-squares feasibility via alternating projections (POCS).

When the template coefficients are *fixed* (for example when checking a
candidate invariant, or inside the alternating Step-4 solver), each constraint
pair reduces to an SOS feasibility problem::

    g - eps  =  h_0 + sum_i h_i * g_i,      h_i sum-of-squares

which is a semidefinite feasibility problem over the Gram matrices of the
``h_i``.  Without an SDP solver in the environment we solve it by projecting
alternately onto (a) the affine subspace defined by coefficient matching and
(b) the product of positive-semidefinite cones.  Both are convex, so the
iteration converges to a point of the intersection whenever one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.invariants.constraints import ConstraintPair
from repro.polynomial.compiled import coefficient_vector, lower_coefficient_matrix, monomial_index
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import monomials_up_to_degree
from repro.polynomial.polynomial import Polynomial
from repro.polynomial.sos import project_to_psd
from repro.solvers.problem import Deadline


@dataclass
class SOSFeasibilityResult:
    """Outcome of one SOS feasibility solve."""

    feasible: bool
    epsilon: float
    iterations: int
    affine_residual: float
    psd_residual: float
    gram_matrices: list[np.ndarray] = field(default_factory=list)
    basis: tuple[Monomial, ...] = ()

    @property
    def certificate_found(self) -> bool:
        """Alias for :attr:`feasible` (readability at call sites)."""
        return self.feasible


def _gram_index(multiplier_count: int, basis_size: int) -> list[tuple[int, int, int]]:
    """Flat index of the upper-triangular entries of every Gram matrix."""
    entries: list[tuple[int, int, int]] = []
    for which in range(multiplier_count):
        for row in range(basis_size):
            for col in range(row, basis_size):
                entries.append((which, row, col))
    return entries


def _entry_polynomial(row_monomial: Monomial, col_monomial: Monomial, multiplier: Polynomial,
                      off_diagonal: bool) -> Polynomial:
    contribution = Polynomial.from_monomial(row_monomial * col_monomial)
    if off_diagonal:
        contribution = contribution.scale(2)
    return contribution * multiplier


def solve_sos_feasibility(
    conclusion: Polynomial,
    assumptions: Sequence[Polynomial],
    variables: Sequence[str],
    upsilon: int,
    epsilon: float = 1e-6,
    max_iterations: int = 6000,
    tolerance: float = 1e-7,
    feasibility_tolerance: float | None = None,
    deadline: Deadline | None = None,
) -> SOSFeasibilityResult:
    """Search for a Putinar certificate of ``assumptions ==> conclusion > 0``.

    All polynomials must be numeric (no template unknowns).  Returns the Gram
    matrices of the multipliers ``h_0 .. h_m`` when a certificate is found.
    A ``deadline`` bounds the wall-clock of the projection loop itself (checked
    every iteration, like the other Step-4 back-ends); the result then reports
    whatever residuals the last completed iteration reached.

    Certificates that only exist on the boundary of the PSD cone (rank-deficient
    Gram matrices, the common case for tight invariants) make alternating
    projections converge linearly rather than finitely, so feasibility is
    decided against ``feasibility_tolerance`` — by default a small fraction of
    the conclusion's coefficient scale.  Infeasible instances converge to a
    residual equal to the positivity gap, far above that threshold.
    """
    variables = [name for name in variables if name]
    if feasibility_tolerance is None:
        scale = max([1.0, *(abs(float(c)) for _, c in conclusion.items())])
        feasibility_tolerance = max(100 * tolerance, 2e-3 * scale)
    multipliers = [Polynomial.one(), *assumptions]
    basis = monomials_up_to_degree(variables, upsilon // 2) if variables else [Monomial.one()]
    basis_size = len(basis)
    entries = _gram_index(len(multipliers), basis_size)

    # Target polynomial and the linear coefficient-matching system A x = b.
    target = conclusion - Polynomial.constant(epsilon)
    entry_polynomials: list[Polynomial] = []
    for which, row, col in entries:
        entry_polynomials.append(
            _entry_polynomial(basis[row], basis[col], multipliers[which], off_diagonal=row != col)
        )

    index = monomial_index((target, *entry_polynomials))
    row_count = len(index)
    column_count = len(entries)
    matrix = lower_coefficient_matrix(entry_polynomials, index)
    rhs = coefficient_vector(target, index)

    if column_count == 0:
        feasible = bool(np.all(np.abs(rhs) <= tolerance))
        return SOSFeasibilityResult(
            feasible=feasible, epsilon=epsilon, iterations=0,
            affine_residual=float(np.max(np.abs(rhs), initial=0.0)), psd_residual=0.0,
        )

    gram = np.linalg.pinv(matrix @ matrix.T + 1e-12 * np.eye(row_count))

    def project_affine(point: np.ndarray) -> np.ndarray:
        correction = matrix.T @ (gram @ (matrix @ point - rhs))
        return point - correction

    def to_matrices(point: np.ndarray) -> list[np.ndarray]:
        matrices = [np.zeros((basis_size, basis_size)) for _ in multipliers]
        for value, (which, row, col) in zip(point, entries):
            matrices[which][row, col] = value
            matrices[which][col, row] = value
        return matrices

    def from_matrices(matrices: Sequence[np.ndarray]) -> np.ndarray:
        point = np.zeros(column_count)
        for position, (which, row, col) in enumerate(entries):
            point[position] = matrices[which][row, col]
        return point

    if deadline is None:
        deadline = Deadline.never()
    point = np.zeros(column_count)
    affine_residual = np.inf
    psd_residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if deadline.expired():
            break
        point = project_affine(point)
        affine_residual = float(np.max(np.abs(matrix @ point - rhs), initial=0.0))
        matrices = to_matrices(point)
        projected = [project_to_psd(matrix_i) for matrix_i in matrices]
        psd_residual = max(
            float(np.max(np.abs(original - fixed), initial=0.0))
            for original, fixed in zip(matrices, projected)
        )
        point = from_matrices(projected)
        if affine_residual <= tolerance and psd_residual <= tolerance:
            break

    final_affine = float(np.max(np.abs(matrix @ point - rhs), initial=0.0))
    feasible = final_affine <= feasibility_tolerance and psd_residual <= feasibility_tolerance
    return SOSFeasibilityResult(
        feasible=feasible,
        epsilon=epsilon,
        iterations=iterations,
        affine_residual=final_affine,
        psd_residual=psd_residual,
        gram_matrices=to_matrices(point),
        basis=tuple(basis),
    )


def check_putinar_certificate(
    pair: ConstraintPair,
    upsilon: int = 2,
    epsilon: float = 1e-6,
    max_iterations: int = 6000,
    tolerance: float = 1e-7,
    deadline: Deadline | None = None,
) -> SOSFeasibilityResult:
    """SOS-certificate check of a *numeric* constraint pair (no unknowns left)."""
    if pair.unknowns():
        raise ValueError(
            f"constraint pair {pair.name!r} still contains template unknowns; "
            "instantiate it before checking the certificate"
        )
    return solve_sos_feasibility(
        conclusion=pair.conclusion,
        assumptions=list(pair.assumptions),
        variables=list(pair.relevant_program_variables()),
        upsilon=upsilon,
        epsilon=epsilon,
        max_iterations=max_iterations,
        tolerance=tolerance,
        deadline=deadline,
    )
