"""Vectorised numeric view of a quadratic system.

The Step-3 systems routinely contain thousands of constraints and unknowns;
evaluating them constraint-by-constraint in Python is far too slow inside an
optimisation loop.  :class:`VectorisedSystem` compiles a
:class:`~repro.invariants.quadratic_system.QuadraticSystem` into flat numpy
arrays once, after which constraint values, residuals and penalty gradients
are all single vectorised expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.invariants.quadratic_system import ConstraintKind, QuadraticSystem
from repro.polynomial.compiled import lower_quadratic
from repro.polynomial.polynomial import Polynomial


@dataclass
class _QuadraticTerms:
    """Flat triplet representation of all bilinear terms, tagged by constraint row."""

    rows: np.ndarray
    left: np.ndarray
    right: np.ndarray
    coefficients: np.ndarray

    @staticmethod
    def empty() -> "_QuadraticTerms":
        zero = np.zeros(0, dtype=np.int64)
        return _QuadraticTerms(rows=zero, left=zero, right=zero, coefficients=np.zeros(0))

    def values(self, point: np.ndarray, row_count: int) -> np.ndarray:
        if self.rows.size == 0:
            return np.zeros(row_count)
        contributions = self.coefficients * point[self.left] * point[self.right]
        return np.bincount(self.rows, weights=contributions, minlength=row_count)

    def add_weighted_gradient(
        self, point: np.ndarray, weights: np.ndarray, gradient: np.ndarray
    ) -> None:
        if self.rows.size == 0:
            return
        scale = weights[self.rows] * self.coefficients
        np.add.at(gradient, self.left, scale * point[self.right])
        np.add.at(gradient, self.right, scale * point[self.left])


def _compile_rows(
    polynomials: Sequence[Polynomial], index: Mapping[str, int], dimension: int
) -> tuple[np.ndarray, sparse.csr_matrix, _QuadraticTerms]:
    triplets = lower_quadratic(polynomials, index)
    linear = sparse.csr_matrix(
        (triplets.linear_values, (triplets.linear_rows, triplets.linear_cols)),
        shape=(len(polynomials), dimension),
    )
    quadratic = _QuadraticTerms(
        rows=triplets.quad_rows,
        left=triplets.quad_left,
        right=triplets.quad_right,
        coefficients=triplets.quad_values,
    )
    return triplets.constants, linear, quadratic


class VectorisedSystem:
    """Numpy-compiled constraints, residuals and penalty gradients of a system."""

    def __init__(self, system: QuadraticSystem, strict_margin: float = 1e-4):
        self.system = system
        self.variables: list[str] = system.variables()
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.variables)}
        self.dimension = len(self.variables)
        self.strict_margin = strict_margin

        polynomials = [constraint.polynomial for constraint in system.constraints]
        self.constants, self.linear, self.quadratic = _compile_rows(
            polynomials, self.index, self.dimension
        )
        kinds = [constraint.kind for constraint in system.constraints]
        self.equality_mask = np.array([kind is ConstraintKind.EQUALITY for kind in kinds])
        self.nonneg_mask = np.array([kind is ConstraintKind.NONNEGATIVE for kind in kinds])
        self.positive_mask = np.array([kind is ConstraintKind.POSITIVE for kind in kinds])
        self.row_count = len(polynomials)

        objective_constants, objective_linear, objective_quadratic = _compile_rows(
            [system.objective], self.index, self.dimension
        )
        self.objective_constant = float(objective_constants[0]) if objective_constants.size else 0.0
        self.objective_linear = objective_linear
        self.objective_quadratic = objective_quadratic

    # -- values ------------------------------------------------------------------

    def constraint_values(self, point: np.ndarray) -> np.ndarray:
        """The value of every constraint polynomial at ``point``."""
        if self.row_count == 0:
            return np.zeros(0)
        values = self.constants + self.linear.dot(point)
        values = values + self.quadratic.values(point, self.row_count)
        return values

    def residuals(self, point: np.ndarray) -> np.ndarray:
        """Signed residuals: zero exactly when the corresponding constraint holds."""
        values = self.constraint_values(point)
        residuals = np.zeros_like(values)
        residuals[self.equality_mask] = values[self.equality_mask]
        nonneg = self.nonneg_mask
        residuals[nonneg] = np.minimum(values[nonneg], 0.0)
        positive = self.positive_mask
        residuals[positive] = np.minimum(values[positive] - self.strict_margin, 0.0)
        return residuals

    def max_violation(self, point: np.ndarray) -> float:
        """The largest absolute residual (0 when feasible)."""
        residuals = self.residuals(point)
        return float(np.max(np.abs(residuals))) if residuals.size else 0.0

    def objective_value(self, point: np.ndarray) -> float:
        """Value of the objective polynomial at ``point``."""
        value = self.objective_constant + float(self.objective_linear.dot(point)[0])
        value += float(self.objective_quadratic.values(point, 1)[0])
        return value

    def objective_gradient(self, point: np.ndarray) -> np.ndarray:
        gradient = np.asarray(self.objective_linear.todense()).ravel().astype(float).copy()
        self.objective_quadratic.add_weighted_gradient(point, np.ones(1), gradient)
        return gradient

    # -- penalty function -----------------------------------------------------------

    def penalty(self, point: np.ndarray, rho: float, objective_weight: float = 1.0) -> float:
        """The exact quadratic-penalty merit function."""
        residuals = self.residuals(point)
        return objective_weight * self.objective_value(point) + rho * float(residuals @ residuals)

    def penalty_gradient(
        self, point: np.ndarray, rho: float, objective_weight: float = 1.0
    ) -> np.ndarray:
        """Analytic gradient of :meth:`penalty`."""
        values = self.constraint_values(point)
        residuals = np.zeros_like(values)
        residuals[self.equality_mask] = values[self.equality_mask]
        nonneg = self.nonneg_mask
        residuals[nonneg] = np.minimum(values[nonneg], 0.0)
        positive = self.positive_mask
        residuals[positive] = np.minimum(values[positive] - self.strict_margin, 0.0)

        weights = 2.0 * rho * residuals
        gradient = self.linear.T.dot(weights)
        gradient = np.asarray(gradient).ravel()
        self.quadratic.add_weighted_gradient(point, weights, gradient)
        gradient += objective_weight * self.objective_gradient(point)
        return gradient

    def residual_jacobian(self, point: np.ndarray) -> sparse.csr_matrix:
        """Sparse Jacobian of :meth:`residuals` (rows of inactive inequalities are zero)."""
        values = self.constraint_values(point)
        active = np.ones(self.row_count)
        active[self.nonneg_mask] = (values[self.nonneg_mask] < 0.0).astype(float)
        active[self.positive_mask] = (values[self.positive_mask] < self.strict_margin).astype(float)

        jacobian = self.linear.tolil(copy=True)
        if self.quadratic.rows.size:
            rows = np.concatenate([self.quadratic.rows, self.quadratic.rows])
            cols = np.concatenate([self.quadratic.left, self.quadratic.right])
            vals = np.concatenate(
                [
                    self.quadratic.coefficients * point[self.quadratic.right],
                    self.quadratic.coefficients * point[self.quadratic.left],
                ]
            )
            quadratic_part = sparse.coo_matrix(
                (vals, (rows, cols)), shape=(self.row_count, self.dimension)
            )
            jacobian = (jacobian.tocsr() + quadratic_part.tocsr()).tolil()
        jacobian = sparse.diags(active).dot(jacobian.tocsr())
        return jacobian.tocsr()

    # -- conversions -------------------------------------------------------------------

    def assignment(self, point: np.ndarray) -> dict[str, float]:
        """Name-to-value view of a solution vector."""
        return {name: float(value) for name, value in zip(self.variables, point)}

    def vector(self, assignment: Mapping[str, float]) -> np.ndarray:
        """Vector view of a name-to-value assignment (missing names default to 0)."""
        return np.array([float(assignment.get(name, 0.0)) for name in self.variables])
