"""Batched multi-start descent engines over the CompiledProblem batch kernels.

Every Step-4 solver used to walk its restarts in a Python loop, evaluating
one dimension-length point per kernel call.  The engines here iterate the
whole restart batch at once — one ``(k, d)`` array of iterates, one batched
kernel call per descent step — with per-member step sizes and survivor
masks: converged, diverged and line-search-stalled members *retire* from the
batch (their rows freeze) while the rest keep iterating.

The load-bearing property is **lockstep row independence**: every update of
member ``i`` uses only member ``i``'s row of the batched kernel outputs, and
the batched kernels themselves are row-independent.  A member's trajectory
is therefore bit-identical whether it iterates alone (``batch="rows"``) or
inside a width-``k`` batch (``batch="on"``) — which is what lets
:func:`winning_member` replay the retired sequential restart loop's
first-feasible-wins semantics over batch results and produce the same
winning assignment fingerprint.

Deadline / cancellation checks (:meth:`SolveControl.should_stop`) happen
once per batched iteration — the same overshoot bound as the per-evaluation
closures of the legacy loops, since one batched iteration replaces ``k``
scalar evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.solvers.base import SolverOptions, SolverResult
from repro.solvers.problem import CompiledProblem, SolveControl, improves

#: Per-member damping / step-size clamps shared by the engines.
_MIN_DAMPING = 1e-10
_MAX_DAMPING = 1e12
_MIN_STEP = 1e-14
_MAX_STEP = 1e8
#: Curvature pairs kept by the batched L-BFGS penalty descent.
_LBFGS_HISTORY = 8


@dataclass
class KernelCounters:
    """Kernel-evaluation accounting of one batched solve.

    Counts are in *member evaluations* — a width-``k`` batched kernel call on
    ``k`` live members counts ``k``, so the numbers stay comparable with the
    scalar loops they replace.
    """

    residual_evaluations: int = 0
    jacobian_evaluations: int = 0

    def count_residuals(self, members: int) -> None:
        self.residual_evaluations += int(members)

    def count_jacobians(self, members: int) -> None:
        self.jacobian_evaluations += int(members)


@dataclass
class BatchDescent:
    """What one batched descent produced: final iterates plus bookkeeping."""

    points: np.ndarray  #: (k, d) final iterates (retired rows frozen where they retired)
    iterations: int  #: total member-iterations performed (sum over live members)
    interrupted: bool  #: True when the control stopped the descent mid-flight


def start_batch(
    problem: CompiledProblem,
    control: SolveControl,
    rng: np.random.Generator,
    restarts: int,
    cold_scale: Callable[[int], float],
    warm_scale: Callable[[int], float] | None = None,
) -> np.ndarray:
    """The ``(k, d)`` starting points of one batched multi-start solve.

    All cold rows are drawn in one ``standard_normal`` call (so the batch is
    a deterministic function of the seed, independent of batch width); when
    the portfolio's warm-start exchange holds a best-known point and
    ``warm_scale`` is given, the odd rows are re-seeded as perturbations of
    it — the batched counterpart of the legacy loop's "exploit on odd
    attempts" policy, resolved once at batch construction.
    """
    scales = np.array([cold_scale(i) for i in range(restarts)], dtype=float)
    points = problem.initial_points(rng, scales)
    if warm_scale is not None and restarts > 1:
        warm = control.warm_start()
        if warm is not None:
            odd = np.arange(1, restarts, 2)
            points[odd] = problem.perturbed_batch(
                warm, rng, np.array([warm_scale(int(i)) for i in odd])
            )
    return points


def winning_member(
    violations: np.ndarray,
    objectives: np.ndarray,
    count: int,
    tolerance: float,
    trigger: Callable[[float, float], bool] | None = None,
) -> tuple[int | None, int]:
    """Replay the sequential restart loop's fold over batch results.

    Scans members in ascending index order with the shared :func:`improves`
    ordering, stopping as soon as the running best satisfies ``trigger`` —
    exactly when the retired ``for attempt in range(restarts)`` loop broke.
    Returns ``(best_index, members_consumed)``; members past the stop point
    are ignored, which is what makes the batched winner identical to the
    sequential one.
    """
    best: int | None = None
    best_violation = np.inf
    best_objective = np.inf
    used = 0
    for i in range(count):
        used = i + 1
        violation = float(violations[i])
        objective = float(objectives[i])
        if best is None or improves(best_violation, best_objective, violation, objective, tolerance):
            best, best_violation, best_objective = i, violation, objective
        if trigger is not None and trigger(best_violation, best_objective):
            break
    return best, used


def cancel_overtaken(live: np.ndarray, retired_trigger: np.ndarray) -> None:
    """Retire members the sequential loop would never have started.

    ``retired_trigger[i]`` marks a *retired* member whose result satisfies
    the win trigger.  Once every member below such an ``i`` has retired, the
    sequential loop would have stopped at ``i`` — so all higher members are
    masked out of the batch in place (their rows stay frozen at the current
    iterate and are ignored by the fold anyway).
    """
    retired = ~live
    for index in np.flatnonzero(retired_trigger & retired):
        if retired[:index].all():
            live[index + 1 :] = False
            return


def _batched_cg(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    active: np.ndarray,
    iterations: int,
    rtol: float = 1e-6,
) -> np.ndarray:
    """Per-member conjugate gradients on ``k`` independent SPD systems.

    ``matvec`` must be row-independent (block-diagonal across members);
    the CG scalars (``alpha``, ``beta``) are then per-member, so the batched
    recursion is exactly ``k`` decoupled CG runs.
    """
    x = np.zeros_like(rhs)
    r = rhs.copy()
    p = rhs.copy()
    rs = np.einsum("kd,kd->k", r, r)
    threshold = (rtol * rtol) * rs
    live = active & (rs > 0.0)
    for _ in range(iterations):
        if not live.any():
            break
        Ap = matvec(p)
        pAp = np.einsum("kd,kd->k", p, Ap)
        # Non-positive curvature (numerically indefinite member): stop that
        # member with whatever descent direction it accumulated so far.
        live &= pAp > 0.0
        alpha = np.where(live, rs / np.where(pAp > 0.0, pAp, 1.0), 0.0)
        x = np.where(live[:, None], x + alpha[:, None] * p, x)
        r = np.where(live[:, None], r - alpha[:, None] * Ap, r)
        rs_next = np.einsum("kd,kd->k", r, r)
        live &= rs_next > threshold
        beta = np.where(live, rs_next / np.where(rs > 0.0, rs, 1.0), 0.0)
        p = np.where(live[:, None], r + beta[:, None] * p, p)
        rs = np.where(live, rs_next, rs)
    return x


def batched_least_squares(
    problem: CompiledProblem,
    points: np.ndarray,
    *,
    control: SolveControl,
    counters: KernelCounters,
    max_iterations: int,
    target: float,
    active: np.ndarray | None = None,
    gtol: float = 1e-12,
    cg_iterations: int | None = None,
    win_tolerance: float | None = None,
) -> BatchDescent:
    """Per-member Levenberg–Marquardt on the residuals (the feasibility sprint).

    Minimises ``||residuals(x_i)||^2`` for every live member with a damped
    Gauss-Newton step solved matrix-free by :func:`_batched_cg` on the normal
    equations ``(J_i^T J_i + lambda_i I) dx_i = -J_i^T r_i``.  Members retire
    when their violation reaches ``target`` and the fast quadratic
    convergence near a zero-residual solution has run dry (so feasible
    members carry every float digit the exact-certificate snap can use),
    when their gradient vanishes
    (stationary — e.g. the origin of a bilinear system), or their damping
    explodes (no descent direction left).  A member's row only ever moves to
    a strictly lower cost, so the sprint never worsens feasibility.

    ``win_tolerance`` enables first-feasible-wins batch cancellation for
    pure-feasibility solves: when a member retires with violation at or
    below it and every lower member has retired too, the sequential loop
    would have stopped there — so the remaining members are cancelled (see
    :func:`cancel_overtaken`; the fold ignores them either way).
    """
    k, dimension = points.shape
    x = points.copy()
    live = np.ones(k, dtype=bool) if active is None else active.copy()
    if cg_iterations is None:
        cg_iterations = min(100, max(20, dimension // 8))
    damping = np.full(k, 1e-3)

    r = problem.residuals_batch(x)
    counters.count_residuals(int(live.sum()))
    cost = np.einsum("km,km->k", r, r)
    violation = np.max(np.abs(r), axis=1) if r.shape[1] else np.zeros(k)
    live &= violation > target

    iterations = 0
    interrupted = False
    for _ in range(max_iterations):
        if not live.any():
            break
        if control.should_stop():
            interrupted = True
            break
        width = int(live.sum())
        iterations += width

        jacobian = problem.residual_jacobian_batch(x)
        counters.count_jacobians(width)
        gradient = jacobian.rmatvec(r)
        live &= np.max(np.abs(gradient), axis=1) > gtol
        if not live.any():
            break

        lam = damping

        def normal_matvec(v: np.ndarray) -> np.ndarray:
            return jacobian.rmatvec(jacobian.matvec(v)) + lam[:, None] * v

        step = _batched_cg(normal_matvec, -gradient, live, cg_iterations)
        trial = np.where(live[:, None], x + step, x)
        r_trial = problem.residuals_batch(trial)
        counters.count_residuals(int(live.sum()))
        cost_trial = np.einsum("km,km->k", r_trial, r_trial)
        improved = live & np.isfinite(cost_trial) & (cost_trial < cost)

        x = np.where(improved[:, None], trial, x)
        r = np.where(improved[:, None], r_trial, r)
        polishing = improved & (cost_trial <= 1e-4 * cost)
        cost = np.where(improved, cost_trial, cost)
        damping = np.where(
            improved,
            np.maximum(damping * 0.3, _MIN_DAMPING),
            np.where(live, damping * 4.0, damping),
        )
        live &= damping < _MAX_DAMPING
        violation = np.max(np.abs(r), axis=1) if r.shape[1] else violation
        # Members at ``target`` keep polishing while convergence is still
        # quadratic (each accepted step shaving >=4 orders of magnitude off
        # the cost): the exact-certificate snap feeds on those extra digits.
        # They retire the moment progress stalls.
        live &= (violation > target) | polishing
        if win_tolerance is not None:
            cancel_overtaken(live, violation <= win_tolerance)

    return BatchDescent(points=x, iterations=iterations, interrupted=interrupted)


def batched_penalty_descent(
    problem: CompiledProblem,
    points: np.ndarray,
    rho: np.ndarray | float,
    *,
    control: SolveControl,
    counters: KernelCounters,
    objective_weight: float,
    max_iterations: int,
    active: np.ndarray | None = None,
    columns: np.ndarray | None = None,
    ftol: float = 1e-12,
    gtol: float = 1e-10,
    max_backtracks: int = 30,
) -> BatchDescent:
    """Per-member L-BFGS descent on the penalty merit function.

    Minimises ``objective_weight * objective(x_i) + rho_i * ||r(x_i)||^2``
    for every live member: limited-memory BFGS directions (the two-loop
    recursion vectorised over the batch — every inner product is a
    per-member ``einsum``) with a vectorised Armijo backtracking line search
    whose halvings are per member.  Members whose quasi-Newton direction
    loses descent fall back to steepest descent for that step; curvature
    pairs failing the positivity guard are masked out *per member* (their
    ``1/s.y`` weight is zero, making the pair a no-op in the recursion).
    ``rho`` may be a ``(k,)`` array — the penalty schedule advances members
    independently.  ``columns`` restricts the descent to a variable block
    (the alternating solver's sweeps): the gradient is masked to the block
    and every curvature pair then lives in the block's subspace, so the
    frozen coordinates never move.  Members retire on a vanished (block)
    gradient, a relative merit decrease below ``ftol``, or a failed line
    search.
    """
    k, _ = points.shape
    x = points.copy()
    live = np.ones(k, dtype=bool) if active is None else active.copy()
    rho = np.broadcast_to(np.asarray(rho, dtype=float), (k,))

    def merit(batch: np.ndarray, members: int) -> np.ndarray:
        counters.count_residuals(members)
        return problem.penalty_batch(batch, rho, objective_weight)

    def merit_gradient(batch: np.ndarray, members: int) -> np.ndarray:
        counters.count_jacobians(members)
        gradient = problem.penalty_gradient_batch(batch, rho, objective_weight)
        if columns is not None:
            gradient *= columns[None, :]
        return gradient

    f = merit(x, int(live.sum()))
    g = merit_gradient(x, int(live.sum()))
    gsq = np.einsum("kd,kd->k", g, g)
    # Initial inverse-Hessian scale: reproduces the old conservative first
    # step; updated per member from the latest valid curvature pair.
    gamma = 1.0 / (1.0 + np.sqrt(gsq))
    history: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    iterations = 0
    interrupted = False
    for _ in range(max_iterations):
        live &= np.isfinite(f) & (gsq > gtol * gtol)
        if not live.any():
            break
        if control.should_stop():
            interrupted = True
            break
        width = int(live.sum())
        iterations += width

        # Two-loop recursion, batched: alpha/beta are (k,) vectors.
        q = g.copy()
        alphas = []
        for s, y, weight in reversed(history):
            alpha = weight * np.einsum("kd,kd->k", s, q)
            q -= alpha[:, None] * y
            alphas.append(alpha)
        direction = -gamma[:, None] * q
        for (s, y, weight), alpha in zip(history, reversed(alphas)):
            beta = weight * np.einsum("kd,kd->k", y, direction)
            direction -= (alpha + beta)[:, None] * s
        slope = np.einsum("kd,kd->k", g, direction)
        # Members whose quasi-Newton direction is not a descent direction
        # restart from scaled steepest descent for this step.
        fallback = slope >= 0.0
        direction = np.where(fallback[:, None], -gamma[:, None] * g, direction)
        slope = np.where(fallback, -gamma * gsq, slope)

        # Vectorised Armijo backtracking: each member halves its own step
        # until sufficient decrease (or gives up and retires).
        t = np.ones(k)
        searching = live.copy()
        new_x = x.copy()
        new_f = f.copy()
        accepted = np.zeros(k, dtype=bool)
        for _ in range(max_backtracks):
            if not searching.any():
                break
            candidate = np.where(searching[:, None], x + t[:, None] * direction, x)
            f_candidate = merit(candidate, int(searching.sum()))
            ok = searching & np.isfinite(f_candidate) & (f_candidate <= f + 1e-4 * t * slope)
            new_x = np.where(ok[:, None], candidate, new_x)
            new_f = np.where(ok, f_candidate, new_f)
            accepted |= ok
            searching &= ~ok
            t = np.where(searching, 0.5 * t, t)
        live &= accepted
        if not live.any():
            break

        new_g = merit_gradient(new_x, int(live.sum()))
        s = new_x - x
        y = new_g - g
        sy = np.einsum("kd,kd->k", s, y)
        yy = np.einsum("kd,kd->k", y, y)
        ss = np.einsum("kd,kd->k", s, s)
        # Per-member curvature guard: pairs without positive curvature get a
        # zero weight (a no-op in the recursion) and keep the old gamma.
        valid = live & (sy > 1e-10 * np.sqrt(ss * yy)) & (yy > 0.0)
        weight = np.where(valid, 1.0 / np.where(valid, sy, 1.0), 0.0)
        gamma = np.where(valid, sy / np.where(valid, yy, 1.0), gamma)
        gamma = np.clip(gamma, _MIN_STEP, _MAX_STEP)
        history.append((s, y, weight))
        if len(history) > _LBFGS_HISTORY:
            history.pop(0)

        decrease = f - new_f
        x, f, g = new_x, new_f, new_g
        gsq = np.einsum("kd,kd->k", g, g)
        live &= decrease > ftol * np.maximum(1.0, np.abs(f))

    return BatchDescent(points=x, iterations=iterations, interrupted=interrupted)


def run_multistart(
    problem: CompiledProblem,
    control: SolveControl,
    options: SolverOptions,
    label: str,
    *,
    cold_scale: Callable[[int], float],
    warm_scale: Callable[[int], float] | None,
    descend: Callable[[np.ndarray, KernelCounters], BatchDescent],
    trigger: Callable[[float, float], bool] | None,
    size_details: bool = True,
) -> SolverResult:
    """The shared batch-mode driver of the multi-start solvers.

    Builds the restart batch once (same rng draws for both modes), runs
    ``descend`` over it — as one width-``k`` batch under ``batch="on"``, one
    member at a time under ``batch="rows"`` — and replays the sequential
    restart loop's winner selection with :func:`winning_member`.  Lockstep
    row independence of the engines makes the two modes produce identical
    member trajectories, hence identical winning assignments.
    """
    rng = np.random.default_rng(options.seed)
    counters = KernelCounters()
    restarts = options.restarts
    points = start_batch(problem, control, rng, restarts, cold_scale, warm_scale)

    finals = points.copy()
    violations = np.full(restarts, np.inf)
    objectives = np.full(restarts, np.inf)
    iterations = 0
    computed = 0

    if options.batch == "rows":
        best_violation = np.inf
        best_objective = np.inf
        have_best = False
        for member in range(restarts):
            if control.should_stop():
                break
            outcome = descend(points[member : member + 1], counters)
            iterations += outcome.iterations
            finals[member] = outcome.points[0]
            violations[member] = problem.max_violation_batch(outcome.points)[0]
            objectives[member] = problem.objective_value_batch(outcome.points)[0]
            computed = member + 1
            control.report(finals[member], violations[member], objectives[member], strategy=label)
            if options.verbose:
                print(
                    f"[{label}] restart {member}: violation={violations[member]:.3g} "
                    f"objective={objectives[member]:.6g}"
                )
            if outcome.interrupted:
                break
            if not have_best or improves(
                best_violation, best_objective, violations[member], objectives[member],
                options.tolerance,
            ):
                best_violation, best_objective = violations[member], objectives[member]
                have_best = True
            if trigger is not None and trigger(best_violation, best_objective):
                break
    else:
        # Leader/pack split: the sequential loop stops after restart 0
        # whenever its result satisfies the win trigger, so when a trigger
        # exists the leader descends alone first and the pack batch only
        # launches when the leader's final result does not already win.
        # (The trigger is monotone along the winning_member fold — the
        # running best only improves — so checking it on the best of the
        # computed prefix is exactly the sequential stopping rule.)
        if trigger is not None and restarts > 1:
            waves = [slice(0, 1), slice(1, restarts)]
        else:
            waves = [slice(0, restarts)]
        for wave in waves:
            if control.should_stop():
                break
            outcome = descend(points[wave], counters)
            iterations += outcome.iterations
            finals[wave] = outcome.points
            violations[wave] = problem.max_violation_batch(outcome.points)
            objectives[wave] = problem.objective_value_batch(outcome.points)
            computed = wave.stop
            if outcome.interrupted:
                break
            if trigger is not None:
                best, _ = winning_member(violations, objectives, computed, options.tolerance)
                if best is not None and trigger(float(violations[best]), float(objectives[best])):
                    break

    details = {"timed_out": float(control.timed_out)}
    if computed == 0:
        return SolverResult(
            assignment=None,
            status="no-progress",
            iterations=iterations,
            details=details,
            strategy=label,
            residual_evaluations=counters.residual_evaluations,
            jacobian_evaluations=counters.jacobian_evaluations,
            batch_width=restarts if options.batch == "on" else 1,
        )

    winner, used = winning_member(violations, objectives, computed, options.tolerance, trigger)
    if options.batch == "on":
        for member in range(used):
            control.report(
                finals[member], violations[member], objectives[member], strategy=label
            )
            if options.verbose:
                print(
                    f"[{label}] restart {member}: violation={violations[member]:.3g} "
                    f"objective={objectives[member]:.6g}"
                )

    violation = float(violations[winner])
    objective = float(objectives[winner])
    feasible = violation <= options.tolerance
    if size_details:
        details["dimension"] = float(problem.dimension)
        details["constraints"] = float(problem.row_count)
    return SolverResult(
        assignment=problem.assignment(finals[winner]) if feasible else None,
        status="optimal" if feasible else "infeasible-best-effort",
        objective_value=objective,
        max_violation=violation,
        iterations=iterations,
        restarts_used=used,
        details=details,
        strategy=label,
        residual_evaluations=counters.residual_evaluations,
        jacobian_evaluations=counters.jacobian_evaluations,
        batch_width=restarts if options.batch == "on" else 1,
    )
