"""Representative-solution enumeration for Strong Invariant Synthesis.

The paper's Step 4 for strong synthesis calls the Grigor'ev–Vorobjov
procedure, which returns one point per connected component of the solution
set; the authors themselves note (Remark 8) that the procedure is impractical
and never implement it.  This module provides the practical substitute used
by this reproduction: run the numeric solver from many randomised starts and
keep one representative per *cluster* of solutions, where two solutions are
considered equivalent when their template-coefficient vectors are close after
normalisation.  On the small systems where enumeration is meaningful this
recovers distinct connected components; on large systems it degrades
gracefully into "whatever distinct solutions the budget found".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.invariants.quadratic_system import QuadraticSystem, VariableRole, classify_unknown
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.problem import compile_problem
from repro.solvers.qclp import PenaltyQCLPSolver


@dataclass
class EnumerationResult:
    """A set of representative solutions of a quadratic system."""

    representatives: list[Mapping[str, float]] = field(default_factory=list)
    attempts: int = 0
    feasible_attempts: int = 0

    @property
    def count(self) -> int:
        return len(self.representatives)


def _template_vector(assignment: Mapping[str, float], names: Sequence[str]) -> np.ndarray:
    vector = np.array([float(assignment.get(name, 0.0)) for name in names])
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 1e-12 else vector


class RepresentativeEnumerator:
    """Multi-start enumeration with clustering of template-coefficient vectors."""

    def __init__(
        self,
        base_solver: Solver | None = None,
        attempts: int = 12,
        distance_threshold: float = 0.15,
        options: SolverOptions | None = None,
    ):
        self.options = options if options is not None else SolverOptions(restarts=1)
        self.base_solver = base_solver
        self.attempts = attempts
        self.distance_threshold = distance_threshold

    def _make_solver(self, seed: int) -> Solver:
        per_attempt = replace(self.options, restarts=1, seed=seed)
        if self.base_solver is not None:
            self.base_solver.options = per_attempt
            return self.base_solver
        return PenaltyQCLPSolver(per_attempt)

    def enumerate(self, system: QuadraticSystem) -> EnumerationResult:
        """Collect representative feasible assignments of ``system``.

        The system is compiled into the shared
        :class:`~repro.solvers.problem.CompiledProblem` IR exactly once; the
        per-attempt solvers all consume that one compilation.
        """
        template_names = [
            name for name in system.variables() if classify_unknown(name) is VariableRole.TEMPLATE
        ]
        problem = compile_problem(system, strict_margin=self.options.strict_margin)
        result = EnumerationResult()
        kept_vectors: list[np.ndarray] = []
        for attempt in range(self.attempts):
            solver = self._make_solver(seed=self.options.seed + attempt)
            solve_result: SolverResult = solver.solve_compiled(problem)
            result.attempts += 1
            if not solve_result.feasible or solve_result.assignment is None:
                continue
            result.feasible_attempts += 1
            vector = _template_vector(solve_result.assignment, template_names)
            if all(np.linalg.norm(vector - kept) > self.distance_threshold for kept in kept_vectors):
                kept_vectors.append(vector)
                result.representatives.append(dict(solve_result.assignment))
        return result
