"""Constraint pairs (Step 2): ``(g_1 >= 0 /\\ ... /\\ g_m >= 0)  ==>  g > 0``.

A constraint pair keeps its assumptions and conclusion as polynomials whose
coefficients may mention template unknowns (s-variables).  The
``program_variables`` field records which variables are *program* variables —
Step 3 ranges its monomials over exactly those, treating every other variable
as an unknown coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.polynomial import Polynomial


@dataclass(frozen=True)
class ConstraintPair:
    """One constraint pair ``(Gamma, g)`` of the paper's Step 2.

    ``target`` records which template entity the conclusion instantiates —
    ``"label:<function>:<index>"`` for an invariant template,
    ``"post:<function>"`` for a post-condition template, empty when unknown.
    This is the template↔pair provenance the certificate subsystem uses to
    report *where* each certified implication lives.
    """

    name: str
    assumptions: tuple[Polynomial, ...]
    conclusion: Polynomial
    program_variables: tuple[str, ...]
    target: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "assumptions", tuple(self.assumptions))
        object.__setattr__(self, "program_variables", tuple(self.program_variables))

    # -- queries -----------------------------------------------------------------

    @property
    def assumption_count(self) -> int:
        return len(self.assumptions)

    def relevant_program_variables(self) -> tuple[str, ...]:
        """Program variables that actually occur in the pair (the paper's set V).

        Step 3 only enumerates monomials over these, which keeps the generated
        quadratic system small when a transition touches few variables.
        """
        used: set[str] = set()
        for polynomial in (*self.assumptions, self.conclusion):
            used.update(polynomial.variables())
        return tuple(name for name in self.program_variables if name in used)

    def unknowns(self) -> frozenset[str]:
        """Template unknowns (s-variables) mentioned by the pair."""
        names: set[str] = set()
        for polynomial in (*self.assumptions, self.conclusion):
            names.update(v for v in polynomial.variables() if v.startswith(UNKNOWN_PREFIX))
        return frozenset(names)

    def max_degree(self) -> int:
        """Maximum degree in the program variables across assumptions and conclusion."""
        keep = set(self.program_variables)
        degree = 0
        for polynomial in (*self.assumptions, self.conclusion):
            for monomial in polynomial.terms:
                degree = max(degree, monomial.restrict(keep).degree())
        return degree

    # -- semantics ------------------------------------------------------------------

    def holds_numerically(self, valuation: Mapping[str, float], tolerance: float = 1e-9) -> bool:
        """Check the implication on one fully-numeric valuation.

        The valuation must assign values to the program variables and to every
        unknown mentioned by the pair.  Used by the dynamic checker and by
        property-based tests; vacuously true when an assumption fails.

        Because Step 2 relaxes strict template atoms to non-strict assumptions,
        a point sitting exactly on the boundary of a strict invariant would be
        reported as a spurious counterexample if the conclusion were required
        to be strictly positive here; the conclusion is therefore only flagged
        when it is *clearly* negative.
        """
        for assumption in self.assumptions:
            if assumption.evaluate_float(valuation) < -tolerance:
                return True
        return self.conclusion.evaluate_float(valuation) >= -tolerance

    def instantiate(self, assignment: Mapping[str, float | int]) -> "ConstraintPair":
        """Substitute numeric values for the unknowns, keeping program variables symbolic."""
        substitution = {
            name: Polynomial.constant(value)
            for name, value in assignment.items()
            if name.startswith(UNKNOWN_PREFIX)
        }
        return ConstraintPair(
            name=self.name,
            assumptions=tuple(p.substitute(substitution) for p in self.assumptions),
            conclusion=self.conclusion.substitute(substitution),
            program_variables=self.program_variables,
            target=self.target,
        )

    def __str__(self) -> str:
        assumptions = " /\\ ".join(f"({p} >= 0)" for p in self.assumptions) or "true"
        return f"[{self.name}] {assumptions}  ==>  {self.conclusion} > 0"
