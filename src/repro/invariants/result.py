"""Result objects of the synthesis algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.cfg.graph import ProgramCFG
from repro.cfg.labels import Label
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.template import TemplateSet
from repro.spec.assertions import ConjunctiveAssertion


@dataclass(frozen=True)
class Invariant:
    """A concrete (numeric) inductive invariant, possibly with post-conditions.

    ``assertions`` maps every label to the conjunction synthesized there;
    ``postconditions`` maps every function name to its synthesized
    post-condition (empty for non-recursive programs).
    """

    assertions: Mapping[Label, ConjunctiveAssertion]
    postconditions: Mapping[str, ConjunctiveAssertion] = field(default_factory=dict)

    def at(self, label: Label) -> ConjunctiveAssertion:
        """The invariant assertion at ``label`` (``true`` when absent)."""
        return self.assertions.get(label, ConjunctiveAssertion.true())

    def at_index(self, function: str, index: int) -> ConjunctiveAssertion:
        """The invariant assertion at a (function, label index) pair."""
        for label, assertion in self.assertions.items():
            if label.function == function and label.index == index:
                return assertion
        return ConjunctiveAssertion.true()

    def postcondition(self, function: str) -> ConjunctiveAssertion:
        """The synthesized post-condition of ``function`` (``true`` when absent)."""
        return self.postconditions.get(function, ConjunctiveAssertion.true())

    def labels(self) -> list[Label]:
        """All labels carrying an assertion, ordered by function and index."""
        return sorted(self.assertions, key=lambda label: (label.function, label.index))

    def __iter__(self) -> Iterator[tuple[Label, ConjunctiveAssertion]]:
        for label in self.labels():
            yield label, self.assertions[label]

    def pretty(self) -> str:
        """A multi-line rendering, one label per line."""
        lines = [f"{label}: {assertion}" for label, assertion in self]
        for function, assertion in sorted(self.postconditions.items()):
            lines.append(f"post({function}): {assertion}")
        return "\n".join(lines)


@dataclass
class SynthesisResult:
    """Everything produced by one run of a synthesis algorithm.

    Attributes
    ----------
    invariant:
        The best invariant found (``None`` when the solver failed).
    invariants:
        For strong synthesis, the representative set of invariants found; for
        weak synthesis a list with at most one element.
    assignment:
        The numeric values of all unknowns in the solution.
    system:
        The quadratic system of Step 3 (its ``size`` is the paper's ``|S|``).
    templates:
        The Step-1 templates (useful for inspecting coefficient names).
    cfg:
        The program CFG the synthesis ran on.
    statistics:
        Timings and counts recorded by the pipeline.
    solver_status:
        Free-form status string reported by the Step-4 solver.
    strategy:
        The Step-4 strategy that produced the result (the winning strategy of
        a portfolio race, or the solver's own name).
    """

    invariant: Invariant | None
    invariants: list[Invariant]
    assignment: Mapping[str, float] | None
    system: QuadraticSystem
    templates: TemplateSet
    cfg: ProgramCFG
    statistics: dict[str, float] = field(default_factory=dict)
    solver_status: str = ""
    strategy: str | None = None

    @property
    def success(self) -> bool:
        """Whether at least one invariant was synthesized."""
        return self.invariant is not None

    @property
    def system_size(self) -> int:
        """The paper's ``|S|`` column: constraints in the quadratic system."""
        return self.system.size

    def summary(self) -> str:
        """A short human-readable summary of the run."""
        counts = self.system.counts()
        lines = [
            f"status: {self.solver_status or ('ok' if self.success else 'no solution')}",
            f"quadratic system: {counts['constraints']} constraints over {counts['variables']} unknowns",
            f"template coefficients: {counts['template_variables']}",
        ]
        for key, value in sorted(self.statistics.items()):
            lines.append(f"{key}: {value:.3f}" if isinstance(value, float) else f"{key}: {value}")
        return "\n".join(lines)
