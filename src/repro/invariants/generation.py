"""Step 2 / 2.a / 2.b: constraint-pair generation from the CFG.

For every CFG transition this module produces the constraint pairs encoding
*consecution*, plus *initiation* pairs at every function entry and, for
recursive programs, the *post-condition consecution* pairs at return
transitions and the abstraction pairs at call sites (rule (c') of the paper).
"""

from __future__ import annotations

from typing import Iterable

from repro.cfg.dnf import to_dnf
from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import Transition, TransitionKind
from repro.errors import SynthesisError
from repro.invariants.constraints import ConstraintPair
from repro.invariants.template import TemplateSet
from repro.polynomial.polynomial import Polynomial
from repro.spec.assertions import ConjunctiveAssertion
from repro.spec.preconditions import Precondition


def _assertion_polynomials(assertion: ConjunctiveAssertion) -> list[Polynomial]:
    """The atoms of an assertion as ``>= 0`` polynomials (strictness relaxed)."""
    return [atom.relaxed().polynomial for atom in assertion]


def _call_return_variable(call_target: str, label: Label) -> str:
    """The fresh ``v0*`` variable modelling the value returned by a call."""
    return f"{call_target}__ret{label.index}"


class _PairBuilder:
    """Accumulates the constraint pairs of one synthesis task."""

    def __init__(self, cfg: ProgramCFG, precondition: Precondition, templates: TemplateSet):
        self._cfg = cfg
        self._precondition = precondition
        self._templates = templates
        self._pairs: list[ConstraintPair] = []

    # -- helpers -------------------------------------------------------------------

    def _pre(self, label: Label) -> list[Polynomial]:
        return _assertion_polynomials(self._precondition.at(label))

    def _template_polys(self, label: Label) -> list[Polynomial]:
        return self._templates.at(label).polynomials()

    def _emit(
        self,
        name: str,
        assumptions: Iterable[Polynomial],
        conclusions: Iterable[Polynomial],
        program_variables: tuple[str, ...],
        target: str = "",
    ) -> None:
        assumption_tuple = tuple(p for p in assumptions if not p.is_zero())
        for index, conclusion in enumerate(conclusions):
            self._pairs.append(
                ConstraintPair(
                    name=f"{name}#{index}",
                    assumptions=assumption_tuple,
                    conclusion=conclusion,
                    program_variables=program_variables,
                    target=target,
                )
            )

    @staticmethod
    def _label_target(label: Label) -> str:
        return f"label:{label.function}:{label.index}"

    # -- initiation ------------------------------------------------------------------

    def _initiation(self, function_cfg: FunctionCFG) -> None:
        entry = function_cfg.entry
        self._emit(
            name=f"init:{function_cfg.name}",
            assumptions=self._pre(entry),
            conclusions=self._template_polys(entry),
            program_variables=function_cfg.variables,
            target=self._label_target(entry),
        )

    # -- consecution per transition kind ------------------------------------------------

    def _assignment_pair(self, function_cfg: FunctionCFG, transition: Transition) -> None:
        assert transition.update is not None
        update = dict(transition.update)
        source, target = transition.source, transition.target
        assumptions = [
            *self._pre(source),
            *self._template_polys(source),
            *(p.substitute(update) for p in self._pre(target)),
        ]
        conclusions = [g.substitute(update) for g in self._template_polys(target)]
        self._emit(
            name=f"step:{source}->{target}",
            assumptions=assumptions,
            conclusions=conclusions,
            program_variables=function_cfg.variables,
            target=self._label_target(target),
        )
        # Step 2.b: post-condition consecution at return transitions.
        if target.is_endpoint and self._templates.has_postconditions():
            post_entry = self._templates.post_entry_for(function_cfg.name)
            post_conclusions = [g.substitute(update) for g in post_entry.polynomials()]
            self._emit(
                name=f"post:{source}->{target}",
                assumptions=assumptions,
                conclusions=post_conclusions,
                program_variables=function_cfg.variables,
                target=f"post:{function_cfg.name}",
            )

    def _guard_pair(self, function_cfg: FunctionCFG, transition: Transition) -> None:
        assert transition.guard is not None
        source, target = transition.source, transition.target
        base_assumptions = [
            *self._pre(source),
            *self._template_polys(source),
            *self._pre(target),
        ]
        conclusions = self._template_polys(target)
        clauses = to_dnf(transition.guard)
        for clause_index, clause in enumerate(clauses):
            clause_polys = [atom.relaxed().polynomial for atom in clause]
            self._emit(
                name=f"guard:{source}->{target}@{clause_index}",
                assumptions=[*base_assumptions, *clause_polys],
                conclusions=conclusions,
                program_variables=function_cfg.variables,
                target=self._label_target(target),
            )

    def _nondet_pair(self, function_cfg: FunctionCFG, transition: Transition) -> None:
        source, target = transition.source, transition.target
        self._emit(
            name=f"nondet:{source}->{target}",
            assumptions=[
                *self._pre(source),
                *self._template_polys(source),
                *self._pre(target),
            ],
            conclusions=self._template_polys(target),
            program_variables=function_cfg.variables,
            target=self._label_target(target),
        )

    def _call_pair(self, function_cfg: FunctionCFG, transition: Transition) -> None:
        assert transition.call is not None
        if not self._templates.has_postconditions():
            raise SynthesisError(
                "the program contains call statements but the template set has no "
                "post-condition templates; build the templates with with_postconditions=True"
            )
        call = transition.call
        source, target = transition.source, transition.target
        callee_cfg = self._cfg.function(call.callee)
        post_entry = self._templates.post_entry_for(call.callee)

        fresh = _call_return_variable(call.target, source)
        parameter_to_argument = {
            parameter: Polynomial.variable(argument)
            for parameter, argument in zip(callee_cfg.parameters, call.arguments)
        }
        frozen_to_argument = {
            callee_cfg.frozen_parameters[parameter]: Polynomial.variable(argument)
            for parameter, argument in zip(callee_cfg.parameters, call.arguments)
        }

        # Pre(l^{f'}_in)[v'_i <- v_i, v'_i_init <- v_i], keeping only atoms that talk
        # about the callee's parameters / frozen parameters (other atoms constrain the
        # callee's local variables and do not restrict the caller's state).
        callee_vocabulary = set(callee_cfg.parameters) | set(callee_cfg.frozen_parameters.values())
        callee_entry_assumptions = []
        for atom in self._precondition.at(callee_cfg.entry):
            if atom.polynomial.variables() <= callee_vocabulary:
                substituted = atom.relaxed().polynomial.substitute(
                    {**parameter_to_argument, **frozen_to_argument}
                )
                callee_entry_assumptions.append(substituted)

        # mu(f')[ret_{f'} <- v0*, v'_i_init <- v_i]
        post_substitution = {callee_cfg.return_variable: Polynomial.variable(fresh), **frozen_to_argument}
        abstracted_post = [g.substitute(post_substitution) for g in post_entry.polynomials()]

        # Pre(l')[v0 <- v0*] and the conclusions eta(l')[v0 <- v0*].
        result_substitution = {call.target: Polynomial.variable(fresh)}
        target_pre = [p.substitute(result_substitution) for p in self._pre(target)]
        conclusions = [g.substitute(result_substitution) for g in self._template_polys(target)]

        assumptions = [
            *self._pre(source),
            *self._template_polys(source),
            *callee_entry_assumptions,
            *abstracted_post,
            *target_pre,
        ]
        self._emit(
            name=f"call:{source}->{target}",
            assumptions=assumptions,
            conclusions=conclusions,
            program_variables=(*function_cfg.variables, fresh),
            target=self._label_target(target),
        )

    # -- driver ------------------------------------------------------------------------

    def build(self) -> list[ConstraintPair]:
        for function_cfg in self._cfg:
            self._initiation(function_cfg)
            for transition in function_cfg.transitions:
                if transition.kind is TransitionKind.UPDATE:
                    self._assignment_pair(function_cfg, transition)
                elif transition.kind is TransitionKind.GUARD:
                    self._guard_pair(function_cfg, transition)
                elif transition.kind is TransitionKind.NONDET:
                    self._nondet_pair(function_cfg, transition)
                elif transition.kind is TransitionKind.CALL:
                    self._call_pair(function_cfg, transition)
                else:  # pragma: no cover - exhaustive over TransitionKind
                    raise SynthesisError(f"unsupported transition kind {transition.kind!r}")
        return self._pairs


def generate_constraint_pairs(
    cfg: ProgramCFG, precondition: Precondition, templates: TemplateSet
) -> list[ConstraintPair]:
    """Generate every constraint pair of Steps 2, 2.a and 2.b.

    The initiation pairs of every function come first, followed by the
    consecution pairs in CFG transition order; pair names encode their origin
    (``init:``, ``step:``, ``guard:``, ``nondet:``, ``call:``, ``post:``).

    The ordering (and everything else about the output) is a deterministic
    function of the CFG, precondition and templates: the staged reduction
    (:mod:`repro.reduction`) caches this stage under a content fingerprint of
    those inputs and later stages key off the pair list, which is only sound
    because equal inputs reproduce the identical pair sequence.
    """
    return _PairBuilder(cfg, precondition, templates).build()


def constraint_pair_statistics(pairs: list[ConstraintPair]) -> dict[str, int]:
    """Simple statistics used by the benchmark harness and the docs."""
    by_kind: dict[str, int] = {}
    for pair in pairs:
        kind = pair.name.split(":", 1)[0]
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return {
        "total": len(pairs),
        "max_assumptions": max((pair.assumption_count for pair in pairs), default=0),
        **{f"kind_{kind}": count for kind, count in sorted(by_kind.items())},
    }
