"""The system of quadratic constraints produced by Step 3.

Every constraint is a polynomial over *unknowns only* (s-, t-, l- and
eps-variables) of total degree at most 2, together with a relation:
equality, non-strict or strict inequality with zero.  The system is the
common input format of every Step-4 solver, and its size is the paper's
``|S|`` column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.polynomial import Polynomial


class ConstraintKind(str, Enum):
    """Relation between the constraint polynomial and zero."""

    EQUALITY = "eq"          # p == 0
    NONNEGATIVE = "ge"       # p >= 0
    POSITIVE = "gt"          # p > 0


class VariableRole(str, Enum):
    """Where an unknown comes from (used for reporting and warm starts)."""

    TEMPLATE = "s"       # template coefficients
    MULTIPLIER = "t"     # coefficients of the h_i multiplier polynomials
    CHOLESKY = "l"       # entries of the lower-triangular Cholesky factors
    WITNESS = "eps"      # positivity witnesses
    OTHER = "other"


def classify_unknown(name: str) -> VariableRole:
    """Classify an unknown by its name prefix (``$s_``, ``$t_``, ``$l_``, ``$eps_``)."""
    if not name.startswith(UNKNOWN_PREFIX):
        return VariableRole.OTHER
    body = name[len(UNKNOWN_PREFIX):]
    if body.startswith("s_"):
        return VariableRole.TEMPLATE
    if body.startswith("t_"):
        return VariableRole.MULTIPLIER
    if body.startswith("l_"):
        return VariableRole.CHOLESKY
    if body.startswith("eps_"):
        return VariableRole.WITNESS
    return VariableRole.OTHER


@dataclass(frozen=True)
class QuadraticConstraint:
    """A single constraint ``polynomial (kind) 0``."""

    polynomial: Polynomial
    kind: ConstraintKind
    origin: str = ""

    def __post_init__(self) -> None:
        if self.polynomial.degree() > 2:
            raise SynthesisError(
                f"constraint from {self.origin!r} has degree {self.polynomial.degree()} > 2; "
                "Step 3 must only produce quadratic constraints"
            )

    @staticmethod
    def _trusted(
        polynomial: Polynomial, kind: ConstraintKind, origin: str = ""
    ) -> "QuadraticConstraint":
        """Construct without the degree check.

        The vectorised translation kernel guarantees degree <= 2 structurally
        (every emitted term is a product of at most two unknowns), and a
        deep-degree system materialises hundreds of thousands of constraints,
        so skipping the per-constraint ``degree()`` walk matters.
        """
        constraint = object.__new__(QuadraticConstraint)
        object.__setattr__(constraint, "polynomial", polynomial)
        object.__setattr__(constraint, "kind", kind)
        object.__setattr__(constraint, "origin", origin)
        return constraint

    def violation(self, assignment: Mapping[str, float]) -> float:
        """How badly the constraint is violated at a numeric assignment (0 when satisfied)."""
        value = self.polynomial.evaluate_float(assignment)
        if self.kind is ConstraintKind.EQUALITY:
            return abs(value)
        if self.kind is ConstraintKind.NONNEGATIVE:
            return max(0.0, -value)
        return max(0.0, -value + 1e-12)

    def satisfied(self, assignment: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Whether the constraint holds at the assignment up to ``tolerance``."""
        value = self.polynomial.evaluate_float(assignment)
        if self.kind is ConstraintKind.EQUALITY:
            return abs(value) <= tolerance
        if self.kind is ConstraintKind.NONNEGATIVE:
            return value >= -tolerance
        return value > -tolerance

    def __str__(self) -> str:
        relation = {"eq": "=", "ge": ">=", "gt": ">"}[self.kind.value]
        return f"{self.polynomial} {relation} 0"


@dataclass(frozen=True)
class PairProvenance:
    """Where one constraint pair's translated block came from (Step-3 provenance).

    Recorded by the Putinar/Handelman translators, one entry per constraint
    pair in pair-index order.  ``index`` keys the unknown namespace (every
    generated t-/l-/eps-variable of the pair carries the ``c{index}`` tag),
    ``target`` carries the template↔pair origin recorded by Step 2
    (``"label:<function>:<index>"`` / ``"post:<function>"``), and the scheme
    knobs pin down exactly which witness shape the block encodes.  The
    certificate subsystem (:mod:`repro.certify`) reconstructs the witness
    polynomials of a numeric solution from this record alone.
    """

    index: int
    name: str
    target: str
    scheme: str
    assumption_count: int
    variables: tuple[str, ...]
    upsilon: int | None = None
    max_factors: int | None = None
    with_witness: bool = True

    @property
    def tag(self) -> str:
        """The unknown-namespace tag of this pair (``c{index}``)."""
        return f"c{self.index}"


@dataclass
class QuadraticSystem:
    """An ordered collection of quadratic constraints over the unknowns.

    ``provenance`` carries one :class:`PairProvenance` per translated
    constraint pair (in pair-index order) when the system was produced by a
    Step-3 translator; systems assembled by hand leave it empty.
    """

    constraints: list[QuadraticConstraint] = field(default_factory=list)
    objective: Polynomial = field(default_factory=Polynomial.zero)
    provenance: list[PairProvenance] = field(default_factory=list)

    # -- mutation tracking -----------------------------------------------------------
    #
    # ``version`` increments on every mutation made through this class's API
    # (constraint additions, field assignment).  The memoised numeric
    # compilation (repro.solvers.problem.compile_problem) keys on it, so a
    # reassigned objective or an appended constraint can never serve a stale
    # compilation.

    def __setattr__(self, name: str, value) -> None:
        if name in ("constraints", "objective"):
            self._bump_version()
        object.__setattr__(self, name, value)

    def _bump_version(self) -> None:
        self.__dict__["_version"] = self.__dict__.get("_version", 0) + 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter (cache key of the numeric compilation)."""
        return self.__dict__.get("_version", 0)

    # -- construction ----------------------------------------------------------------

    def add(self, constraint: QuadraticConstraint) -> None:
        self.constraints.append(constraint)
        self._bump_version()

    def add_equality(self, polynomial: Polynomial, origin: str = "") -> None:
        """Add ``polynomial == 0`` (skipping constraints that are identically zero)."""
        if polynomial.is_zero():
            return
        if polynomial.is_constant():
            if polynomial.constant_value() != 0:
                raise SynthesisError(f"inconsistent constant equality from {origin!r}: {polynomial} = 0")
            return
        self.add(QuadraticConstraint(polynomial=polynomial, kind=ConstraintKind.EQUALITY, origin=origin))

    def add_nonnegative(self, polynomial: Polynomial, origin: str = "") -> None:
        """Add ``polynomial >= 0``."""
        self.add(QuadraticConstraint(polynomial=polynomial, kind=ConstraintKind.NONNEGATIVE, origin=origin))

    def add_positive(self, polynomial: Polynomial, origin: str = "") -> None:
        """Add ``polynomial > 0``."""
        self.add(QuadraticConstraint(polynomial=polynomial, kind=ConstraintKind.POSITIVE, origin=origin))

    def extend(self, constraints: Iterable[QuadraticConstraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def merge(self, other: "QuadraticSystem") -> None:
        """Append all constraints (and pair provenance) of ``other`` to this system."""
        self.constraints.extend(other.constraints)
        self.provenance.extend(other.provenance)
        self._bump_version()

    # -- queries ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[QuadraticConstraint]:
        return iter(self.constraints)

    @property
    def size(self) -> int:
        """The paper's ``|S|``: number of quadratic (in)equalities in the system."""
        return len(self.constraints)

    def variables(self) -> list[str]:
        """All unknowns, sorted (template variables first, then by name)."""
        names: set[str] = set()
        for constraint in self.constraints:
            names.update(constraint.polynomial.variables())
        names.update(self.objective.variables())
        return sorted(names, key=lambda name: (classify_unknown(name).value, name))

    def variables_by_role(self) -> dict[VariableRole, list[str]]:
        """Unknowns grouped by their role."""
        grouped: dict[VariableRole, list[str]] = {role: [] for role in VariableRole}
        for name in self.variables():
            grouped[classify_unknown(name)].append(name)
        return grouped

    def counts(self) -> dict[str, int]:
        """Summary counts used by the benchmark tables."""
        kinds = {kind: 0 for kind in ConstraintKind}
        for constraint in self.constraints:
            kinds[constraint.kind] += 1
        roles = {role: len(names) for role, names in self.variables_by_role().items()}
        return {
            "constraints": len(self.constraints),
            "equalities": kinds[ConstraintKind.EQUALITY],
            "inequalities": kinds[ConstraintKind.NONNEGATIVE] + kinds[ConstraintKind.POSITIVE],
            "variables": sum(roles.values()),
            "template_variables": roles[VariableRole.TEMPLATE],
            "multiplier_variables": roles[VariableRole.MULTIPLIER],
            "cholesky_variables": roles[VariableRole.CHOLESKY],
            "witness_variables": roles[VariableRole.WITNESS],
        }

    # -- evaluation ---------------------------------------------------------------------

    def max_violation(self, assignment: Mapping[str, float]) -> float:
        """The worst constraint violation at an assignment (0 when feasible)."""
        return max((c.violation(assignment) for c in self.constraints), default=0.0)

    def satisfied(self, assignment: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Whether every constraint holds at the assignment up to ``tolerance``."""
        return all(constraint.satisfied(assignment, tolerance) for constraint in self.constraints)

    def violated_constraints(
        self, assignment: Mapping[str, float], tolerance: float = 1e-6
    ) -> list[QuadraticConstraint]:
        """The constraints violated at an assignment (for diagnostics)."""
        return [c for c in self.constraints if not c.satisfied(assignment, tolerance)]

    # -- pickling ---------------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The memoised CompiledProblem cache (repro.solvers.problem) holds large
        # numpy arrays and is cheap to rebuild; never ship it across processes.
        state = self.__dict__.copy()
        state.pop("_compiled_problems", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- numeric compilation ---------------------------------------------------------------

    def compile(self, variable_order: Sequence[str] | None = None) -> "CompiledSystem":
        """Compile the system into numpy-friendly form for the numeric solvers."""
        order = list(variable_order) if variable_order is not None else self.variables()
        return CompiledSystem.from_system(self, order)


def merge_pair_systems(system: QuadraticSystem, pairs: Sequence, executor, worker) -> None:
    """Fan independent per-pair translations across ``executor`` and merge in order.

    ``worker(pair, pair_index)`` must return a standalone
    :class:`QuadraticSystem` (for process pools: a picklable module-level
    function, e.g. a ``functools.partial`` over one).  Merging the per-pair
    systems in pair-index order reproduces the sequential translation
    constraint-for-constraint, because every generated unknown is namespaced
    by its pair index.  Shared by the Putinar and Handelman translators so
    the fan-out semantics can never diverge between the two schemes.

    All worker results are collected *before* any of them is merged: if a
    worker fails, its original exception propagates and ``system`` is left
    untouched instead of holding a partial merge.
    """
    futures = [executor.submit(worker, pair, index) for index, pair in enumerate(pairs)]
    translated = [future.result() for future in futures]
    for part in translated:
        system.merge(part)


@dataclass(frozen=True)
class CompiledConstraint:
    """A constraint compiled to ``x^T Q x + c^T x + b (kind) 0`` in index space."""

    kind: ConstraintKind
    quadratic: tuple[tuple[int, int, float], ...]
    linear: tuple[tuple[int, float], ...]
    constant: float
    origin: str = ""

    def value(self, point: np.ndarray) -> float:
        total = self.constant
        for index, coefficient in self.linear:
            total += coefficient * point[index]
        for row, col, coefficient in self.quadratic:
            total += coefficient * point[row] * point[col]
        return total

    def gradient(self, point: np.ndarray) -> np.ndarray:
        gradient = np.zeros(point.shape[0])
        for index, coefficient in self.linear:
            gradient[index] += coefficient
        for row, col, coefficient in self.quadratic:
            gradient[row] += coefficient * point[col]
            gradient[col] += coefficient * point[row]
        return gradient


@dataclass(frozen=True)
class CompiledSystem:
    """A :class:`QuadraticSystem` with variables mapped to vector indices."""

    variables: tuple[str, ...]
    constraints: tuple[CompiledConstraint, ...]
    objective: CompiledConstraint

    @staticmethod
    def from_system(system: QuadraticSystem, order: Sequence[str]) -> "CompiledSystem":
        index = {name: position for position, name in enumerate(order)}

        def compile_polynomial(polynomial: Polynomial, kind: ConstraintKind, origin: str) -> CompiledConstraint:
            quadratic: list[tuple[int, int, float]] = []
            linear: list[tuple[int, float]] = []
            constant = 0.0
            for monomial, coefficient in polynomial.items():
                value = float(coefficient)
                names = monomial.items
                degree = monomial.degree()
                if degree == 0:
                    constant += value
                elif degree == 1:
                    variable = names[0][0]
                    linear.append((index[variable], value))
                elif degree == 2:
                    if len(names) == 1:
                        variable = names[0][0]
                        quadratic.append((index[variable], index[variable], value))
                    else:
                        quadratic.append((index[names[0][0]], index[names[1][0]], value))
                else:  # pragma: no cover - guarded by QuadraticConstraint
                    raise SynthesisError(f"constraint of degree {degree} cannot be compiled")
            return CompiledConstraint(
                kind=kind,
                quadratic=tuple(quadratic),
                linear=tuple(linear),
                constant=constant,
                origin=origin,
            )

        compiled = tuple(
            compile_polynomial(constraint.polynomial, constraint.kind, constraint.origin)
            for constraint in system.constraints
        )
        objective = compile_polynomial(system.objective, ConstraintKind.EQUALITY, "objective")
        return CompiledSystem(variables=tuple(order), constraints=compiled, objective=objective)

    @property
    def dimension(self) -> int:
        return len(self.variables)

    def assignment_from_vector(self, point: np.ndarray) -> dict[str, float]:
        """Convert a solution vector back to a name-to-value assignment."""
        return {name: float(value) for name, value in zip(self.variables, point)}

    def vector_from_assignment(self, assignment: Mapping[str, float]) -> np.ndarray:
        """Convert an assignment into a vector in this system's variable order."""
        return np.array([float(assignment.get(name, 0.0)) for name in self.variables])
