"""The four top-level algorithms of the paper.

* :func:`weak_inv_synth` — ``WeakInvSynth`` (Section 3.4): reduce to a QCLP
  and return the invariant optimising the objective.
* :func:`strong_inv_synth` — ``StrongInvSynth`` (Section 3.3): return a
  representative set of invariants.
* :func:`rec_weak_inv_synth` / :func:`rec_strong_inv_synth` — the recursive
  variants (Section 4).  The pipeline detects recursion automatically, so
  these are thin aliases kept for fidelity with the paper's algorithm names.

Every function accepts either program source text or a parsed
:class:`~repro.lang.ast_nodes.Program`, and pre-conditions either as a
:class:`~repro.spec.preconditions.Precondition` or as the nested-dict textual
form accepted by :meth:`Precondition.from_spec`.

All four functions are thin wrappers that construct a typed
:class:`~repro.api.request.SynthesisRequest` and run it on the module-level
:class:`~repro.api.engine.Engine` (see :func:`repro.api.default_engine`), so
repeated calls share Step 1-3 reductions and deduplicated Step-4 solves with
every other caller of the service surface.  This module keeps the algorithm
cores (:func:`build_task`, :func:`result_from_solution`,
:func:`enumerate_task`) that the engine executes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ProgramCFG
from repro.errors import SynthesisError
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.handelman import handelman_translate
from repro.invariants.constraints import ConstraintPair
from repro.invariants.putinar import putinar_translate
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.result import Invariant, SynthesisResult
from repro.invariants.template import TemplateSet
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.polynomial.polynomial import Polynomial
from repro.spec.bounded import apply_bounded_reals_model
from repro.spec.objectives import FeasibilityObjective, Objective
from repro.spec.preconditions import Precondition, augment_entry_preconditions
from repro.solvers.base import Solver, SolverResult
from repro.solvers.portfolio import STRATEGIES
from repro.solvers.strong import RepresentativeEnumerator

ProgramLike = Union[str, Program]
PreconditionLike = Union[None, Precondition, Mapping[str, Mapping[int, str]]]


@dataclass(frozen=True)
class SynthesisOptions:
    """Parameters of the synthesis pipeline (the paper's d, n and Upsilon plus knobs).

    Attributes
    ----------
    degree:
        Degree ``d`` of the invariant templates.
    conjuncts:
        Number ``n`` of atomic assertions per label.
    upsilon:
        The technical parameter: degree bound of the SOS multipliers.
    translation:
        ``"putinar"`` (the paper's main encoding) or ``"handelman"``
        (the Remark-2 alternative without Gram matrices).
    add_entry_assumptions:
        Add the implicit entry-label assumptions of Section 2.3.
    bounded:
        Apply the bounded-reals model (adds the compactness ball constraint of
        Remark 5 to every label's pre-condition).  Compactness is only needed
        for the *semi-completeness* guarantee; soundness holds without it and
        the numeric solvers behave better on the un-balled systems, so the
        default is off.
    bound:
        The bound ``c`` of the bounded-reals model.
    with_witness:
        Include strict positivity witnesses (set to ``False`` for the
        non-strict variant of Remark 6).
    encode_sos:
        Encode SOS-ness of the multipliers through Cholesky factors.
    strategy:
        The Step-4 back-end: a registered strategy name (``"qclp"``,
        ``"gauss-newton"``, ``"alternating"``, ...) or ``"portfolio"`` to
        race several strategies on the compiled problem (see
        :mod:`repro.solvers.portfolio`).
    portfolio:
        The strategy list raced when ``strategy="portfolio"`` (empty means
        the default portfolio).
    """

    degree: int = 2
    conjuncts: int = 1
    upsilon: int = 2
    translation: str = "putinar"
    add_entry_assumptions: bool = True
    bounded: bool = False
    bound: int = 100
    with_witness: bool = True
    encode_sos: bool = True
    strategy: str = "qclp"
    portfolio: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.translation not in ("putinar", "handelman"):
            raise SynthesisError(f"unknown translation {self.translation!r}")
        object.__setattr__(self, "portfolio", tuple(self.portfolio))
        known = (*STRATEGIES, "portfolio")
        if self.strategy not in known:
            raise SynthesisError(
                f"unknown strategy {self.strategy!r}; known strategies: {', '.join(known)}"
            )
        unknown = [name for name in self.portfolio if name not in STRATEGIES]
        if unknown:
            raise SynthesisError(
                f"unknown portfolio strategies {unknown!r}; known strategies: {', '.join(STRATEGIES)}"
            )
        if len(set(self.portfolio)) != len(self.portfolio):
            raise SynthesisError(f"duplicate portfolio strategies in {self.portfolio!r}")

    def reduction_fingerprint(self) -> tuple:
        """The option fields that determine the Step 1-3 reduction.

        Solver-side knobs (``strategy``, ``portfolio``) are deliberately
        excluded so jobs differing only in their Step-4 back-end share one
        reduction in the pipeline's task cache.
        """
        return (
            self.degree,
            self.conjuncts,
            self.upsilon,
            self.translation,
            self.add_entry_assumptions,
            self.bounded,
            self.bound,
            self.with_witness,
            self.encode_sos,
        )


@dataclass
class SynthesisTask:
    """Everything Step 1-3 produced, before any solver runs."""

    program: Program
    cfg: ProgramCFG
    precondition: Precondition
    templates: TemplateSet
    pairs: list[ConstraintPair]
    system: QuadraticSystem
    options: SynthesisOptions
    objective: Objective
    statistics: dict[str, float] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Steps 1-3
# ---------------------------------------------------------------------------


def _coerce_program(program: ProgramLike) -> Program:
    if isinstance(program, Program):
        return program
    return parse_program(program)


def _coerce_precondition(cfg: ProgramCFG, precondition: PreconditionLike) -> Precondition:
    if precondition is None:
        return Precondition.trivial()
    if isinstance(precondition, Precondition):
        return precondition.copy()
    return Precondition.from_spec(cfg, precondition)


def build_task(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
) -> SynthesisTask:
    """Run Steps 1-3 and return the resulting task (templates, pairs, system)."""
    options = options if options is not None else SynthesisOptions()
    objective = objective if objective is not None else FeasibilityObjective()
    statistics: dict[str, float] = {}

    start = time.perf_counter()
    parsed = _coerce_program(program)
    cfg = build_cfg(parsed)
    statistics["time_frontend"] = time.perf_counter() - start

    start = time.perf_counter()
    pre = _coerce_precondition(cfg, precondition)
    if options.add_entry_assumptions:
        pre = augment_entry_preconditions(cfg, pre)
    if options.bounded:
        pre = apply_bounded_reals_model(cfg, pre, bound=options.bound)
    statistics["time_preconditions"] = time.perf_counter() - start

    start = time.perf_counter()
    templates = TemplateSet.build(cfg, degree=options.degree, conjuncts=options.conjuncts)
    statistics["time_templates"] = time.perf_counter() - start

    start = time.perf_counter()
    pairs = generate_constraint_pairs(cfg, pre, templates)
    statistics["time_constraint_pairs"] = time.perf_counter() - start

    start = time.perf_counter()
    objective_polynomial: Polynomial = objective.polynomial(templates)
    if options.translation == "putinar":
        system = putinar_translate(
            pairs,
            upsilon=options.upsilon,
            with_witness=options.with_witness,
            encode_sos=options.encode_sos,
            objective=objective_polynomial,
        )
    else:
        system = handelman_translate(
            pairs, with_witness=options.with_witness, objective=objective_polynomial
        )
    statistics["time_translation"] = time.perf_counter() - start
    statistics["constraint_pairs"] = float(len(pairs))
    statistics["system_size"] = float(system.size)

    return SynthesisTask(
        program=parsed,
        cfg=cfg,
        precondition=pre,
        templates=templates,
        pairs=pairs,
        system=system,
        options=options,
        objective=objective,
        statistics=statistics,
    )


# ---------------------------------------------------------------------------
# Step 4 wrappers
# ---------------------------------------------------------------------------


def _clean_assignment(assignment: Mapping[str, float], threshold: float = 1e-7) -> dict[str, float]:
    """Zero out numerically-insignificant coefficients for readable invariants."""
    return {name: (0.0 if abs(value) < threshold else round(value, 9)) for name, value in assignment.items()}


def _instantiate_invariant(task: SynthesisTask, assignment: Mapping[str, float]) -> Invariant:
    cleaned = _clean_assignment(assignment)
    assertions = {
        label: entry.instantiate_assertion(cleaned) for label, entry in task.templates.entries.items()
    }
    postconditions = {
        name: entry.instantiate_assertion(cleaned)
        for name, entry in task.templates.post_entries.items()
    }
    return Invariant(assertions=assertions, postconditions=postconditions)


def result_from_solution(
    task: SynthesisTask, solve_result: SolverResult, solve_seconds: float | None = None
) -> SynthesisResult:
    """Assemble a :class:`SynthesisResult` from a task and a Step-4 solver outcome.

    This is the single place where a numeric solver assignment becomes a
    concrete invariant; :func:`weak_inv_synth` and the
    :class:`~repro.api.engine.Engine` both go through it, which is what
    guarantees batched and sequential runs produce identical results.

    ``task.statistics`` is copied, never mutated: the per-solve timing lands
    in the *result's* statistics (as ``time_solver``) so that one task can be
    reused across several solvers without the runs polluting each other.
    """
    invariant = None
    invariants: list[Invariant] = []
    assignment = None
    if solve_result.feasible and solve_result.assignment is not None:
        assignment = dict(solve_result.assignment)
        invariant = _instantiate_invariant(task, assignment)
        invariants = [invariant]

    statistics = dict(task.statistics)
    if solve_seconds is not None:
        statistics["time_solver"] = solve_seconds
    statistics.update(
        {key: value for key, value in solve_result.details.items() if key.startswith("portfolio_")}
    )
    return SynthesisResult(
        invariant=invariant,
        invariants=invariants,
        assignment=assignment,
        system=task.system,
        templates=task.templates,
        cfg=task.cfg,
        statistics=statistics,
        solver_status=solve_result.status,
        strategy=solve_result.strategy,
    )


def enumerate_task(task: SynthesisTask, enumerator: RepresentativeEnumerator) -> SynthesisResult:
    """Run the representative-set enumeration of ``StrongInvSynth`` on a built task.

    Like :func:`result_from_solution`, this copies ``task.statistics`` rather
    than mutating it, so a task can be shared between runs.
    """
    start = time.perf_counter()
    enumeration = enumerator.enumerate(task.system)
    statistics = dict(task.statistics)
    statistics["time_solver"] = time.perf_counter() - start
    statistics["enumeration_attempts"] = float(enumeration.attempts)
    statistics["enumeration_feasible"] = float(enumeration.feasible_attempts)

    invariants = [
        _instantiate_invariant(task, assignment) for assignment in enumeration.representatives
    ]
    best_assignment = enumeration.representatives[0] if enumeration.representatives else None

    return SynthesisResult(
        invariant=invariants[0] if invariants else None,
        invariants=invariants,
        assignment=best_assignment,
        system=task.system,
        templates=task.templates,
        cfg=task.cfg,
        statistics=statistics,
        solver_status=f"representatives={len(invariants)}",
    )


# ---------------------------------------------------------------------------
# The paper's four entry points (thin wrappers over the default Engine)
# ---------------------------------------------------------------------------


def _run_request(
    mode: str,
    program: ProgramLike,
    precondition: PreconditionLike,
    objective: Objective | None,
    options: SynthesisOptions | None,
    solver: Solver | None,
    enumerator: RepresentativeEnumerator | None,
    task: SynthesisTask | None,
) -> SynthesisResult:
    """Build a typed request, run it on the default engine, unwrap the result."""
    from repro.api.engine import default_engine
    from repro.api.request import SynthesisRequest

    if task is not None:
        # A pre-built reduction fixes the effective options (and the inputs
        # the request would otherwise re-reduce from).
        options = task.options
    request = SynthesisRequest(
        program=program,
        mode=mode,
        precondition=precondition,
        objective=objective,
        options=options if options is not None else SynthesisOptions(),
    )
    response = default_engine().synthesize(request, solver=solver, task=task, enumerator=enumerator)
    if response.exception is not None:
        raise response.exception
    assert response.result is not None
    return response.result


def weak_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
    solver: Solver | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """The paper's ``WeakInvSynth``: reduce to QCLP and solve.

    Pass ``task`` to reuse a previously built Step-1-3 reduction (e.g. to try
    several solvers on the same system without re-translating).  When no
    explicit ``solver`` is given the Step-4 back-end follows the options'
    ``strategy``/``portfolio`` knobs (default: the penalty QCLP solver).
    """
    return _run_request("weak", program, precondition, objective, options, solver, None, task)


def strong_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    options: SynthesisOptions | None = None,
    enumerator: RepresentativeEnumerator | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """The paper's ``StrongInvSynth``: a representative set of invariants.

    The Grigor'ev–Vorobjov procedure is replaced by multi-start enumeration
    with clustering (see DESIGN.md for the substitution rationale).
    """
    return _run_request("strong", program, precondition, None, options, None, enumerator, task)


def rec_weak_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
    solver: Solver | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """``RecWeakInvSynth`` (Section 4) — identical pipeline, recursion handled automatically.

    Like :func:`weak_inv_synth`, accepts ``task`` to reuse a pre-built
    Step 1-3 reduction.
    """
    return _run_request("rec-weak", program, precondition, objective, options, solver, None, task)


def rec_strong_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    options: SynthesisOptions | None = None,
    enumerator: RepresentativeEnumerator | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """``RecStrongInvSynth`` (Section 4) — identical pipeline, recursion handled automatically.

    Like :func:`strong_inv_synth`, accepts ``task`` to reuse a pre-built
    Step 1-3 reduction.
    """
    return _run_request("rec-strong", program, precondition, None, options, None, enumerator, task)
