"""The four top-level algorithms of the paper.

* :func:`weak_inv_synth` — ``WeakInvSynth`` (Section 3.4): reduce to a QCLP
  and return the invariant optimising the objective.
* :func:`strong_inv_synth` — ``StrongInvSynth`` (Section 3.3): return a
  representative set of invariants.
* :func:`rec_weak_inv_synth` / :func:`rec_strong_inv_synth` — the recursive
  variants (Section 4).  The pipeline detects recursion automatically, so
  these are thin aliases kept for fidelity with the paper's algorithm names.

Every function accepts either program source text or a parsed
:class:`~repro.lang.ast_nodes.Program`, and pre-conditions either as a
:class:`~repro.spec.preconditions.Precondition` or as the nested-dict textual
form accepted by :meth:`Precondition.from_spec`.

All four functions are thin wrappers that construct a typed
:class:`~repro.api.request.SynthesisRequest` and run it on the module-level
:class:`~repro.api.engine.Engine` (see :func:`repro.api.default_engine`), so
repeated calls share Step 1-3 reductions and deduplicated Step-4 solves with
every other caller of the service surface.  This module keeps the algorithm
cores (:func:`build_task`, :func:`result_from_solution`,
:func:`enumerate_task`) that the engine executes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping, Union

from repro.cfg.builder import build_cfg
from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.result import Invariant, SynthesisResult
from repro.invariants.template import TemplateSet
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.polynomial.polynomial import Polynomial
from repro.reduction.options import AUTO_DEGREE, SynthesisOptions
from repro.reduction.task import SynthesisTask
from repro.spec.bounded import apply_bounded_reals_model
from repro.spec.objectives import FeasibilityObjective, Objective
from repro.spec.preconditions import Precondition, augment_entry_preconditions
from repro.solvers.base import Solver, SolverResult
from repro.solvers.strong import RepresentativeEnumerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invariants.translation import TranslationPool

ProgramLike = Union[str, Program]
PreconditionLike = Union[None, Precondition, Mapping[str, Mapping[int, str]]]

__all__ = [
    "AUTO_DEGREE",
    "SynthesisOptions",
    "SynthesisTask",
    "build_task",
    "build_task_monolithic",
    "enumerate_task",
    "rec_strong_inv_synth",
    "rec_weak_inv_synth",
    "result_from_solution",
    "strong_inv_synth",
    "weak_inv_synth",
]


# ---------------------------------------------------------------------------
# Steps 1-3
# ---------------------------------------------------------------------------


def build_task(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
    translation_pool: "TranslationPool | None" = None,
) -> SynthesisTask:
    """Run Steps 1-3 and return the resulting task (templates, pairs, system).

    Since the staged-reduction refactor this compiles the request into a
    :class:`~repro.reduction.plan.ReductionPlan` and executes its stages
    uncached (callers wanting cross-request stage reuse go through
    :class:`~repro.pipeline.cache.TaskCache`, which runs the same plan
    against a shared :class:`~repro.reduction.cache.StageCache`).  Pass
    ``translation_pool`` to fan the vectorised per-pair translation kernels
    of Step 3 out over shared-memory workers.
    """
    from repro.reduction.plan import compile_plan

    plan = compile_plan(program, precondition, objective, options)
    task, _ = plan.execute(cache=None, translation_pool=translation_pool)
    return task


def build_task_monolithic(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
) -> SynthesisTask:
    """The seed's monolithic Steps 1-3, kept as the differential-test oracle.

    The staged :func:`build_task` must produce semantically identical tasks;
    ``tests/property/test_reduction_equivalence.py`` checks the two paths
    against each other.  This oracle deliberately runs the *symbolic*
    translation kernel (the per-``Polynomial`` reference loop), so the
    staged-vs-monolithic property doubles as a vectorised-vs-symbolic
    end-to-end differential test.  Production code should never call this.
    """
    options = options if options is not None else SynthesisOptions()
    objective = objective if objective is not None else FeasibilityObjective()
    statistics: dict[str, float] = {}

    start = time.perf_counter()
    parsed = program if isinstance(program, Program) else parse_program(program)
    cfg = build_cfg(parsed)
    statistics["time_frontend"] = time.perf_counter() - start

    start = time.perf_counter()
    if precondition is None:
        pre = Precondition.trivial()
    elif isinstance(precondition, Precondition):
        pre = precondition.copy()
    else:
        pre = Precondition.from_spec(cfg, precondition)
    if options.add_entry_assumptions:
        pre = augment_entry_preconditions(cfg, pre)
    if options.bounded:
        pre = apply_bounded_reals_model(cfg, pre, bound=options.bound)
    statistics["time_preconditions"] = time.perf_counter() - start

    start = time.perf_counter()
    templates = TemplateSet.build(cfg, degree=options.degree, conjuncts=options.conjuncts)
    statistics["time_templates"] = time.perf_counter() - start

    start = time.perf_counter()
    from repro.invariants.generation import generate_constraint_pairs

    pairs = generate_constraint_pairs(cfg, pre, templates)
    statistics["time_constraint_pairs"] = time.perf_counter() - start

    start = time.perf_counter()
    objective_polynomial: Polynomial = objective.polynomial(templates)
    if options.translation == "putinar":
        system = putinar_translate(
            pairs,
            upsilon=options.upsilon,
            with_witness=options.with_witness,
            encode_sos=options.encode_sos,
            objective=objective_polynomial,
            kernel="symbolic",
        )
    else:
        system = handelman_translate(
            pairs,
            with_witness=options.with_witness,
            objective=objective_polynomial,
            kernel="symbolic",
        )
    statistics["time_translation"] = time.perf_counter() - start
    statistics["constraint_pairs"] = float(len(pairs))
    statistics["system_size"] = float(system.size)

    return SynthesisTask(
        program=parsed,
        cfg=cfg,
        precondition=pre,
        templates=templates,
        pairs=pairs,
        system=system,
        options=options,
        objective=objective,
        statistics=statistics,
    )


# ---------------------------------------------------------------------------
# Step 4 wrappers
# ---------------------------------------------------------------------------


def _clean_assignment(assignment: Mapping[str, float], threshold: float = 1e-7) -> dict[str, float]:
    """Zero out numerically-insignificant coefficients for readable invariants."""
    return {name: (0.0 if abs(value) < threshold else round(value, 9)) for name, value in assignment.items()}


def _instantiate_invariant(
    task: SynthesisTask, assignment: Mapping[str, float], clean: bool = True
) -> Invariant:
    values: Mapping = _clean_assignment(assignment) if clean else assignment
    assertions = {
        label: entry.instantiate_assertion(values) for label, entry in task.templates.entries.items()
    }
    postconditions = {
        name: entry.instantiate_assertion(values)
        for name, entry in task.templates.post_entries.items()
    }
    return Invariant(assertions=assertions, postconditions=postconditions)


def result_from_solution(
    task: SynthesisTask,
    solve_result: SolverResult,
    solve_seconds: float | None = None,
    exact_assignment: Mapping | None = None,
) -> SynthesisResult:
    """Assemble a :class:`SynthesisResult` from a task and a Step-4 solver outcome.

    This is the single place where a numeric solver assignment becomes a
    concrete invariant; :func:`weak_inv_synth` and the
    :class:`~repro.api.engine.Engine` both go through it, which is what
    guarantees batched and sequential runs produce identical results.

    ``exact_assignment`` carries the certified rational template coefficients
    of a ``verify="exact"`` run: the invariant is then instantiated from
    those exact values (no float cleaning), so the reported assertions are
    *precisely* the ones the attached certificate proves.

    ``task.statistics`` is copied, never mutated: the per-solve timing lands
    in the *result's* statistics (as ``time_solver``) so that one task can be
    reused across several solvers without the runs polluting each other.
    """
    invariant = None
    invariants: list[Invariant] = []
    assignment = None
    if solve_result.feasible and solve_result.assignment is not None:
        assignment = dict(solve_result.assignment)
        if exact_assignment is not None:
            invariant = _instantiate_invariant(task, exact_assignment, clean=False)
            assignment.update({name: float(value) for name, value in exact_assignment.items()})
        else:
            invariant = _instantiate_invariant(task, assignment)
        invariants = [invariant]

    statistics = dict(task.statistics)
    if solve_seconds is not None:
        statistics["time_solver"] = solve_seconds
    statistics.update(
        {key: value for key, value in solve_result.details.items() if key.startswith("portfolio_")}
    )
    return SynthesisResult(
        invariant=invariant,
        invariants=invariants,
        assignment=assignment,
        system=task.system,
        templates=task.templates,
        cfg=task.cfg,
        statistics=statistics,
        solver_status=solve_result.status,
        strategy=solve_result.strategy,
    )


def enumerate_task(task: SynthesisTask, enumerator: RepresentativeEnumerator) -> SynthesisResult:
    """Run the representative-set enumeration of ``StrongInvSynth`` on a built task.

    Like :func:`result_from_solution`, this copies ``task.statistics`` rather
    than mutating it, so a task can be shared between runs.
    """
    start = time.perf_counter()
    enumeration = enumerator.enumerate(task.system)
    statistics = dict(task.statistics)
    statistics["time_solver"] = time.perf_counter() - start
    statistics["enumeration_attempts"] = float(enumeration.attempts)
    statistics["enumeration_feasible"] = float(enumeration.feasible_attempts)

    invariants = [
        _instantiate_invariant(task, assignment) for assignment in enumeration.representatives
    ]
    best_assignment = enumeration.representatives[0] if enumeration.representatives else None

    return SynthesisResult(
        invariant=invariants[0] if invariants else None,
        invariants=invariants,
        assignment=best_assignment,
        system=task.system,
        templates=task.templates,
        cfg=task.cfg,
        statistics=statistics,
        solver_status=f"representatives={len(invariants)}",
    )


# ---------------------------------------------------------------------------
# The paper's four entry points (thin wrappers over the default Engine)
# ---------------------------------------------------------------------------


def _run_request(
    mode: str,
    program: ProgramLike,
    precondition: PreconditionLike,
    objective: Objective | None,
    options: SynthesisOptions | None,
    solver: Solver | None,
    enumerator: RepresentativeEnumerator | None,
    task: SynthesisTask | None,
) -> SynthesisResult:
    """Build a typed request, run it on the default engine, unwrap the result."""
    from repro.api.engine import default_engine
    from repro.api.request import SynthesisRequest

    if task is not None:
        # A pre-built reduction fixes the effective options (and the inputs
        # the request would otherwise re-reduce from).
        options = task.options
    request = SynthesisRequest(
        program=program,
        mode=mode,
        precondition=precondition,
        objective=objective,
        options=options if options is not None else SynthesisOptions(),
    )
    response = default_engine().synthesize(request, solver=solver, task=task, enumerator=enumerator)
    if response.exception is not None:
        raise response.exception
    assert response.result is not None
    return response.result


def weak_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
    solver: Solver | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """The paper's ``WeakInvSynth``: reduce to QCLP and solve.

    Pass ``task`` to reuse a previously built Step-1-3 reduction (e.g. to try
    several solvers on the same system without re-translating).  When no
    explicit ``solver`` is given the Step-4 back-end follows the options'
    ``strategy``/``portfolio`` knobs (default: the penalty QCLP solver).
    """
    return _run_request("weak", program, precondition, objective, options, solver, None, task)


def strong_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    options: SynthesisOptions | None = None,
    enumerator: RepresentativeEnumerator | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """The paper's ``StrongInvSynth``: a representative set of invariants.

    The Grigor'ev–Vorobjov procedure is replaced by multi-start enumeration
    with clustering (see DESIGN.md for the substitution rationale).
    """
    return _run_request("strong", program, precondition, None, options, None, enumerator, task)


def rec_weak_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    objective: Objective | None = None,
    options: SynthesisOptions | None = None,
    solver: Solver | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """``RecWeakInvSynth`` (Section 4) — identical pipeline, recursion handled automatically.

    Like :func:`weak_inv_synth`, accepts ``task`` to reuse a pre-built
    Step 1-3 reduction.
    """
    return _run_request("rec-weak", program, precondition, objective, options, solver, None, task)


def rec_strong_inv_synth(
    program: ProgramLike,
    precondition: PreconditionLike = None,
    options: SynthesisOptions | None = None,
    enumerator: RepresentativeEnumerator | None = None,
    task: SynthesisTask | None = None,
) -> SynthesisResult:
    """``RecStrongInvSynth`` (Section 4) — identical pipeline, recursion handled automatically.

    Like :func:`strong_inv_synth`, accepts ``task`` to reuse a pre-built
    Step 1-3 reduction.
    """
    return _run_request("rec-strong", program, precondition, None, options, None, enumerator, task)
