"""The paper's contribution: polynomial invariant generation.

Pipeline (Sections 3 and 4 of the paper):

1. :mod:`repro.invariants.template` — templates for invariants and
   post-conditions with unknown coefficients (*s-variables*),
2. :mod:`repro.invariants.generation` — constraint pairs encoding initiation,
   consecution and post-condition consecution,
3. :mod:`repro.invariants.putinar` (or :mod:`repro.invariants.handelman`) —
   translation of constraint pairs into a system of quadratic equalities and
   inequalities over the unknowns,
4. :mod:`repro.invariants.synthesis` — the four top-level algorithms
   ``StrongInvSynth``, ``WeakInvSynth``, ``RecStrongInvSynth`` and
   ``RecWeakInvSynth`` wired to the Step-4 solvers of :mod:`repro.solvers`.

:mod:`repro.invariants.checker` independently re-validates any synthesized
invariant, both by exact certificate substitution and by simulation.
"""

from repro.invariants.constraints import ConstraintPair
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.quadratic_system import ConstraintKind, QuadraticConstraint, QuadraticSystem
from repro.invariants.result import Invariant, SynthesisResult
from repro.invariants.synthesis import (
    SynthesisOptions,
    SynthesisTask,
    build_task,
    rec_strong_inv_synth,
    rec_weak_inv_synth,
    strong_inv_synth,
    weak_inv_synth,
)
from repro.invariants.template import PostTemplateEntry, TemplateEntry, TemplateSet

# Imported last: the checker is now a shim over repro.certify.sampling, whose
# imports re-enter this package's submodules.
from repro.invariants.checker import CheckReport, check_invariant

__all__ = [
    "CheckReport",
    "ConstraintKind",
    "ConstraintPair",
    "Invariant",
    "PostTemplateEntry",
    "QuadraticConstraint",
    "QuadraticSystem",
    "SynthesisOptions",
    "SynthesisResult",
    "SynthesisTask",
    "TemplateEntry",
    "TemplateSet",
    "build_task",
    "check_invariant",
    "generate_constraint_pairs",
    "handelman_translate",
    "putinar_translate",
    "rec_strong_inv_synth",
    "rec_weak_inv_synth",
    "strong_inv_synth",
    "weak_inv_synth",
]
