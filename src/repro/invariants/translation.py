"""The vectorised Step-3 translation kernel and its shared-memory fan-out.

The symbolic translators in :mod:`repro.invariants.putinar` and
:mod:`repro.invariants.handelman` build every multiplier, guard product and
Gram expansion as :class:`~repro.polynomial.polynomial.Polynomial` dict
arithmetic — millions of small hash-map merges for a deep-degree system.  This
module performs the same construction as dense monomial-index arithmetic over
the graded-lexicographic basis:

1. **Compile** (:func:`_compile_putinar_pair` / :func:`_compile_handelman_pair`)
   lowers one constraint pair to flat int64 arrays: program-part exponent rows,
   unknown ids and :class:`~repro.polynomial.compiled.CoefficientPool` ids.
   Exact :class:`~fractions.Fraction` coefficients never leave the parent.
2. **Kernel** (:func:`run_kernel`) forms all guard products ``h_i * g_i`` by
   broadcasting exponent matrices, ranks every resulting program monomial with
   :func:`~repro.polynomial.ordering.grlex_ranks`, and batch-groups the terms
   of every coefficient-matching equality with one stable argsort.  The kernel
   touches integers only, so it runs equally well in-process or in a worker.
3. **Assembly** materialises the symbolic :class:`QuadraticSystem` from the
   grouped index arrays — one trusted ``Polynomial`` per equality, provenance
   reconstructed from the pair metadata kept parent-side.

Why this is exact: every term a kernel emits carries a *distinct* unknown
monomial within its equality group (the t/l/eps id layout is collision-free by
construction), so grouping never has to add two ``Fraction`` coefficients and
the pooled ids reproduce the symbolic result bit-for-bit.  The property tests
in ``tests/property/test_translation_equivalence.py`` are the oracle.

Parallel mode ships the per-pair payloads to a persistent process pool through
``multiprocessing.shared_memory`` — flat int64 buffers in both directions, no
pickled polynomials — and assembles the returned index arrays in pair-index
order, so the parallel system is bit-identical to the sequential one.
:func:`calibrate_parallel_translation` measures whether the fan-out actually
beats the in-process kernel on this machine; ``Engine(translation_workers=
"auto")`` enables the pool only when it does.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.invariants.constraints import ConstraintPair
from repro.invariants.quadratic_system import (
    ConstraintKind,
    PairProvenance,
    QuadraticConstraint,
    QuadraticSystem,
)
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.compiled import (
    POOL_MINUS_ONE,
    POOL_MINUS_TWO,
    POOL_PLUS_ONE,
    CoefficientPool,
    MixedTermArrays,
    exponent_rows,
    lower_gram_triples,
    lower_mixed,
)
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import (
    cached_monomial_basis,
    count_monomials_up_to_degree,
    grlex_ranks,
    monomials_up_to_degree,
)
from repro.polynomial.polynomial import Polynomial

try:  # pragma: no cover - exercised indirectly; absence is the fallback path
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


#: Pairs whose total term count is below this stay on the in-process kernel
#: even when a pool is configured: the fan-out's fixed cost (two shared-memory
#: segments plus a pickle round-trip of the job headers) dwarfs tiny systems.
MIN_PARALLEL_TERMS = 4096

_NO_UNKNOWN = -1


# ---------------------------------------------------------------------------
# Kernel payload and result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelPayload:
    """Name-free numeric description of one pair's coefficient-matching block.

    ``direct`` rows are terms that appear verbatim on one side of (†): the
    conclusion, the witness ``-eps``, the free multiplier ``-h_0`` and (for
    Handelman) the ``-lambda_k * S^k`` products.  The ``prod`` rows describe
    the guard products ``-h_i * g_i``: the kernel broadcasts the shared
    multiplier basis ``h_exponents`` against every row, with ``prod_t_base``
    giving the t-variable id of the row's multiplier block.
    """

    width: int  # number of program variables v
    h_count: int  # J = |M_Upsilon|; 0 disables the broadcast section
    h_exponents: np.ndarray  # (J, v) int64
    direct_exponents: np.ndarray  # (nd, v) int64
    direct_a: np.ndarray  # (nd,) unknown id or -1
    direct_b: np.ndarray  # (nd,) second unknown id or -1
    direct_coeff: np.ndarray  # (nd,) CoefficientPool ids
    prod_exponents: np.ndarray  # (np, v) int64
    prod_b: np.ndarray  # (np,) unknown id of the guard term or -1
    prod_coeff: np.ndarray  # (np,) CoefficientPool ids (sign pre-baked)
    prod_t_base: np.ndarray  # (np,) id of t_{i,0} for the row's multiplier

    @property
    def term_count(self) -> int:
        """Exact number of terms the kernel will emit for this payload."""
        return int(self.direct_a.size + self.h_count * self.prod_b.size)


@dataclass(frozen=True)
class KernelResult:
    """The grouped coefficient-matching equalities of one payload.

    Equality ``g`` matches the coefficient of the basis monomial with grlex
    rank ``eq_mu[g]`` and owns the term slice ``eq_offsets[g]:eq_offsets[g+1]``
    of the parallel ``term_*`` arrays.  Groups are emitted in ascending rank
    order — the canonical constraint order of both translation kernels.
    """

    eq_mu: np.ndarray  # (n_eq,) ascending grlex ranks
    eq_offsets: np.ndarray  # (n_eq + 1,)
    term_a: np.ndarray  # (n_terms,) unknown id or -1
    term_b: np.ndarray  # (n_terms,) unknown id or -1
    term_coeff: np.ndarray  # (n_terms,) CoefficientPool ids


_EMPTY = np.zeros(0, dtype=np.int64)


def run_kernel(payload: KernelPayload) -> KernelResult:
    """Form all products, rank all monomials, group all equalities — batched."""
    width = payload.width
    mu_parts = [grlex_ranks(payload.direct_exponents)]
    a_parts = [payload.direct_a]
    b_parts = [payload.direct_b]
    coeff_parts = [payload.direct_coeff]
    if payload.h_count and payload.prod_b.size:
        h_dim = payload.h_count
        n_prod = payload.prod_b.size
        products = payload.h_exponents[:, None, :] + payload.prod_exponents[None, :, :]
        mu_parts.append(grlex_ranks(products.reshape(-1, width)))
        a_parts.append(
            (payload.prod_t_base[None, :] + np.arange(h_dim, dtype=np.int64)[:, None]).reshape(-1)
        )
        b_parts.append(np.broadcast_to(payload.prod_b[None, :], (h_dim, n_prod)).reshape(-1))
        coeff_parts.append(
            np.broadcast_to(payload.prod_coeff[None, :], (h_dim, n_prod)).reshape(-1)
        )
    mu = np.concatenate(mu_parts) if mu_parts else _EMPTY
    if not mu.size:
        return KernelResult(_EMPTY, np.zeros(1, dtype=np.int64), _EMPTY, _EMPTY, _EMPTY)
    order = np.argsort(mu, kind="stable")
    mu = mu[order]
    eq_mu, starts = np.unique(mu, return_index=True)
    eq_offsets = np.append(starts, mu.size).astype(np.int64, copy=False)
    return KernelResult(
        eq_mu=eq_mu,
        eq_offsets=eq_offsets,
        term_a=np.concatenate(a_parts)[order],
        term_b=np.concatenate(b_parts)[order],
        term_coeff=np.concatenate(coeff_parts)[order],
    )


# ---------------------------------------------------------------------------
# Shared combinatorial tables
# ---------------------------------------------------------------------------


@lru_cache(maxsize=256)
def _basis_exponents(width: int, degree: int) -> np.ndarray:
    """Exponent matrix of the grlex basis — independent of variable names."""
    placeholder = tuple(f"_b{i}" for i in range(width))
    basis = monomials_up_to_degree(placeholder, degree)
    index = {name: position for position, name in enumerate(placeholder)}
    return exponent_rows(basis, index, width)


@lru_cache(maxsize=128)
def _sos_template(width: int, upsilon: int) -> KernelResult:
    """The SOS block ``h = y^T L L^T y`` in *local* ids, shared across pairs.

    Local id ``j < J`` is the multiplier coefficient ``t_j``; local id ``J +
    r*(r+1)//2 + c`` is the Cholesky entry ``l_{r,c}``.  The block depends
    only on (variable count, upsilon), so one template serves every multiplier
    of every pair with that shape.
    """
    h_dim = count_monomials_up_to_degree(width, upsilon)
    sos_dim = count_monomials_up_to_degree(width, upsilon // 2)
    sos_exponents = _basis_exponents(width, upsilon // 2)
    rows_a, rows_b, cols, doubled = lower_gram_triples(sos_dim)
    gram_exponents = sos_exponents[rows_a] + sos_exponents[rows_b]
    gram_a = h_dim + rows_a * (rows_a + 1) // 2 + cols
    gram_b = h_dim + rows_b * (rows_b + 1) // 2 + cols
    gram_coeff = np.where(doubled, POOL_MINUS_TWO, POOL_MINUS_ONE)
    payload = KernelPayload(
        width=width,
        h_count=0,
        h_exponents=_EMPTY.reshape(0, width),
        direct_exponents=np.concatenate([_basis_exponents(width, upsilon), gram_exponents]),
        direct_a=np.concatenate([np.arange(h_dim, dtype=np.int64), gram_a]),
        direct_b=np.concatenate([np.full(h_dim, _NO_UNKNOWN, dtype=np.int64), gram_b]),
        direct_coeff=np.concatenate(
            [np.full(h_dim, POOL_PLUS_ONE, dtype=np.int64), gram_coeff]
        ),
        prod_exponents=_EMPTY.reshape(0, width),
        prod_b=_EMPTY,
        prod_coeff=_EMPTY,
        prod_t_base=_EMPTY,
    )
    return run_kernel(payload)


@lru_cache(maxsize=256)
def _basis_strings(variables: tuple[str, ...], degree: int) -> list:
    """Lazily-filled ``rank -> str(monomial)`` table for origin strings."""
    return [None] * count_monomials_up_to_degree(len(variables), degree)


def _basis_string(
    strings: list, basis: tuple[Monomial, ...], rank: int
) -> str:
    text = strings[rank]
    if text is None:
        text = str(basis[rank])
        strings[rank] = text
    return text


# ---------------------------------------------------------------------------
# Translation profile (satellite: compile/fanout/assemble sub-timings)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TranslationProfile:
    """Where one translation's wall-clock went (attached to the system)."""

    mode: str  # "vectorized" | "vectorized-parallel"
    workers: int  # 0 for the in-process kernel
    compile_seconds: float
    fanout_seconds: float  # kernel execution, in-process or across the pool
    assemble_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.fanout_seconds + self.assemble_seconds


# ---------------------------------------------------------------------------
# Putinar: compile and assemble
# ---------------------------------------------------------------------------


@dataclass
class _PairJob:
    """Parent-side metadata needed to assemble one pair's kernel result."""

    provenance: PairProvenance
    pair_name: str
    tag: str
    variables: tuple[str, ...]
    unknown_names: tuple[str, ...]  # input (template) unknowns in id order
    pool_values: tuple[Fraction, ...]
    max_degree: int
    payload: KernelPayload
    # Putinar-only shape data (None markers unused for Handelman).
    multiplier_count: int = 0  # m + 1
    h_dim: int = 0  # J
    sos_dim: int = 0  # J'
    with_witness: bool = True
    encode_sos: bool = True
    upsilon: int = 0
    # Handelman-only: the product labels in enumeration order.
    product_labels: tuple[str, ...] = ()


def _compile_putinar_pair(pair: ConstraintPair, pair_index: int, options) -> _PairJob:
    tag = f"c{pair_index}"
    variables = tuple(pair.relevant_program_variables())
    width = len(variables)
    unknown_index: dict[str, int] = {}
    pool = CoefficientPool()
    conclusion = lower_mixed(pair.conclusion, variables, unknown_index, pool)
    assumptions = [
        lower_mixed(assumption, variables, unknown_index, pool, negate=True)
        for assumption in pair.assumptions
    ]
    input_count = len(unknown_index)
    assumption_count = len(pair.assumptions)
    h_dim = count_monomials_up_to_degree(width, options.upsilon)
    h_exponents = _basis_exponents(width, options.upsilon)

    max_degree = max(
        [conclusion.max_degree, options.upsilon]
        + [options.upsilon + lowered.max_degree for lowered in assumptions]
    )

    # Output unknown id layout: input unknowns, then the (m+1) t-blocks, the
    # witness, then the (m+1) Cholesky blocks (row-major lower triangles).
    eps_id = input_count + (assumption_count + 1) * h_dim

    direct_exponents = [conclusion.exponents]
    direct_a = [conclusion.unknown_ids]
    direct_b = [np.full(conclusion.unknown_ids.size, _NO_UNKNOWN, dtype=np.int64)]
    direct_coeff = [conclusion.coefficient_ids]
    if options.with_witness:
        direct_exponents.append(np.zeros((1, width), dtype=np.int64))
        direct_a.append(np.asarray([eps_id], dtype=np.int64))
        direct_b.append(np.asarray([_NO_UNKNOWN], dtype=np.int64))
        direct_coeff.append(np.asarray([POOL_MINUS_ONE], dtype=np.int64))
    # -h_0: the free multiplier's terms appear directly in (†).
    direct_exponents.append(h_exponents)
    direct_a.append(input_count + np.arange(h_dim, dtype=np.int64))
    direct_b.append(np.full(h_dim, _NO_UNKNOWN, dtype=np.int64))
    direct_coeff.append(np.full(h_dim, POOL_MINUS_ONE, dtype=np.int64))

    prod_exponents = [np.zeros((0, width), dtype=np.int64)]
    prod_b = [_EMPTY]
    prod_coeff = [_EMPTY]
    prod_t_base = [_EMPTY]
    for which, lowered in enumerate(assumptions, start=1):
        prod_exponents.append(lowered.exponents)
        prod_b.append(lowered.unknown_ids)
        prod_coeff.append(lowered.coefficient_ids)
        prod_t_base.append(
            np.full(lowered.unknown_ids.size, input_count + which * h_dim, dtype=np.int64)
        )

    payload = KernelPayload(
        width=width,
        h_count=h_dim,
        h_exponents=h_exponents,
        direct_exponents=np.concatenate(direct_exponents),
        direct_a=np.concatenate(direct_a),
        direct_b=np.concatenate(direct_b),
        direct_coeff=np.concatenate(direct_coeff),
        prod_exponents=np.concatenate(prod_exponents),
        prod_b=np.concatenate(prod_b),
        prod_coeff=np.concatenate(prod_coeff),
        prod_t_base=np.concatenate(prod_t_base),
    )
    provenance = PairProvenance(
        index=pair_index,
        name=pair.name,
        target=pair.target,
        scheme="putinar",
        assumption_count=assumption_count,
        variables=variables,
        upsilon=options.upsilon,
        with_witness=options.with_witness,
    )
    return _PairJob(
        provenance=provenance,
        pair_name=pair.name,
        tag=tag,
        variables=variables,
        unknown_names=tuple(unknown_index),
        pool_values=pool.values(),
        max_degree=max_degree,
        payload=payload,
        multiplier_count=assumption_count + 1,
        h_dim=h_dim,
        sos_dim=count_monomials_up_to_degree(width, options.upsilon // 2),
        with_witness=options.with_witness,
        encode_sos=options.encode_sos,
        upsilon=options.upsilon,
    )


_MONO_ONE = Monomial.one()


def _append_groups(
    constraints: list,
    result: KernelResult,
    monomials: list,
    pool_values: Sequence[Fraction],
    basis: tuple[Monomial, ...],
    strings: list,
    origin: Callable[[str], str],
) -> None:
    """Materialise one grouped kernel result as trusted equality constraints."""
    eq_mu = result.eq_mu.tolist()
    offsets = result.eq_offsets.tolist()
    term_a = result.term_a.tolist()
    term_b = result.term_b.tolist()
    term_coeff = result.term_coeff.tolist()
    for group, rank in enumerate(eq_mu):
        start = offsets[group]
        stop = offsets[group + 1]
        terms: dict[Monomial, Fraction] = {}
        for position in range(start, stop):
            a = term_a[position]
            if a < 0:
                monomial = _MONO_ONE
            else:
                b = term_b[position]
                monomial = monomials[a] if b < 0 else monomials[a] * monomials[b]
            coefficient = pool_values[term_coeff[position]]
            previous = terms.get(monomial)
            if previous is None:
                terms[monomial] = coefficient
            else:
                total = previous + coefficient
                if total:
                    terms[monomial] = total
                else:
                    del terms[monomial]
        if not terms:
            continue
        origin_text = origin(_basis_string(strings, basis, rank))
        if len(terms) == 1 and next(iter(terms)).is_constant():
            polynomial = Polynomial._from_validated(terms)
            raise SynthesisError(
                f"inconsistent constant equality from {origin_text!r}: {polynomial} = 0"
            )
        constraints.append(
            QuadraticConstraint._trusted(
                Polynomial._from_validated(terms), ConstraintKind.EQUALITY, origin_text
            )
        )


def _assemble_putinar(
    constraints: list, provenance: list, job: _PairJob, result: KernelResult
) -> None:
    tag = job.tag
    h_dim = job.h_dim
    sos_dim = job.sos_dim
    tri_count = sos_dim * (sos_dim + 1) // 2
    input_count = len(job.unknown_names)
    eps_id = input_count + job.multiplier_count * h_dim
    cholesky_base = eps_id + (1 if job.with_witness else 0)

    names: list[str] = list(job.unknown_names)
    for which in range(job.multiplier_count):
        for j in range(h_dim):
            names.append(f"{UNKNOWN_PREFIX}t_{tag}_{which}_{j}")
    if job.with_witness:
        names.append(f"{UNKNOWN_PREFIX}eps_{tag}")
    if job.encode_sos:
        for which in range(job.multiplier_count):
            for row in range(sos_dim):
                for col in range(row + 1):
                    names.append(f"{UNKNOWN_PREFIX}l_{tag}_{which}_{row}_{col}")
    monomials = [Monomial.of(name) for name in names]

    provenance.append(job.provenance)
    if job.with_witness:
        constraints.append(
            QuadraticConstraint._trusted(
                Polynomial.variable(names[eps_id]),
                ConstraintKind.POSITIVE,
                f"{job.pair_name}:witness",
            )
        )

    basis = cached_monomial_basis(job.variables, job.max_degree)
    strings = _basis_strings(job.variables, job.max_degree)
    pair_name = job.pair_name
    _append_groups(
        constraints,
        result,
        monomials,
        job.pool_values,
        basis,
        strings,
        lambda text: f"{pair_name}:coeff[{text}]",
    )

    if not job.encode_sos:
        return

    template = _sos_template(len(job.variables), job.upsilon)
    local_a = template.term_a
    local_b = template.term_b
    for which in range(job.multiplier_count):
        t_offset = input_count + which * h_dim
        l_offset = cholesky_base + which * tri_count - h_dim
        global_a = np.where(local_a < h_dim, local_a + t_offset, local_a + l_offset)
        global_b = np.where(
            local_b < 0, local_b, np.where(local_b < h_dim, local_b + t_offset, local_b + l_offset)
        )
        shifted = KernelResult(
            eq_mu=template.eq_mu,
            eq_offsets=template.eq_offsets,
            term_a=global_a,
            term_b=global_b,
            term_coeff=template.term_coeff,
        )
        _append_groups(
            constraints,
            shifted,
            monomials,
            job.pool_values,
            basis,
            strings,
            lambda text, which=which: f"{pair_name}:sos{which}[{text}]",
        )
        diag_origin = f"{pair_name}:diag{which}"
        for row in range(sos_dim):
            diag_id = cholesky_base + which * tri_count + row * (row + 1) // 2 + row
            constraints.append(
                QuadraticConstraint._trusted(
                    Polynomial.variable(names[diag_id]),
                    ConstraintKind.NONNEGATIVE,
                    diag_origin,
                )
            )


# ---------------------------------------------------------------------------
# Handelman: compile and assemble
# ---------------------------------------------------------------------------


def _compile_handelman_pair(
    pair: ConstraintPair, pair_index: int, max_factors: int, with_witness: bool
) -> _PairJob:
    from repro.invariants.handelman import enumerate_products

    tag = f"c{pair_index}"
    variables = tuple(pair.relevant_program_variables())
    width = len(variables)
    unknown_index: dict[str, int] = {}
    pool = CoefficientPool()
    conclusion = lower_mixed(pair.conclusion, variables, unknown_index, pool)
    products = enumerate_products(pair.assumptions, max_factors)
    lowered_products = [
        lower_mixed(product, variables, unknown_index, pool, negate=True)
        for _, _, product in products
    ]
    input_count = len(unknown_index)
    eps_id = input_count if with_witness else None
    lambda_base = input_count + (1 if with_witness else 0)
    max_degree = max(
        [conclusion.max_degree] + [lowered.max_degree for lowered in lowered_products]
    )

    direct_exponents = [conclusion.exponents]
    direct_a = [conclusion.unknown_ids]
    direct_b = [np.full(conclusion.unknown_ids.size, _NO_UNKNOWN, dtype=np.int64)]
    direct_coeff = [conclusion.coefficient_ids]
    if with_witness:
        direct_exponents.append(np.zeros((1, width), dtype=np.int64))
        direct_a.append(np.asarray([eps_id], dtype=np.int64))
        direct_b.append(np.asarray([_NO_UNKNOWN], dtype=np.int64))
        direct_coeff.append(np.asarray([POOL_MINUS_ONE], dtype=np.int64))
    for k, lowered in enumerate(lowered_products):
        direct_exponents.append(lowered.exponents)
        direct_a.append(np.full(lowered.unknown_ids.size, lambda_base + k, dtype=np.int64))
        direct_b.append(lowered.unknown_ids)
        direct_coeff.append(lowered.coefficient_ids)

    payload = KernelPayload(
        width=width,
        h_count=0,
        h_exponents=_EMPTY.reshape(0, width),
        direct_exponents=np.concatenate(direct_exponents),
        direct_a=np.concatenate(direct_a),
        direct_b=np.concatenate(direct_b),
        direct_coeff=np.concatenate(direct_coeff),
        prod_exponents=_EMPTY.reshape(0, width),
        prod_b=_EMPTY,
        prod_coeff=_EMPTY,
        prod_t_base=_EMPTY,
    )
    provenance = PairProvenance(
        index=pair_index,
        name=pair.name,
        target=pair.target,
        scheme="handelman",
        assumption_count=len(pair.assumptions),
        variables=variables,
        max_factors=max_factors,
        with_witness=with_witness,
    )
    return _PairJob(
        provenance=provenance,
        pair_name=pair.name,
        tag=tag,
        variables=variables,
        unknown_names=tuple(unknown_index),
        pool_values=pool.values(),
        max_degree=max_degree,
        payload=payload,
        with_witness=with_witness,
        product_labels=tuple(label for label, _, _ in products),
    )


def _assemble_handelman(
    constraints: list, provenance: list, job: _PairJob, result: KernelResult
) -> None:
    tag = job.tag
    names: list[str] = list(job.unknown_names)
    if job.with_witness:
        names.append(f"{UNKNOWN_PREFIX}eps_{tag}")
    for k in range(len(job.product_labels)):
        names.append(f"{UNKNOWN_PREFIX}t_{tag}_{k}_0")
    monomials = [Monomial.of(name) for name in names]
    lambda_base = len(job.unknown_names) + (1 if job.with_witness else 0)

    provenance.append(job.provenance)
    if job.with_witness:
        constraints.append(
            QuadraticConstraint._trusted(
                Polynomial.variable(names[len(job.unknown_names)]),
                ConstraintKind.POSITIVE,
                f"{job.pair_name}:witness",
            )
        )
    for k, label in enumerate(job.product_labels):
        constraints.append(
            QuadraticConstraint._trusted(
                Polynomial.variable(names[lambda_base + k]),
                ConstraintKind.NONNEGATIVE,
                f"{job.pair_name}:lambda[{label}]",
            )
        )
    basis = cached_monomial_basis(job.variables, job.max_degree)
    strings = _basis_strings(job.variables, job.max_degree)
    pair_name = job.pair_name
    _append_groups(
        constraints,
        result,
        monomials,
        job.pool_values,
        basis,
        strings,
        lambda text: f"{pair_name}:coeff[{text}]",
    )


# ---------------------------------------------------------------------------
# Shared-memory fan-out
# ---------------------------------------------------------------------------

_HEADER_FIELDS = 4  # width, h_count, n_direct, n_prod


def _flatten_payload(payload: KernelPayload) -> np.ndarray:
    """Serialise a payload into one flat int64 array (worker wire format)."""
    width = payload.width
    n_direct = payload.direct_a.size
    n_prod = payload.prod_b.size
    parts = [
        np.asarray([width, payload.h_count, n_direct, n_prod], dtype=np.int64),
        payload.h_exponents.reshape(-1),
        payload.direct_exponents.reshape(-1),
        payload.direct_a,
        payload.direct_b,
        payload.direct_coeff,
        payload.prod_exponents.reshape(-1),
        payload.prod_b,
        payload.prod_coeff,
        payload.prod_t_base,
    ]
    return np.concatenate(parts)


def _payload_from_flat(flat: np.ndarray) -> KernelPayload:
    """Rebuild a payload from the wire format (views, no copies)."""
    width, h_count, n_direct, n_prod = (int(value) for value in flat[:_HEADER_FIELDS])
    cursor = _HEADER_FIELDS

    def take(count: int) -> np.ndarray:
        nonlocal cursor
        piece = flat[cursor : cursor + count]
        cursor += count
        return piece

    return KernelPayload(
        width=width,
        h_count=h_count,
        h_exponents=take(h_count * width).reshape(h_count, width),
        direct_exponents=take(n_direct * width).reshape(n_direct, width),
        direct_a=take(n_direct),
        direct_b=take(n_direct),
        direct_coeff=take(n_direct),
        prod_exponents=take(n_prod * width).reshape(n_prod, width),
        prod_b=take(n_prod),
        prod_coeff=take(n_prod),
        prod_t_base=take(n_prod),
    )


def _result_capacity(payload: KernelPayload) -> int:
    """Upper bound (in int64 slots) of a payload's serialised kernel result."""
    terms = payload.term_count
    # [n_eq, n_terms] header + eq_mu + eq_offsets + a + b + coeff.
    return 5 * terms + 3


def _run_worker_jobs(
    in_buf, out_buf, jobs: list[tuple[int, int, int, int]]
) -> list[tuple[int, int, int]]:
    """Run a worker's kernel jobs over the mapped buffers.

    Isolated in its own function so every numpy view into the shared-memory
    buffers (including the payload views inside each job's
    :class:`KernelPayload`) is dropped when it returns — ``SharedMemory.close``
    refuses to unmap while exported buffer pointers are still alive.
    """
    in_view = np.frombuffer(in_buf, dtype=np.int64)
    out_view = np.frombuffer(out_buf, dtype=np.int64)
    done: list[tuple[int, int, int]] = []
    for pair_index, in_offset, in_length, out_offset in jobs:
        payload = _payload_from_flat(in_view[in_offset : in_offset + in_length])
        result = run_kernel(payload)
        n_eq = int(result.eq_mu.size)
        n_terms = int(result.term_a.size)
        cursor = out_offset
        out_view[cursor] = n_eq
        out_view[cursor + 1] = n_terms
        cursor += 2
        for array in (
            result.eq_mu,
            result.eq_offsets,
            result.term_a,
            result.term_b,
            result.term_coeff,
        ):
            out_view[cursor : cursor + array.size] = array
            cursor += array.size
        done.append((pair_index, n_eq, n_terms))
    return done


def _attach_shared_memory(name: str):
    """Attach to a parent-owned segment without resource-tracker registration.

    The parent created the segment and will unlink it; a worker registering
    the same name with *its* resource tracker would make that tracker warn
    about (or try to re-clean) a segment it never owned at shutdown
    (bpo-39959).  Python gains ``track=False`` only in 3.13, so the
    registration is suppressed around the attach instead; workers run this
    single-threaded, before any other shared-memory use.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _pool_worker(
    in_name: str, out_name: str, jobs: list[tuple[int, int, int, int]]
) -> list[tuple[int, int, int]]:
    """Worker entry: run kernels over shared-memory payloads, write flat results.

    ``jobs`` rows are ``(pair_index, in_offset, in_length, out_offset)``.
    Returns ``(pair_index, n_eq, n_terms)`` so the parent knows each result's
    actual extent inside its reserved output region.
    """
    in_shm = _attach_shared_memory(in_name)
    out_shm = _attach_shared_memory(out_name)
    try:
        return _run_worker_jobs(in_shm.buf, out_shm.buf, jobs)
    finally:
        in_shm.close()
        out_shm.close()


class TranslationPool:
    """A persistent worker pool that exchanges only flat arrays via shared memory.

    Payloads are packed into one input segment, workers write grouped results
    into pre-reserved regions of one output segment, and the parent reads them
    back in pair-index order — nothing symbolic ever crosses a process
    boundary.  A worker failure propagates its original exception and no
    partial result is consumed.
    """

    def __init__(self, workers: int | None = None, min_terms: int = MIN_PARALLEL_TERMS) -> None:
        self.workers = max(2, int(workers) if workers else (os.cpu_count() or 2))
        self.min_terms = min_terms
        self._executor: ProcessPoolExecutor | None = None

    @property
    def available(self) -> bool:
        """Whether shared memory exists on this platform (else callers fall back)."""
        return _shared_memory is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def warm(self) -> None:
        """Spin the workers up eagerly (used by benchmarks and calibration)."""
        executor = self._ensure_executor()
        list(executor.map(int, range(self.workers)))

    def run(self, payloads: Sequence[KernelPayload]) -> list[KernelResult]:
        """Run every payload's kernel across the pool; results in input order."""
        if not self.available:
            raise SynthesisError("multiprocessing.shared_memory is unavailable on this platform")
        if not payloads:
            return []
        flats = [_flatten_payload(payload) for payload in payloads]
        in_lengths = [flat.size for flat in flats]
        in_offsets = np.concatenate([[0], np.cumsum(in_lengths)])
        out_capacities = [_result_capacity(payload) for payload in payloads]
        out_offsets = np.concatenate([[0], np.cumsum(out_capacities)])

        in_shm = _shared_memory.SharedMemory(
            create=True, size=max(int(in_offsets[-1]), 1) * 8
        )
        out_shm = _shared_memory.SharedMemory(
            create=True, size=max(int(out_offsets[-1]), 1) * 8
        )
        in_view = out_view = None
        try:
            in_view = np.frombuffer(in_shm.buf, dtype=np.int64)
            for flat, offset in zip(flats, in_offsets):
                in_view[int(offset) : int(offset) + flat.size] = flat

            # Balance pairs over workers greedily by exact term count.
            bins: list[list[tuple[int, int, int, int]]] = [[] for _ in range(self.workers)]
            loads = [0] * self.workers
            order = sorted(
                range(len(payloads)), key=lambda i: payloads[i].term_count, reverse=True
            )
            for index in order:
                slot = loads.index(min(loads))
                bins[slot].append(
                    (index, int(in_offsets[index]), in_lengths[index], int(out_offsets[index]))
                )
                loads[slot] += payloads[index].term_count + 64

            executor = self._ensure_executor()
            futures = [
                executor.submit(_pool_worker, in_shm.name, out_shm.name, chunk)
                for chunk in bins
                if chunk
            ]
            extents: dict[int, tuple[int, int]] = {}
            for future in futures:
                for pair_index, n_eq, n_terms in future.result():
                    extents[pair_index] = (n_eq, n_terms)

            out_view = np.frombuffer(out_shm.buf, dtype=np.int64)
            results: list[KernelResult] = []
            for index in range(len(payloads)):
                n_eq, n_terms = extents[index]
                cursor = int(out_offsets[index]) + 2

                def take(count: int) -> np.ndarray:
                    nonlocal cursor
                    piece = out_view[cursor : cursor + count].copy()
                    cursor += count
                    return piece

                results.append(
                    KernelResult(
                        eq_mu=take(n_eq),
                        eq_offsets=take(n_eq + 1),
                        term_a=take(n_terms),
                        term_b=take(n_terms),
                        term_coeff=take(n_terms),
                    )
                )
            return results
        finally:
            del in_view, out_view
            in_shm.close()
            in_shm.unlink()
            out_shm.close()
            out_shm.unlink()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "TranslationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Calibration (Engine(translation_workers="auto"))
# ---------------------------------------------------------------------------

_CALIBRATION_CACHE: dict[int, bool] = {}


def _calibration_payloads() -> list[KernelPayload]:
    """A deterministic medium-sized workload resembling a real degree-2 sweep."""
    width = 4
    upsilon = 2
    h_exponents = _basis_exponents(width, upsilon)
    h_dim = h_exponents.shape[0]
    payloads = []
    for seed in range(12):
        n_direct = 40 + seed
        n_prod = 90 + 3 * seed
        direct_exponents = (np.arange(n_direct * width).reshape(n_direct, width) + seed) % 3
        prod_exponents = (np.arange(n_prod * width).reshape(n_prod, width) + 2 * seed) % 3
        payloads.append(
            KernelPayload(
                width=width,
                h_count=h_dim,
                h_exponents=h_exponents,
                direct_exponents=direct_exponents.astype(np.int64),
                direct_a=np.arange(n_direct, dtype=np.int64) % 7 - 1,
                direct_b=np.full(n_direct, _NO_UNKNOWN, dtype=np.int64),
                direct_coeff=np.zeros(n_direct, dtype=np.int64),
                prod_exponents=prod_exponents.astype(np.int64),
                prod_b=np.arange(n_prod, dtype=np.int64) % 5 - 1,
                prod_coeff=np.ones(n_prod, dtype=np.int64),
                prod_t_base=np.full(n_prod, 32, dtype=np.int64),
            )
        )
    return payloads


def calibrate_parallel_translation(workers: int | None = None, repeats: int = 3) -> bool:
    """Whether the shared-memory fan-out beats the in-process kernel here.

    Runs a deterministic microbenchmark once per process (cached by worker
    count): the pool wins only when its best wall-clock over ``repeats`` runs
    is at least as fast as the sequential kernel's — on single-core boxes or
    platforms without shared memory this returns False and callers stay on the
    (already vectorised) sequential path.
    """
    count = max(2, int(workers) if workers else (os.cpu_count() or 2))
    cached = _CALIBRATION_CACHE.get(count)
    if cached is not None:
        return cached
    if _shared_memory is None or (os.cpu_count() or 1) < 2:
        _CALIBRATION_CACHE[count] = False
        return False
    payloads = _calibration_payloads()
    try:
        with TranslationPool(count, min_terms=0) as pool:
            pool.warm()
            sequential = parallel = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                for payload in payloads:
                    run_kernel(payload)
                sequential = min(sequential, time.perf_counter() - start)
                start = time.perf_counter()
                pool.run(payloads)
                parallel = min(parallel, time.perf_counter() - start)
        decision = parallel <= sequential
    except Exception:  # pragma: no cover - a broken pool must never take down synthesis
        decision = False
    _CALIBRATION_CACHE[count] = decision
    return decision


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _run_jobs(
    jobs: Sequence[_PairJob], pool: TranslationPool | None
) -> tuple[list[KernelResult], str, int]:
    payloads = [job.payload for job in jobs]
    use_pool = (
        pool is not None
        and pool.available
        and len(payloads) > 1
        and sum(payload.term_count for payload in payloads) >= pool.min_terms
    )
    if use_pool:
        return pool.run(payloads), "vectorized-parallel", pool.workers
    return [run_kernel(payload) for payload in payloads], "vectorized", 0


def _build_system(
    jobs: Sequence[_PairJob],
    results: Sequence[KernelResult],
    assemble: Callable,
    objective: Polynomial | None,
) -> QuadraticSystem:
    constraints: list[QuadraticConstraint] = []
    provenance: list[PairProvenance] = []
    for job, result in zip(jobs, results):
        assemble(constraints, provenance, job, result)
    return QuadraticSystem(
        constraints=constraints,
        objective=objective if objective is not None else Polynomial.zero(),
        provenance=provenance,
    )


def putinar_translate_vectorized(
    pairs: Sequence[ConstraintPair],
    options,
    objective: Polynomial | None = None,
    pool: TranslationPool | None = None,
) -> QuadraticSystem:
    """Vectorised Putinar translation; equal to the symbolic path constraint-for-constraint."""
    start = time.perf_counter()
    jobs = [_compile_putinar_pair(pair, index, options) for index, pair in enumerate(pairs)]
    compiled_at = time.perf_counter()
    results, mode, workers = _run_jobs(jobs, pool)
    fanned_at = time.perf_counter()
    system = _build_system(jobs, results, _assemble_putinar, objective)
    system.translation_profile = TranslationProfile(
        mode=mode,
        workers=workers,
        compile_seconds=compiled_at - start,
        fanout_seconds=fanned_at - compiled_at,
        assemble_seconds=time.perf_counter() - fanned_at,
    )
    return system


def handelman_translate_vectorized(
    pairs: Sequence[ConstraintPair],
    max_factors: int = 2,
    with_witness: bool = True,
    objective: Polynomial | None = None,
    pool: TranslationPool | None = None,
) -> QuadraticSystem:
    """Vectorised Handelman translation; equal to the symbolic path constraint-for-constraint."""
    start = time.perf_counter()
    jobs = [
        _compile_handelman_pair(pair, index, max_factors, with_witness)
        for index, pair in enumerate(pairs)
    ]
    compiled_at = time.perf_counter()
    results, mode, workers = _run_jobs(jobs, pool)
    fanned_at = time.perf_counter()
    system = _build_system(jobs, results, _assemble_handelman, objective)
    system.translation_profile = TranslationProfile(
        mode=mode,
        workers=workers,
        compile_seconds=compiled_at - start,
        fanout_seconds=fanned_at - compiled_at,
        assemble_seconds=time.perf_counter() - fanned_at,
    )
    return system
