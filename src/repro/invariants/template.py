"""Step 1 / Step 1.a: invariant and post-condition templates.

A template at a label is a conjunction of ``n`` polynomial inequalities of
degree at most ``d`` whose coefficients are fresh unknowns (the paper's
*s-variables*).  For recursive programs, each function additionally gets a
post-condition template over its return variable and frozen parameters.

Unknown-variable names are prefixed with ``"$"`` which the program lexer can
never produce, so clashes with program variables are impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import Label
from repro.errors import SynthesisError
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import monomials_up_to_degree
from repro.polynomial.polynomial import Polynomial
from repro.spec.assertions import ConjunctiveAssertion, assertion_from_polynomials

UNKNOWN_PREFIX = "$"


def _coefficient_name(kind: str, owner: str, conjunct: int, index: int) -> str:
    return f"{UNKNOWN_PREFIX}{kind}_{owner}_{conjunct}_{index}"


@dataclass(frozen=True)
class TemplateEntry:
    """The invariant template ``eta(l)`` at one label."""

    function: str
    label: Label
    conjuncts: int
    degree: int
    variables: tuple[str, ...]
    monomials: tuple[Monomial, ...]

    @property
    def label_index(self) -> int:
        return self.label.index

    def coefficient_name(self, conjunct: int, monomial: Monomial) -> str:
        """The s-variable holding the coefficient of ``monomial`` in conjunct ``conjunct``."""
        try:
            index = self.monomials.index(monomial)
        except ValueError as exc:
            raise SynthesisError(
                f"monomial {monomial} is not part of the degree-{self.degree} template at {self.label}"
            ) from exc
        owner = f"{self.function}_{self.label.index}"
        return _coefficient_name("s", owner, conjunct, index)

    def coefficient_names(self) -> list[str]:
        """All s-variables of this entry, conjunct-major."""
        names = []
        for conjunct in range(self.conjuncts):
            owner = f"{self.function}_{self.label.index}"
            names.extend(
                _coefficient_name("s", owner, conjunct, index) for index in range(len(self.monomials))
            )
        return names

    def conjunct_polynomial(self, conjunct: int) -> Polynomial:
        """The symbolic polynomial ``sum_j s_j * m_j`` of one conjunct."""
        if not 0 <= conjunct < self.conjuncts:
            raise SynthesisError(f"conjunct {conjunct} out of range for template at {self.label}")
        owner = f"{self.function}_{self.label.index}"
        result = Polynomial.zero()
        for index, monomial in enumerate(self.monomials):
            name = _coefficient_name("s", owner, conjunct, index)
            result = result + Polynomial.variable(name) * Polynomial.from_monomial(monomial)
        return result

    def polynomials(self) -> list[Polynomial]:
        """The symbolic polynomials of all conjuncts."""
        return [self.conjunct_polynomial(conjunct) for conjunct in range(self.conjuncts)]

    def instantiate(self, conjunct: int, assignment: Mapping[str, float | int]) -> Polynomial:
        """Plug numeric values for the s-variables of one conjunct."""
        symbolic = self.conjunct_polynomial(conjunct)
        substitution = {
            name: Polynomial.constant(assignment.get(name, 0))
            for name in symbolic.variables()
            if name.startswith(UNKNOWN_PREFIX)
        }
        return symbolic.substitute(substitution)

    def instantiate_assertion(self, assignment: Mapping[str, float | int]) -> ConjunctiveAssertion:
        """The concrete (numeric) invariant assertion at this label."""
        return assertion_from_polynomials(
            [self.instantiate(conjunct, assignment) for conjunct in range(self.conjuncts)],
            strict=True,
        )


@dataclass(frozen=True)
class PostTemplateEntry:
    """The post-condition template ``mu(f)`` of one function (Step 1.a)."""

    function: str
    conjuncts: int
    degree: int
    variables: tuple[str, ...]
    monomials: tuple[Monomial, ...]

    def coefficient_name(self, conjunct: int, monomial: Monomial) -> str:
        try:
            index = self.monomials.index(monomial)
        except ValueError as exc:
            raise SynthesisError(
                f"monomial {monomial} is not part of the post-condition template of {self.function}"
            ) from exc
        return _coefficient_name("s", f"post_{self.function}", conjunct, index)

    def coefficient_names(self) -> list[str]:
        names = []
        for conjunct in range(self.conjuncts):
            names.extend(
                _coefficient_name("s", f"post_{self.function}", conjunct, index)
                for index in range(len(self.monomials))
            )
        return names

    def conjunct_polynomial(self, conjunct: int) -> Polynomial:
        if not 0 <= conjunct < self.conjuncts:
            raise SynthesisError(
                f"conjunct {conjunct} out of range for post-condition template of {self.function}"
            )
        result = Polynomial.zero()
        for index, monomial in enumerate(self.monomials):
            name = _coefficient_name("s", f"post_{self.function}", conjunct, index)
            result = result + Polynomial.variable(name) * Polynomial.from_monomial(monomial)
        return result

    def polynomials(self) -> list[Polynomial]:
        return [self.conjunct_polynomial(conjunct) for conjunct in range(self.conjuncts)]

    def instantiate(self, conjunct: int, assignment: Mapping[str, float | int]) -> Polynomial:
        symbolic = self.conjunct_polynomial(conjunct)
        substitution = {
            name: Polynomial.constant(assignment.get(name, 0))
            for name in symbolic.variables()
            if name.startswith(UNKNOWN_PREFIX)
        }
        return symbolic.substitute(substitution)

    def instantiate_assertion(self, assignment: Mapping[str, float | int]) -> ConjunctiveAssertion:
        return assertion_from_polynomials(
            [self.instantiate(conjunct, assignment) for conjunct in range(self.conjuncts)],
            strict=True,
        )


@dataclass(frozen=True)
class TemplateSet:
    """All templates of a synthesis task: one entry per label, one post entry per function."""

    entries: Mapping[Label, TemplateEntry]
    post_entries: Mapping[str, PostTemplateEntry]
    degree: int
    conjuncts: int

    @staticmethod
    def build(
        cfg: ProgramCFG,
        degree: int,
        conjuncts: int = 1,
        with_postconditions: bool | None = None,
    ) -> "TemplateSet":
        """Create templates for every label (and post-conditions when recursive).

        ``with_postconditions`` defaults to "the program is recursive"; pass
        ``True`` to force post-condition templates for non-recursive programs
        (useful when a caller wants a summary of the single function).
        """
        if degree < 1:
            raise SynthesisError(f"template degree must be at least 1, got {degree}")
        if conjuncts < 1:
            raise SynthesisError(f"template must have at least one conjunct, got {conjuncts}")
        if with_postconditions is None:
            with_postconditions = cfg.program.is_recursive()

        entries: dict[Label, TemplateEntry] = {}
        post_entries: dict[str, PostTemplateEntry] = {}
        for function_cfg in cfg:
            label_monomials = tuple(monomials_up_to_degree(function_cfg.variables, degree))
            for label in function_cfg.labels:
                entries[label] = TemplateEntry(
                    function=function_cfg.name,
                    label=label,
                    conjuncts=conjuncts,
                    degree=degree,
                    variables=tuple(function_cfg.variables),
                    monomials=label_monomials,
                )
            if with_postconditions:
                post_entries[function_cfg.name] = _build_post_entry(function_cfg, degree, conjuncts)
        return TemplateSet(entries=entries, post_entries=post_entries, degree=degree, conjuncts=conjuncts)

    # -- lookups -----------------------------------------------------------------

    def at(self, label: Label) -> TemplateEntry:
        """The template entry at a label."""
        try:
            return self.entries[label]
        except KeyError as exc:
            raise SynthesisError(f"no template entry at label {label}") from exc

    def entry_for(self, function: str, label_index: int) -> TemplateEntry:
        """Look up a template entry by function name and 1-based label index."""
        for label, entry in self.entries.items():
            if label.function == function and label.index == label_index:
                return entry
        raise SynthesisError(f"no template entry at {function}:{label_index}")

    def post_entry_for(self, function: str) -> PostTemplateEntry:
        """The post-condition template of a function."""
        try:
            return self.post_entries[function]
        except KeyError as exc:
            raise SynthesisError(f"no post-condition template for function {function!r}") from exc

    def has_postconditions(self) -> bool:
        return bool(self.post_entries)

    def __iter__(self) -> Iterator[TemplateEntry]:
        return iter(self.entries.values())

    def coefficient_names(self) -> list[str]:
        """Every s-variable introduced by the whole template set."""
        names: list[str] = []
        for entry in self.entries.values():
            names.extend(entry.coefficient_names())
        for post_entry in self.post_entries.values():
            names.extend(post_entry.coefficient_names())
        return names

    def coefficient_count(self) -> int:
        """Total number of s-variables."""
        return len(self.coefficient_names())


def _build_post_entry(function_cfg: FunctionCFG, degree: int, conjuncts: int) -> PostTemplateEntry:
    vocabulary: Sequence[str] = sorted(
        {function_cfg.return_variable, *function_cfg.frozen_parameters.values()}
    )
    monomials = tuple(monomials_up_to_degree(vocabulary, degree))
    return PostTemplateEntry(
        function=function_cfg.name,
        conjuncts=conjuncts,
        degree=degree,
        variables=tuple(vocabulary),
        monomials=monomials,
    )
