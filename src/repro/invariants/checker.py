"""Backwards-compatible shim over :mod:`repro.certify.sampling`.

The independent invariant checker moved into the certificate subsystem as its
*sampling* tier (``verify="sample"``); the exact, solver-free tier lives in
:mod:`repro.certify.lift` / :mod:`repro.certify.certificate`.  Existing
callers of ``repro.invariants.checker`` keep working through this module —
see DESIGN.md ("Certificates and repair") for the old→new map — but new code
should import from :mod:`repro.certify` directly.
"""

from repro.certify.sampling import (
    CheckReport,
    Violation,
    check_invariant,
    derive_argument_sets,
)

__all__ = ["CheckReport", "Violation", "check_invariant", "derive_argument_sets"]
