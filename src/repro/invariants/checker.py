"""Independent validation of candidate invariants.

A synthesized invariant should never be trusted just because the solver said
so.  This module re-validates a concrete invariant three ways:

* **Simulation** — execute valid runs of the program and check the invariant
  at every visited stack element (Lemma 2.1 / 2.2 say an inductive invariant
  can never be falsified this way).
* **Constraint-pair sampling** — rebuild the Step-2 constraint pairs with the
  *concrete* invariant substituted for the template and falsify the resulting
  implications on random valuations.
* **Certificate search** (optional, slower) — look for an explicit Putinar/SOS
  certificate of every concrete constraint pair via
  :func:`repro.solvers.sdp.check_putinar_certificate`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.cfg.graph import ProgramCFG
from repro.cfg.labels import Label
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.result import Invariant
from repro.polynomial.polynomial import Polynomial
from repro.semantics.interpreter import ExecutionLimits, Interpreter
from repro.semantics.scheduler import RandomScheduler
from repro.spec.assertions import ConjunctiveAssertion
from repro.spec.preconditions import Precondition


@dataclass(frozen=True)
class _ConcreteEntry:
    """Adapter presenting a concrete assertion with the template-entry interface."""

    assertion: ConjunctiveAssertion

    def polynomials(self) -> list[Polynomial]:
        return [atom.polynomial for atom in self.assertion]


class _InvariantAsTemplates:
    """Adapter so that :func:`generate_constraint_pairs` can run on a concrete invariant."""

    def __init__(self, invariant: Invariant):
        self._invariant = invariant

    def at(self, label: Label) -> _ConcreteEntry:
        return _ConcreteEntry(self._invariant.at(label))

    def post_entry_for(self, function: str) -> _ConcreteEntry:
        return _ConcreteEntry(self._invariant.postcondition(function))

    def has_postconditions(self) -> bool:
        return bool(self._invariant.postconditions)


@dataclass
class Violation:
    """One witnessed violation: where, and the valuation that falsifies it."""

    kind: str
    location: str
    valuation: Mapping[str, float]

    def __str__(self) -> str:
        values = ", ".join(f"{k}={v:g}" for k, v in sorted(self.valuation.items()))
        return f"{self.kind} violated at {self.location} with {{{values}}}"


@dataclass
class CheckReport:
    """Aggregated outcome of all enabled checks."""

    simulation_runs: int = 0
    simulation_elements_checked: int = 0
    pair_samples: int = 0
    pairs_checked: int = 0
    certificate_pairs_checked: int = 0
    certificate_failures: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether no check produced a violation."""
        return not self.violations and not self.certificate_failures

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}: {self.simulation_runs} runs "
            f"({self.simulation_elements_checked} states), "
            f"{self.pairs_checked} constraint pairs x {self.pair_samples} samples, "
            f"{self.certificate_pairs_checked} certificates, "
            f"{len(self.violations)} violations"
        )


def _simulate(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    argument_sets: Sequence[Mapping[str, Fraction | int | float]],
    report: CheckReport,
    seed: int,
    max_steps: int,
) -> None:
    interpreter = Interpreter(
        cfg, scheduler=RandomScheduler(seed=seed), limits=ExecutionLimits(max_steps=max_steps)
    )
    for arguments in argument_sets:
        result = interpreter.run(arguments)
        report.simulation_runs += 1
        valid = True
        for configuration in result.trace:
            if not configuration:
                continue
            element = configuration.top()
            float_valuation = {name: float(value) for name, value in element.valuation.items()}
            if not precondition.holds_at(element.label, float_valuation):
                valid = False
            if not valid:
                break
            report.simulation_elements_checked += 1
            if not invariant.at(element.label).holds(float_valuation):
                report.violations.append(
                    Violation(kind="invariant", location=str(element.label), valuation=float_valuation)
                )
        if result.completed and invariant.postconditions:
            main_cfg = cfg.main
            final_elements = [c.top() for c in result.trace if len(c) == 1]
            if final_elements:
                last = final_elements[-1]
                float_valuation = {name: float(value) for name, value in last.valuation.items()}
                post = invariant.postcondition(main_cfg.name)
                if last.label.is_endpoint and not post.holds(float_valuation):
                    report.violations.append(
                        Violation(kind="postcondition", location=main_cfg.name, valuation=float_valuation)
                    )


def _sample_pairs(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    report: CheckReport,
    samples: int,
    value_range: float,
    seed: int,
) -> None:
    adapter = _InvariantAsTemplates(invariant)
    pairs = generate_constraint_pairs(cfg, precondition, adapter)  # type: ignore[arg-type]
    rng = random.Random(seed)
    report.pairs_checked = len(pairs)
    report.pair_samples = samples
    for pair in pairs:
        names = pair.relevant_program_variables()
        for _ in range(samples):
            valuation = {name: rng.uniform(-value_range, value_range) for name in names}
            if rng.random() < 0.5:
                valuation = {name: float(round(value)) for name, value in valuation.items()}
            if not pair.holds_numerically(valuation):
                report.violations.append(
                    Violation(kind="constraint-pair", location=pair.name, valuation=valuation)
                )
                break


def _check_certificates(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    report: CheckReport,
    upsilon: int,
    epsilon: float,
) -> None:
    from repro.solvers.sdp import check_putinar_certificate

    adapter = _InvariantAsTemplates(invariant)
    pairs = generate_constraint_pairs(cfg, precondition, adapter)  # type: ignore[arg-type]
    for pair in pairs:
        report.certificate_pairs_checked += 1
        outcome = check_putinar_certificate(pair, upsilon=upsilon, epsilon=epsilon)
        if not outcome.feasible:
            report.certificate_failures.append(pair.name)


def check_invariant(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    argument_sets: Sequence[Mapping[str, Fraction | int | float]] = (),
    pair_samples: int = 50,
    sample_range: float = 25.0,
    with_certificates: bool = False,
    upsilon: int = 2,
    epsilon: float = 1e-6,
    seed: int = 0,
    max_steps: int = 5000,
) -> CheckReport:
    """Run every enabled validation of ``invariant`` and return a report.

    Parameters
    ----------
    argument_sets:
        Concrete argument valuations for the entry function; each produces one
        simulated run.  Arguments violating the entry pre-condition simply
        yield invalid runs that are skipped, so callers can pass broad grids.
    pair_samples, sample_range:
        How many random valuations to throw at each concrete constraint pair,
        and from what box.
    with_certificates:
        Also search for explicit SOS certificates (slow; use on small
        programs or selected pairs).
    """
    report = CheckReport()
    if argument_sets:
        _simulate(cfg, precondition, invariant, argument_sets, report, seed, max_steps)
    if pair_samples > 0:
        _sample_pairs(cfg, precondition, invariant, report, pair_samples, sample_range, seed + 1)
    if with_certificates:
        _check_certificates(cfg, precondition, invariant, report, upsilon, epsilon)
    return report
