"""Alternative Step 3 translation via Handelman/Schweighofer products (Remark 2).

Schweighofer's theorem (Theorem 3.3 of the paper) certifies positivity of
``g`` over ``{C_1 >= 0, ..., C_p >= 0, g_{p+1} >= 0, ...}`` using non-negative
combinations of *products* of the constraints::

    g = lambda_0 + sum_I lambda_I * S^I,      lambda_0 > 0, lambda_I >= 0

where each ``S^I`` is a product of assumption polynomials.  Compared to the
Putinar encoding this avoids Gram matrices entirely — the unknowns are the
scalar ``lambda`` multipliers — at the cost of completeness only over
polytopes (plus bounded product degree).

To keep the generated system quadratic in the unknowns we only form products
that contain **at most one** assumption with template (s-variable)
coefficients: a product of two template polynomials would make the
coefficient equations cubic.  This restriction is sound (it merely shrinks
the certificate search space) and is the variant used by the ablation
benchmarks.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import TYPE_CHECKING, Sequence

from repro.invariants.constraints import ConstraintPair
from repro.invariants.quadratic_system import PairProvenance, QuadraticSystem
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.ordering import grlex_key
from repro.polynomial.polynomial import Polynomial

if TYPE_CHECKING:  # pragma: no cover
    from repro.invariants.translation import TranslationPool


def _has_unknowns(polynomial: Polynomial) -> bool:
    return any(name.startswith(UNKNOWN_PREFIX) for name in polynomial.variables())


def enumerate_products(
    assumptions: Sequence[Polynomial], max_factors: int
) -> list[tuple[str, tuple[int, ...], Polynomial]]:
    """All admissible products ``S^I`` of at most ``max_factors`` assumptions.

    Returns ``(label, factor indices, product)`` triples; the empty product
    (the constant 1, index combination ``()``) is always first.  Products
    containing more than one unknown-bearing factor are skipped to keep the
    final system quadratic.  The enumeration order is the certificate
    contract: the ``k``-th triple owns the multiplier unknown
    ``$t_<tag>_<k>_0``, and :mod:`repro.certify` re-runs this enumeration to
    reconstruct witnesses from a numeric solution.
    """
    products: list[tuple[str, tuple[int, ...], Polynomial]] = [("1", (), Polynomial.one())]
    for count in range(1, max_factors + 1):
        for combination in combinations_with_replacement(range(len(assumptions)), count):
            factors = [assumptions[i] for i in combination]
            if sum(1 for f in factors if _has_unknowns(f)) > 1:
                continue
            product = Polynomial.one()
            for factor in factors:
                product = product * factor
            label = "*".join(f"g{i}" for i in combination)
            products.append((label, combination, product))
    return products


def translate_pair_handelman(
    pair: ConstraintPair,
    pair_index: int,
    system: QuadraticSystem,
    max_factors: int = 2,
    with_witness: bool = True,
) -> None:
    """Translate one constraint pair with the Handelman/Schweighofer scheme."""
    tag = f"c{pair_index}"
    variables = pair.relevant_program_variables()
    system.provenance.append(
        PairProvenance(
            index=pair_index,
            name=pair.name,
            target=pair.target,
            scheme="handelman",
            assumption_count=len(pair.assumptions),
            variables=tuple(variables),
            max_factors=max_factors,
            with_witness=with_witness,
        )
    )

    rhs = Polynomial.zero()
    if with_witness:
        witness = Polynomial.variable(f"{UNKNOWN_PREFIX}eps_{tag}")
        system.add_positive(witness, origin=f"{pair.name}:witness")
        rhs = rhs + witness

    for product_index, (label, _combo, product) in enumerate(
        enumerate_products(pair.assumptions, max_factors)
    ):
        multiplier = Polynomial.variable(f"{UNKNOWN_PREFIX}t_{tag}_{product_index}_0")
        system.add_nonnegative(multiplier, origin=f"{pair.name}:lambda[{label}]")
        rhs = rhs + multiplier * product

    # Same canonical emission order as Putinar and the vectorised kernel:
    # ascending grlex rank of the matched monomial.
    difference = pair.conclusion - rhs
    collected = difference.collect(variables)
    for monomial in sorted(collected, key=lambda m: grlex_key(m, variables)):
        system.add_equality(collected[monomial], origin=f"{pair.name}:coeff[{monomial}]")


def translate_pair_handelman_system(
    pair: ConstraintPair, pair_index: int, max_factors: int = 2, with_witness: bool = True
) -> QuadraticSystem:
    """One pair's Handelman translation as a standalone system."""
    system = QuadraticSystem()
    translate_pair_handelman(pair, pair_index, system, max_factors=max_factors, with_witness=with_witness)
    return system


def handelman_translate(
    pairs: Sequence[ConstraintPair],
    max_factors: int = 2,
    with_witness: bool = True,
    objective: Polynomial | None = None,
    kernel: str = "vectorized",
    pool: "TranslationPool | None" = None,
) -> QuadraticSystem:
    """Translate constraint pairs into a quadratic system with scalar multipliers.

    ``kernel`` and ``pool`` behave exactly as in
    :func:`repro.invariants.putinar.putinar_translate`: the default runs the
    vectorised flat-array kernel (optionally fanned out over a shared-memory
    :class:`~repro.invariants.translation.TranslationPool`), while
    ``kernel="symbolic"`` keeps the per-``Polynomial`` reference loop.
    """
    if kernel == "vectorized":
        from repro.invariants.translation import handelman_translate_vectorized

        return handelman_translate_vectorized(
            pairs,
            max_factors=max_factors,
            with_witness=with_witness,
            objective=objective,
            pool=pool,
        )
    if kernel != "symbolic":
        raise ValueError(f"unknown translation kernel {kernel!r}")
    system = QuadraticSystem()
    if objective is not None:
        system.objective = objective
    for index, pair in enumerate(pairs):
        translate_pair_handelman(pair, index, system, max_factors=max_factors, with_witness=with_witness)
    return system
