"""Step 3: translating constraint pairs into quadratic systems via Putinar.

For a constraint pair ``(g_1 >= 0 /\\ ... /\\ g_m >= 0) ==> g > 0`` the paper
writes equation (†)::

    g = eps + h_0 + sum_i h_i * g_i

where ``eps > 0`` is a positivity witness and every ``h_i`` is a sum of
squares of degree at most the technical parameter Upsilon.  Each ``h_i`` is
represented as ``sum_j t_{i,j} * m'_j`` over the monomials ``m'_j`` of degree
at most Upsilon (*t-variables*), and its SOS-ness is encoded with a
lower-triangular Cholesky factor (*l-variables*, Theorems 3.4/3.5).  Equating
the coefficients of corresponding monomials on the two sides of (†) and of
``h_i = y^T L L^T y`` yields quadratic equalities over the s-, t-, l- and
eps-variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.invariants.constraints import ConstraintPair
from repro.invariants.quadratic_system import PairProvenance, QuadraticSystem
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.ordering import grlex_key, monomials_up_to_degree
from repro.polynomial.polynomial import Polynomial
from repro.polynomial.sos import gram_matrix_encoding

if TYPE_CHECKING:  # pragma: no cover
    from repro.invariants.translation import TranslationPool


@dataclass(frozen=True)
class PutinarOptions:
    """Options of the Putinar translation.

    Attributes
    ----------
    upsilon:
        The technical parameter of the paper: the maximum degree of the SOS
        multiplier polynomials ``h_i``.
    with_witness:
        When true (the default) a strict positivity witness ``eps`` is added,
        giving the paper's semi-complete encoding for strict invariants.
        When false the witness is omitted (Remark 6), which generates
        non-strict invariants soundly but without completeness.
    encode_sos:
        When true (the default) every multiplier is constrained to be a sum of
        squares through its Cholesky factor.  Disabling this yields a weaker
        relaxation used only by ablation experiments.
    """

    upsilon: int = 2
    with_witness: bool = True
    encode_sos: bool = True


def _pair_tag(index: int) -> str:
    return f"c{index}"


def _multiplier_polynomial(tag: str, which: int, monomials) -> Polynomial:
    result = Polynomial.zero()
    for j, monomial in enumerate(monomials):
        name = f"{UNKNOWN_PREFIX}t_{tag}_{which}_{j}"
        result = result + Polynomial.variable(name) * Polynomial.from_monomial(monomial)
    return result


def translate_pair(
    pair: ConstraintPair,
    pair_index: int,
    options: PutinarOptions,
    system: QuadraticSystem,
) -> None:
    """Translate one constraint pair, appending its constraints to ``system``."""
    tag = _pair_tag(pair_index)
    variables: Sequence[str] = pair.relevant_program_variables()
    monomials = monomials_up_to_degree(variables, options.upsilon)
    system.provenance.append(
        PairProvenance(
            index=pair_index,
            name=pair.name,
            target=pair.target,
            scheme="putinar",
            assumption_count=len(pair.assumptions),
            variables=tuple(variables),
            upsilon=options.upsilon,
            with_witness=options.with_witness,
        )
    )

    multipliers = [
        _multiplier_polynomial(tag, which, monomials)
        for which in range(len(pair.assumptions) + 1)
    ]

    # Right-hand side of equation (†).
    rhs = multipliers[0]
    if options.with_witness:
        witness = Polynomial.variable(f"{UNKNOWN_PREFIX}eps_{tag}")
        rhs = rhs + witness
        system.add_positive(witness, origin=f"{pair.name}:witness")
    for assumption, multiplier in zip(pair.assumptions, multipliers[1:]):
        rhs = rhs + multiplier * assumption

    # Coefficient-matching equalities are emitted in ascending grlex order of
    # the matched monomial — the canonical constraint order shared with the
    # vectorised kernel (which groups terms by grlex rank).
    difference = pair.conclusion - rhs
    collected = difference.collect(variables)
    for monomial in sorted(collected, key=lambda m: grlex_key(m, variables)):
        system.add_equality(collected[monomial], origin=f"{pair.name}:coeff[{monomial}]")

    if not options.encode_sos:
        return

    # Each multiplier must be a sum of squares: h_i = y^T L L^T y with the
    # diagonal of L non-negative (Theorems 3.4 and 3.5).
    for which, multiplier in enumerate(multipliers):
        encoding = gram_matrix_encoding(
            variables, options.upsilon, prefix=f"{UNKNOWN_PREFIX}l_{tag}_{which}"
        )
        sos_difference = multiplier - encoding.polynomial
        sos_collected = sos_difference.collect(variables)
        for monomial in sorted(sos_collected, key=lambda m: grlex_key(m, variables)):
            system.add_equality(
                sos_collected[monomial], origin=f"{pair.name}:sos{which}[{monomial}]"
            )
        for diagonal_name in encoding.diagonal_names:
            system.add_nonnegative(
                Polynomial.variable(diagonal_name), origin=f"{pair.name}:diag{which}"
            )


def translate_pair_system(
    pair: ConstraintPair, pair_index: int, options: PutinarOptions
) -> QuadraticSystem:
    """Translate one constraint pair into its own standalone system.

    Every unknown generated for a pair is namespaced by the pair index, so
    per-pair systems merged back in index order are constraint-for-constraint
    identical to a sequential translation (see
    :func:`repro.invariants.quadratic_system.merge_pair_systems`).
    """
    system = QuadraticSystem()
    translate_pair(pair, pair_index, options, system)
    return system


def putinar_translate(
    pairs: Sequence[ConstraintPair],
    upsilon: int = 2,
    with_witness: bool = True,
    encode_sos: bool = True,
    objective: Polynomial | None = None,
    kernel: str = "vectorized",
    pool: "TranslationPool | None" = None,
) -> QuadraticSystem:
    """Translate all constraint pairs into one quadratic system.

    Parameters
    ----------
    pairs:
        The constraint pairs produced by Step 2.
    upsilon:
        The paper's technical parameter (maximum degree of the SOS
        multipliers).  Larger values enlarge the system but make the
        encoding complete for more invariants (Lemma 3.7).
    with_witness, encode_sos:
        See :class:`PutinarOptions`.
    objective:
        Optional objective polynomial over the unknowns (for Weak synthesis).
    kernel:
        ``"vectorized"`` (the default) runs the flat-array translation kernel
        of :mod:`repro.invariants.translation`; ``"symbolic"`` runs the
        per-``Polynomial`` reference loop.  The two produce identical systems
        (the property tests in ``tests/property`` are the oracle).
    pool:
        Optional :class:`~repro.invariants.translation.TranslationPool` for
        the shared-memory fan-out (vectorised kernel only).  When the pool is
        unavailable on this platform the translation silently stays on the
        sequential vectorised path.
    """
    options = PutinarOptions(upsilon=upsilon, with_witness=with_witness, encode_sos=encode_sos)
    if kernel == "vectorized":
        from repro.invariants.translation import putinar_translate_vectorized

        return putinar_translate_vectorized(pairs, options, objective=objective, pool=pool)
    if kernel != "symbolic":
        raise ValueError(f"unknown translation kernel {kernel!r}")
    system = QuadraticSystem()
    if objective is not None:
        system.objective = objective
    for index, pair in enumerate(pairs):
        translate_pair(pair, index, options, system)
    return system
