"""Stack-machine interpreter implementing the run semantics of Section 2.2.

The interpreter executes a program from its entry function on a concrete
argument valuation, resolving non-determinism through a
:class:`~repro.semantics.scheduler.NondetScheduler`.  Valuations are exact
(:class:`fractions.Fraction`), so executions of polynomial programs never
accumulate rounding error — important when traces are used to falsify
candidate invariants with strict inequalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import LabelKind
from repro.cfg.transition import Transition, TransitionKind
from repro.errors import SemanticsError
from repro.semantics.scheduler import NondetScheduler, RandomScheduler
from repro.semantics.traces import Configuration, StackElement, Trace


@dataclass(frozen=True)
class ExecutionLimits:
    """Caps on a single run, so that non-terminating programs stay analysable."""

    max_steps: int = 10_000
    max_stack_depth: int = 500


@dataclass
class RunResult:
    """Outcome of a single run of the interpreter."""

    trace: Trace
    terminated: bool
    truncated: bool
    return_value: Fraction | None
    steps: int
    stuck_reason: str | None = field(default=None)

    @property
    def completed(self) -> bool:
        """Whether the run reached normal termination (empty configuration)."""
        return self.terminated and not self.truncated and self.stuck_reason is None


def _initial_valuation(cfg: FunctionCFG, arguments: Mapping[str, Fraction | int | float]) -> dict[str, Fraction]:
    valuation: dict[str, Fraction] = {name: Fraction(0) for name in cfg.variables}
    for parameter in cfg.parameters:
        if parameter not in arguments:
            raise SemanticsError(
                f"missing argument for parameter {parameter!r} of function {cfg.name!r}"
            )
        value = Fraction(arguments[parameter])
        valuation[parameter] = value
        valuation[cfg.frozen_parameters[parameter]] = value
    return valuation


class Interpreter:
    """Executes runs of a program CFG under a non-determinism scheduler."""

    def __init__(
        self,
        cfg: ProgramCFG,
        scheduler: NondetScheduler | None = None,
        limits: ExecutionLimits | None = None,
    ):
        self._cfg = cfg
        self._scheduler = scheduler if scheduler is not None else RandomScheduler(seed=0)
        self._limits = limits if limits is not None else ExecutionLimits()

    # -- public API ------------------------------------------------------------

    def run(self, arguments: Mapping[str, Fraction | int | float]) -> RunResult:
        """Execute one run of the entry function on the given arguments."""
        self._scheduler.reset()
        main_cfg = self._cfg.main
        element = StackElement(
            function=main_cfg.name,
            label=main_cfg.entry,
            valuation=_initial_valuation(main_cfg, arguments),
        )
        configuration = Configuration(stack=(element,))
        trace = Trace()
        trace.append(configuration)

        steps = 0
        return_value: Fraction | None = None
        while configuration and steps < self._limits.max_steps:
            if len(configuration) > self._limits.max_stack_depth:
                return RunResult(
                    trace=trace,
                    terminated=False,
                    truncated=True,
                    return_value=None,
                    steps=steps,
                    stuck_reason="stack depth limit exceeded",
                )
            try:
                configuration, finished_value = self._step(configuration)
            except SemanticsError as error:
                return RunResult(
                    trace=trace,
                    terminated=False,
                    truncated=False,
                    return_value=None,
                    steps=steps,
                    stuck_reason=str(error),
                )
            if finished_value is not None:
                return_value = finished_value
            trace.append(configuration)
            steps += 1

        terminated = not configuration
        truncated = bool(configuration) and steps >= self._limits.max_steps
        return RunResult(
            trace=trace,
            terminated=terminated,
            truncated=truncated,
            return_value=return_value,
            steps=steps,
        )

    def run_many(
        self,
        argument_sets: Sequence[Mapping[str, Fraction | int | float]],
    ) -> list[RunResult]:
        """Execute one run for each argument valuation in ``argument_sets``."""
        return [self.run(arguments) for arguments in argument_sets]

    # -- single-step semantics ---------------------------------------------------

    def _step(self, configuration: Configuration) -> tuple[Configuration, Fraction | None]:
        element = configuration.top()
        function_cfg = self._cfg.function(element.function)
        label = element.label

        if label.kind is LabelKind.END:
            return self._step_endpoint(configuration, element, function_cfg)

        outgoing = function_cfg.outgoing(label)
        if not outgoing:
            raise SemanticsError(f"label {label} has no outgoing transitions")

        if label.kind is LabelKind.ASSIGN:
            transition = outgoing[0]
            updated = transition.apply_update(element.valuation)
            successor = StackElement(element.function, transition.target, updated)
            return configuration.replace_top(successor), None

        if label.kind is LabelKind.BRANCH:
            transition = self._pick_guard(outgoing, element.valuation, label)
            successor = StackElement(element.function, transition.target, dict(element.valuation))
            return configuration.replace_top(successor), None

        if label.kind is LabelKind.NONDET:
            transition = self._scheduler.choose(label, outgoing)
            successor = StackElement(element.function, transition.target, dict(element.valuation))
            return configuration.replace_top(successor), None

        if label.kind is LabelKind.CALL:
            return self._step_call(configuration, element, outgoing[0]), None

        raise SemanticsError(f"unsupported label kind {label.kind!r}")

    def _pick_guard(self, outgoing, valuation, label) -> Transition:
        float_valuation = {name: float(value) for name, value in valuation.items()}
        for transition in outgoing:
            if transition.kind is not TransitionKind.GUARD:
                raise SemanticsError(f"non-guard transition out of branching label {label}")
            assert transition.guard is not None
            if transition.guard.holds(float_valuation):
                return transition
        raise SemanticsError(f"no guard out of label {label} is satisfied")

    def _step_call(
        self, configuration: Configuration, element: StackElement, transition: Transition
    ) -> Configuration:
        if transition.kind is not TransitionKind.CALL or transition.call is None:
            raise SemanticsError(f"expected a call transition out of {element.label}")
        call = transition.call
        callee_cfg = self._cfg.function(call.callee)
        argument_values = {
            parameter: element.value(argument)
            for parameter, argument in zip(callee_cfg.parameters, call.arguments)
        }
        callee_valuation = _initial_valuation(callee_cfg, argument_values)
        callee_element = StackElement(
            function=callee_cfg.name, label=callee_cfg.entry, valuation=callee_valuation
        )
        return configuration.push(callee_element)

    def _step_endpoint(
        self, configuration: Configuration, element: StackElement, function_cfg: FunctionCFG
    ) -> tuple[Configuration, Fraction | None]:
        returned = element.value(function_cfg.return_variable)
        if len(configuration) == 1:
            return Configuration(), returned

        caller = configuration.stack[-2]
        caller_cfg = self._cfg.function(caller.function)
        call_transition = self._call_transition(caller_cfg, caller)
        assert call_transition.call is not None
        updated = dict(caller.valuation)
        updated[call_transition.call.target] = returned
        resumed = StackElement(
            function=caller.function, label=call_transition.target, valuation=updated
        )
        return configuration.pop(2).push(resumed), None

    @staticmethod
    def _call_transition(caller_cfg: FunctionCFG, caller: StackElement) -> Transition:
        outgoing = caller_cfg.outgoing(caller.label)
        if not outgoing or outgoing[0].kind is not TransitionKind.CALL:
            raise SemanticsError(
                f"caller label {caller.label} is not a function-call statement"
            )
        return outgoing[0]
