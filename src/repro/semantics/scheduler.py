"""Resolution strategies for the program's non-deterministic choices.

The interpreter delegates every ``if *`` decision to a scheduler, which makes
it possible to explore runs randomly (for invariant falsification), replay a
fixed decision sequence (for regression tests) or alternate deterministically.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.cfg.labels import Label
from repro.cfg.transition import Transition


class NondetScheduler(ABC):
    """Strategy interface: pick one of the outgoing ``*`` transitions."""

    @abstractmethod
    def choose(self, label: Label, options: Sequence[Transition]) -> Transition:
        """Select one transition out of ``options`` (never empty)."""

    def reset(self) -> None:
        """Reset any internal state before a fresh run (optional)."""


class RandomScheduler(NondetScheduler):
    """Choose uniformly at random, optionally with a fixed seed."""

    def __init__(self, seed: int | None = None):
        self._random = random.Random(seed)

    def choose(self, label: Label, options: Sequence[Transition]) -> Transition:
        return self._random.choice(list(options))


class ScriptedScheduler(NondetScheduler):
    """Replay a fixed sequence of branch indices (0 = first option).

    Once the script is exhausted the scheduler keeps choosing the first
    option, which makes scripted runs deterministic even when they are longer
    than the script.
    """

    def __init__(self, choices: Sequence[int]):
        self._choices = list(choices)
        self._position = 0

    def choose(self, label: Label, options: Sequence[Transition]) -> Transition:
        if self._position < len(self._choices):
            index = self._choices[self._position] % len(options)
            self._position += 1
        else:
            index = 0
        return options[index]

    def reset(self) -> None:
        self._position = 0


class AlternatingScheduler(NondetScheduler):
    """Alternate deterministically between the available options."""

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, label: Label, options: Sequence[Transition]) -> Transition:
        index = self._counter % len(options)
        self._counter += 1
        return options[index]

    def reset(self) -> None:
        self._counter = 0
