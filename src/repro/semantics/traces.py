"""Stack elements, configurations and execution traces (Section 2.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Mapping

from repro.cfg.labels import Label


@dataclass(frozen=True)
class StackElement:
    """A stack element ``(f, l, nu)``: a function, a label in it and a valuation."""

    function: str
    label: Label
    valuation: Mapping[str, Fraction]

    def value(self, variable: str) -> Fraction:
        """The value of ``variable`` (0 when the valuation does not mention it)."""
        return self.valuation.get(variable, Fraction(0))

    def __str__(self) -> str:
        values = ", ".join(f"{var}={float(val):g}" for var, val in sorted(self.valuation.items()))
        return f"({self.function}, {self.label}, {{{values}}})"


@dataclass(frozen=True)
class Configuration:
    """A configuration: a finite stack of stack elements (possibly empty)."""

    stack: tuple[StackElement, ...] = ()

    def __len__(self) -> int:
        return len(self.stack)

    def __bool__(self) -> bool:
        return bool(self.stack)

    def top(self) -> StackElement:
        """The last (innermost) stack element."""
        if not self.stack:
            raise IndexError("the empty configuration has no top element")
        return self.stack[-1]

    def push(self, element: StackElement) -> "Configuration":
        """The configuration with ``element`` appended."""
        return Configuration(stack=(*self.stack, element))

    def pop(self, count: int = 1) -> "Configuration":
        """The configuration with the last ``count`` elements removed."""
        if count > len(self.stack):
            raise IndexError(f"cannot pop {count} elements from a stack of {len(self.stack)}")
        return Configuration(stack=self.stack[: len(self.stack) - count])

    def replace_top(self, element: StackElement) -> "Configuration":
        """The configuration with the top element replaced."""
        return self.pop().push(element)

    def __iter__(self) -> Iterator[StackElement]:
        return iter(self.stack)


@dataclass
class Trace:
    """A finite prefix of a run: the visited configurations in order."""

    configurations: list[Configuration] = field(default_factory=list)

    def append(self, configuration: Configuration) -> None:
        self.configurations.append(configuration)

    def __len__(self) -> int:
        return len(self.configurations)

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.configurations)

    def visited_elements(self) -> Iterator[StackElement]:
        """Every stack element appearing anywhere in the trace, in order."""
        for configuration in self.configurations:
            yield from configuration

    def top_elements(self) -> Iterator[StackElement]:
        """The top stack element of every non-empty configuration."""
        for configuration in self.configurations:
            if configuration:
                yield configuration.top()
