"""Concrete semantics: a stack-machine interpreter for the paper's programs.

The interpreter implements the run semantics of Section 2.2 — configurations
are stacks of ``(function, label, valuation)`` stack elements — and is used by
the dynamic invariant checker and the test suite to falsify candidate
invariants by simulation.
"""

from repro.semantics.interpreter import ExecutionLimits, Interpreter, RunResult
from repro.semantics.scheduler import (
    AlternatingScheduler,
    NondetScheduler,
    RandomScheduler,
    ScriptedScheduler,
)
from repro.semantics.traces import Configuration, StackElement, Trace

__all__ = [
    "AlternatingScheduler",
    "Configuration",
    "ExecutionLimits",
    "Interpreter",
    "NondetScheduler",
    "RandomScheduler",
    "RunResult",
    "ScriptedScheduler",
    "StackElement",
    "Trace",
]
