"""Exact lifting: from a floating-point solve to a rational certificate.

The Step-4 solvers return a floating-point assignment that satisfies the
Step-3 :class:`~repro.invariants.quadratic_system.QuadraticSystem` only up to
a tolerance.  This module turns such an assignment into an **exact** witness:

1. **Rationalization** — every template coefficient is rounded to a nearby
   rational by continued fractions (:meth:`fractions.Fraction.
   limit_denominator`) at escalating denominators; small denominators come
   first, so a solver solution that hovers around a clean invariant snaps to
   the clean one before any noise is chased.
2. **Witness completion** — with the template coefficients fixed, the
   coefficient-matching equations of the paper's equation (†) are *linear* in
   the multiplier coefficients.  They are re-solved exactly over ``Fraction``
   (free coordinates pinned near the solver's values), the positivity witness
   is carved out of the resulting constant slack, and SOS-ness of every
   multiplier is decided exactly via rational ``L D L^T``.

The verdict involves **no float tolerances**: a lift either produces a
:class:`~repro.certify.certificate.Certificate` whose
:func:`~repro.certify.certificate.check_certificate` passes by polynomial
identity, or it fails and reports the exact rational residuals of the
quadratic system at the best snapped point (:func:`exact_violations`) so the
repair loop has concrete violations to work from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.certify.certificate import Certificate, PairCertificate, SOSWitness
from repro.certify.linalg import ldl_decompose, solve_linear
from repro.invariants.constraints import ConstraintPair
from repro.invariants.quadratic_system import (
    ConstraintKind,
    PairProvenance,
    QuadraticSystem,
    VariableRole,
    classify_unknown,
)
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial
from repro.polynomial.sos import sos_basis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reduction.task import SynthesisTask

#: Escalating continued-fraction denominators tried by the lift, smallest
#: (cleanest) first.  The early rungs snap solver noise onto the simple
#: rationals real invariants are made of; the late rungs keep faith with
#: solutions that genuinely need large denominators.
DENOMINATOR_LADDER: tuple[int, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 1024, 10**4, 10**6,
)

_ZERO = Fraction(0)


def rationalize(
    assignment: Mapping[str, float], max_denominator: int
) -> dict[str, Fraction]:
    """Per-coefficient continued-fraction rounding of a numeric assignment."""
    return {
        name: Fraction(float(value)).limit_denominator(max_denominator)
        for name, value in assignment.items()
    }


@dataclass(frozen=True)
class ExactViolation:
    """One constraint of the quadratic system violated at an exact point."""

    index: int
    origin: str
    kind: str
    value: Fraction

    def __str__(self) -> str:
        relation = {"eq": "= 0", "ge": ">= 0", "gt": "> 0"}[self.kind]
        return f"constraint[{self.index}] ({self.origin}): {self.value} fails {relation}"


def exact_violations(
    system: QuadraticSystem, assignment: Mapping[str, Fraction], limit: int | None = None
) -> list[ExactViolation]:
    """Exact re-evaluation of every constraint at a rational point.

    Equalities must be exactly zero, ``>=`` exactly non-negative and ``>``
    exactly positive — no float tolerances enter the verdict.  Unmentioned
    variables default to zero.
    """
    valuation = {name: Fraction(assignment.get(name, _ZERO)) for name in system.variables()}
    violations: list[ExactViolation] = []
    for index, constraint in enumerate(system.constraints):
        value = constraint.polynomial.evaluate(valuation)
        kind = constraint.kind
        failed = (
            value != 0
            if kind is ConstraintKind.EQUALITY
            else value < 0
            if kind is ConstraintKind.NONNEGATIVE
            else value <= 0
        )
        if failed:
            violations.append(
                ExactViolation(index=index, origin=constraint.origin, kind=kind.value, value=value)
            )
            if limit is not None and len(violations) >= limit:
                break
    return violations


@dataclass
class LiftResult:
    """Outcome of one :func:`lift_solution` run."""

    ok: bool
    certificate: Certificate | None = None
    exact_assignment: dict[str, Fraction] | None = None
    denominator: int | None = None
    attempts: int = 0
    seconds: float = 0.0
    reason: str | None = None
    violations: list[ExactViolation] = field(default_factory=list)


def _template_values(assignment: Mapping[str, float]) -> dict[str, float]:
    return {
        name: float(value)
        for name, value in assignment.items()
        if classify_unknown(name) is VariableRole.TEMPLATE
    }


def _concrete(polynomial: Polynomial, exact_s: Mapping[str, Fraction]) -> Polynomial:
    substitution = {
        name: Polynomial.constant(exact_s.get(name, _ZERO))
        for name in polynomial.variables()
        if name.startswith(UNKNOWN_PREFIX)
    }
    return polynomial.substitute(substitution) if substitution else polynomial


# ---------------------------------------------------------------------------
# Gram-matrix construction
# ---------------------------------------------------------------------------


def _slot_groups(basis: Sequence[Monomial]) -> dict[Monomial, list[tuple[int, int]]]:
    """Basis-pair slots grouped by their product monomial (i <= j)."""
    groups: dict[Monomial, list[tuple[int, int]]] = {}
    for i in range(len(basis)):
        for j in range(i, len(basis)):
            groups.setdefault(basis[i] * basis[j], []).append((i, j))
    return groups


def _float_gram(
    prov: PairProvenance,
    which: int,
    dimension: int,
    floats: Mapping[str, float],
    pin_denominator: int,
) -> list[list[Fraction]]:
    """The snapped ``L L^T`` of the solver's Cholesky factors (PSD by construction)."""
    prefix = f"{UNKNOWN_PREFIX}l_{prov.tag}_{which}"
    lower = [
        [
            Fraction(float(floats.get(f"{prefix}_{row}_{col}", 0.0))).limit_denominator(
                pin_denominator
            )
            for col in range(row + 1)
        ]
        for row in range(dimension)
    ]
    gram = [[_ZERO] * dimension for _ in range(dimension)]
    for i in range(dimension):
        for j in range(i + 1):
            total = _ZERO
            for k in range(min(i, j) + 1):
                total += lower[i][k] * lower[j][k]
            gram[i][j] = total
            gram[j][i] = total
    return gram


def _gram_matrix(
    multiplier: Polynomial,
    basis: Sequence[Monomial],
    groups: Mapping[Monomial, list[tuple[int, int]]],
    prov: PairProvenance,
    which: int,
    floats: Mapping[str, float],
    pin_denominator: int,
) -> tuple[tuple[Fraction, ...], ...] | None:
    """An exact Gram matrix with ``multiplier == y^T Q y``, or ``None``.

    When every product monomial has a unique basis-pair slot (true for the
    affine bases of Upsilon <= 3) the Gram matrix is determined by the
    multiplier's coefficients.  Otherwise the solver's Cholesky factors guide
    a PSD starting matrix and the exact residual is folded into the first
    slot of each product group.
    """
    dimension = len(basis)
    unique = all(len(slots) == 1 for slots in groups.values())
    if unique:
        gram = [[_ZERO] * dimension for _ in range(dimension)]
        for monomial, coefficient in multiplier.items():
            slots = groups.get(monomial)
            if slots is None:
                return None  # monomial outside the SOS-representable support
            i, j = slots[0]
            if i == j:
                gram[i][i] = coefficient
            else:
                gram[i][j] = coefficient / 2
                gram[j][i] = coefficient / 2
        return tuple(tuple(row) for row in gram)
    gram = _float_gram(prov, which, dimension, floats, pin_denominator)
    expanded = Polynomial.zero()
    for i in range(dimension):
        for j in range(dimension):
            if gram[i][j]:
                expanded = expanded + Polynomial.from_monomial(basis[i] * basis[j], gram[i][j])
    residual = multiplier - expanded
    for monomial, coefficient in residual.items():
        slots = groups.get(monomial)
        if slots is None:
            return None
        i, j = slots[0]
        if i == j:
            gram[i][i] += coefficient
        else:
            gram[i][j] += coefficient / 2
            gram[j][i] += coefficient / 2
    return tuple(tuple(row) for row in gram)


# ---------------------------------------------------------------------------
# Per-pair witness completion
# ---------------------------------------------------------------------------


def _solve_completion(
    contributions: list[Polynomial],
    guesses: list[Fraction],
    target: Polynomial,
) -> list[Fraction] | None:
    """Exactly solve the coefficient-matching equations of equation (†).

    One equation per monomial (the constant included): the contribution
    columns combined with the solved coefficients must reproduce ``target``
    exactly.
    """
    support: set[Monomial] = set()
    for polynomial in (target, *contributions):
        for monomial, _ in polynomial.items():
            support.add(monomial)
    equations = sorted(support, key=Monomial.sort_key)
    matrix = [
        [contribution.coefficient(monomial) for contribution in contributions]
        for monomial in equations
    ]
    rhs = [target.coefficient(monomial) for monomial in equations]
    return solve_linear(matrix, rhs, guesses)


def _pinned_multiplier(
    prov: PairProvenance,
    which: int,
    basis: Sequence[Monomial],
    floats: Mapping[str, float],
    pin_denominator: int,
) -> tuple[Polynomial, tuple[tuple[Fraction, ...], ...]]:
    """The snapped-Cholesky multiplier ``y^T (L̂ L̂^T) y`` — exactly SOS by construction."""
    gram = _float_gram(prov, which, len(basis), floats, pin_denominator)
    polynomial = Polynomial.zero()
    for i in range(len(basis)):
        for j in range(len(basis)):
            if gram[i][j]:
                polynomial = polynomial + Polynomial.from_monomial(basis[i] * basis[j], gram[i][j])
    return polynomial, tuple(tuple(row) for row in gram)


def _equality_partners(assumptions: Sequence[Polynomial]) -> dict[int, int]:
    """Greedy one-to-one matching of ``g`` / ``-g`` assumption pairs.

    Equalities reach Step 2 as two opposite non-strict atoms.  The multipliers
    of such a pair enjoy a gauge freedom — adding the *same* SOS polynomial to
    both leaves ``h_a * g + h_b * (-g)`` unchanged — which the lift exploits
    to restore PSD-ness after exact corrections, for free.
    """
    partners: dict[int, int] = {}
    for i in range(len(assumptions)):
        if i in partners:
            continue
        negated = -assumptions[i]
        for j in range(i + 1, len(assumptions)):
            if j not in partners and assumptions[j] == negated:
                partners[i] = j
                partners[j] = i
                break
    return partners


def _boost_paired_grams(
    gram_a: list[list[Fraction]], gram_b: list[list[Fraction]]
) -> tuple[list[list[Fraction]], list[list[Fraction]]] | None:
    """Add the same ``c * I`` to both Grams until both are PSD (exactly)."""
    if ldl_decompose(gram_a) is not None and ldl_decompose(gram_b) is not None:
        return gram_a, gram_b
    boost = Fraction(1, 2**20)
    for _ in range(48):
        boosted_a = [
            [value + (boost if i == j else 0) for j, value in enumerate(row)]
            for i, row in enumerate(gram_a)
        ]
        boosted_b = [
            [value + (boost if i == j else 0) for j, value in enumerate(row)]
            for i, row in enumerate(gram_b)
        ]
        if ldl_decompose(boosted_a) is not None and ldl_decompose(boosted_b) is not None:
            return boosted_a, boosted_b
        boost *= 2
    return None


def _certify_pair_putinar(
    pair: ConstraintPair,
    prov: PairProvenance,
    exact_s: Mapping[str, Fraction],
    floats: Mapping[str, float],
    pin_denominator: int,
    escalate_basis: bool = False,
) -> tuple[PairCertificate | None, str | None]:
    """Certify one pair, optionally escalating the witness basis on failure.

    The certificate's multipliers need not respect the translator's Upsilon —
    Putinar soundness only needs them SOS — so when the completion fails at
    the solver's multiplier degree and ``escalate_basis`` is set, one richer
    basis (Upsilon + 2) is tried: the extra columns often restore exact cone
    membership that the coarse basis lacks at a snapped template assignment.
    """
    outcome, reason = _certify_pair_putinar_at(
        pair, prov, exact_s, floats, pin_denominator, prov.upsilon or 0
    )
    if outcome is not None or not escalate_basis:
        return outcome, reason
    return _certify_pair_putinar_at(
        pair, prov, exact_s, floats, pin_denominator, (prov.upsilon or 0) + 2
    )


def _certify_pair_putinar_at(
    pair: ConstraintPair,
    prov: PairProvenance,
    exact_s: Mapping[str, Fraction],
    floats: Mapping[str, float],
    pin_denominator: int,
    upsilon: int,
) -> tuple[PairCertificate | None, str | None]:
    variables = prov.variables
    assumptions = [_concrete(polynomial, exact_s) for polynomial in pair.assumptions]
    conclusion = _concrete(pair.conclusion, exact_s)
    basis = tuple(sos_basis(variables, upsilon))
    groups = _slot_groups(basis)
    one = Monomial.one()
    support = sorted(groups, key=Monomial.sort_key)
    multiplier_count = prov.assumption_count + 1
    partners = _equality_partners(assumptions)
    paired = {index + 1 for index in partners}  # multiplier index = assumption index + 1

    # Exactly-SOS pinned version of every multiplier, from the solver's
    # (snapped) Cholesky factors: a multiplier whose columns all stay free
    # keeps exactly this polynomial — and exactly this PSD Gram.
    pinned = [
        _pinned_multiplier(prov, which, basis, floats, pin_denominator)
        for which in range(multiplier_count)
    ]
    eps_guess = Fraction(
        float(floats.get(f"{UNKNOWN_PREFIX}eps_{prov.tag}", 0.0))
    ).limit_denominator(max(pin_denominator, 10**6))

    def contribution(which: int, monomial: Monomial) -> Polynomial:
        base = Polynomial.from_monomial(monomial)
        return base if which == 0 else base * assumptions[which - 1]

    # Column order routes the RREF pivots: equality-paired multipliers first
    # (their PSD margins are repairable for free), then the unpaired ones,
    # then h_0, then eps — the trailing columns stay free at their pins.
    ordered = [
        *(which for which in range(1, multiplier_count) if which in paired),
        *(which for which in range(1, multiplier_count) if which not in paired),
        0,
    ]

    def attempt(protected: set[int]) -> tuple[object, str | None]:
        """One exact solve with ``protected`` multipliers frozen at their pins."""
        unknowns: list[tuple[int, Monomial]] = []
        guesses: list[Fraction] = []
        for which in ordered:
            if which in protected:
                continue
            for monomial in support:
                unknowns.append((which, monomial))
                guesses.append(pinned[which][0].coefficient(monomial))
        if prov.with_witness:
            unknowns.append((-1, one))  # the positivity witness, last so it stays free
            guesses.append(eps_guess)
        target = conclusion
        for which in protected:
            if which == 0:
                target = target - pinned[0][0]
            else:
                target = target - pinned[which][0] * assumptions[which - 1]
        columns = [
            Polynomial.one() if which < 0 else contribution(which, monomial)
            for which, monomial in unknowns
        ]
        solution = _solve_completion(columns, guesses, target)
        if solution is None:
            return None, "coefficient-matching equations have no exact solution at this snap"
        multipliers = [Polynomial.zero() for _ in range(multiplier_count)]
        eps: Fraction | None = None
        for (which, monomial), value in zip(unknowns, solution):
            if which < 0:
                eps = value
            elif value:
                multipliers[which] = multipliers[which] + Polynomial.from_monomial(monomial, value)
        for which in protected:
            multipliers[which] = pinned[which][0]
        if prov.with_witness and (eps is None or eps <= 0):
            return None, f"no positive witness at this snap (eps = {eps})"

        # Duplicate assumptions: only the *sum* of their multipliers enters
        # the identity, so averaging within a duplicate group is free — and
        # it heals the tiny negative pivot values the RREF parks on one
        # duplicate while the pinned mass sits on another.
        duplicate_groups: dict[Polynomial, list[int]] = {}
        for index, assumption in enumerate(assumptions):
            duplicate_groups.setdefault(assumption, []).append(index + 1)
        for members in duplicate_groups.values():
            free_members = [which for which in members if which not in protected]
            if len(free_members) < 2:
                continue
            total = Polynomial.zero()
            for which in free_members:
                total = total + multipliers[which]
            average = total / len(free_members)
            for which in free_members:
                multipliers[which] = average

        grams: list[list[list[Fraction]] | None] = [None] * multiplier_count
        for which in range(multiplier_count):
            if which in protected:
                grams[which] = [list(row) for row in pinned[which][1]]
                continue
            gram = _gram_matrix(
                multipliers[which], basis, groups, prov, which, floats, pin_denominator
            )
            if gram is None:
                return which, "multiplier outside the SOS-representable support"
            grams[which] = [list(row) for row in gram]

        # Free PSD repair for equality-paired multipliers: the same diagonal
        # boost on both sides of a pair cancels out of the identity.
        repaired: set[int] = set()
        for index, partner in partners.items():
            which_a, which_b = index + 1, partner + 1
            if which_a in repaired or which_a in protected or which_b in protected:
                continue
            repaired.update((which_a, which_b))
            boosted = _boost_paired_grams(grams[which_a], grams[which_b])
            if boosted is None:
                return which_a, "multiplier not PSD"
            grams[which_a], grams[which_b] = boosted[0], boosted[1]

        witnesses: list[SOSWitness] = []
        for which in range(multiplier_count):
            gram = grams[which]
            assert gram is not None
            frozen = tuple(tuple(row) for row in gram)
            if which not in repaired and which not in protected:
                if ldl_decompose(frozen) is None:
                    return which, "multiplier not PSD"
            witnesses.append(SOSWitness(basis=basis, gram=frozen))
        certificate = PairCertificate(
            name=pair.name,
            target=pair.target or prov.target,
            scheme="putinar",
            assumptions=tuple(assumptions),
            conclusion=conclusion,
            witness=eps if prov.with_witness else None,
            multipliers=tuple(witnesses),
        )
        return certificate, None

    # Protection loop: when an (unpaired) multiplier's exact completion loses
    # PSD-ness, freeze it at its exactly-SOS Cholesky pin and re-solve.
    protected: set[int] = set()
    reason = "no PSD Gram completion for the multipliers"
    for _ in range(multiplier_count + 1):
        outcome, failure = attempt(protected)
        if isinstance(outcome, PairCertificate):
            return outcome, None
        if isinstance(outcome, int):
            protected.add(outcome)
            continue
        reason = failure or reason
        break
    return None, reason


def _certify_pair_handelman(
    pair: ConstraintPair,
    prov: PairProvenance,
    exact_s: Mapping[str, Fraction],
    floats: Mapping[str, float],
    pin_denominator: int,
) -> tuple[PairCertificate | None, str | None]:
    from repro.invariants.handelman import enumerate_products

    assumptions = [_concrete(polynomial, exact_s) for polynomial in pair.assumptions]
    conclusion = _concrete(pair.conclusion, exact_s)
    products = enumerate_products(
        pair.assumptions, 2 if prov.max_factors is None else prov.max_factors
    )
    combos = [combo for _, combo, _ in products]
    concrete_products: list[Polynomial] = []
    for _, combo, _ in products:
        value = Polynomial.one()
        for index in combo:
            value = value * assumptions[index]
        concrete_products.append(value)

    guesses = [
        Fraction(float(floats.get(f"{UNKNOWN_PREFIX}t_{prov.tag}_{k}_0", 0.0))).limit_denominator(
            pin_denominator
        )
        for k in range(len(products))
    ]
    # lambda_0 (the constant product) and eps are trailing unknowns so the
    # RREF keeps them free — pinned at the solver's (positive) values —
    # whenever the remaining columns can carry the pivots.
    columns = [*concrete_products[1:], Polynomial.one()]
    trailing = [guesses[0]]
    if prov.with_witness:
        columns.append(Polynomial.one())
        trailing.append(
            Fraction(float(floats.get(f"{UNKNOWN_PREFIX}eps_{prov.tag}", 0.0))).limit_denominator(
                max(pin_denominator, 10**6)
            )
        )
    solution = _solve_completion(columns, [*guesses[1:], *trailing], conclusion)
    if solution is None:
        return None, "coefficient-matching equations have no exact solution at this snap"
    eps: Fraction | None = solution[-1] if prov.with_witness else None
    lambda_rest = solution[: len(concrete_products) - 1]
    lambdas = [solution[len(concrete_products) - 1], *lambda_rest]
    # Identical concrete products share one coefficient slot in the identity:
    # averaging their lambdas is free and heals negative pivot values.
    product_groups: dict[Polynomial, list[int]] = {}
    for index, product in enumerate(concrete_products):
        if index:
            product_groups.setdefault(product, []).append(index)
    for members in product_groups.values():
        if len(members) < 2:
            continue
        average = sum(lambdas[index] for index in members) / len(members)
        for index in members:
            lambdas[index] = average
    # Equality pairs give the same gauge freedom as in the Putinar scheme:
    # raising the lambdas of a g / -g single-factor pair by the same amount
    # cancels out of the identity, repairing negative values for free.
    single_factor = {combo[0]: index for index, combo in enumerate(combos) if len(combo) == 1}
    for i, j in _equality_partners(assumptions).items():
        if i > j:
            continue
        k_a, k_b = single_factor.get(i), single_factor.get(j)
        if k_a is None or k_b is None:
            continue
        boost = max(_ZERO, -lambdas[k_a], -lambdas[k_b])
        if boost:
            lambdas[k_a] += boost
            lambdas[k_b] += boost
    for coefficient, combo in zip(lambdas, combos):
        if coefficient < 0:
            return None, f"lambda[{combo}] = {coefficient} is negative"
    if prov.with_witness and (eps is None or eps <= 0):
        return None, f"no positive witness at this snap (eps = {eps})"
    return (
        PairCertificate(
            name=pair.name,
            target=pair.target or prov.target,
            scheme="handelman",
            assumptions=tuple(assumptions),
            conclusion=conclusion,
            witness=eps,
            lambdas=tuple(lambdas),
            products=tuple(combos),
        ),
        None,
    )


def certify_assignment(
    task: "SynthesisTask",
    exact_s: Mapping[str, Fraction],
    floats: Mapping[str, float],
    pin_denominator: int,
    escalate_basis: bool = False,
    deadline: float | None = None,
) -> tuple[Certificate | None, str | None]:
    """Complete exact witnesses for every pair under a fixed template assignment.

    ``deadline`` is an absolute :func:`time.perf_counter` instant checked
    between pairs, so an exhausted budget aborts mid-assignment instead of
    finishing the whole pair list.
    """
    system = task.system
    if len(system.provenance) != len(task.pairs):
        return None, (
            "the quadratic system carries no per-pair provenance "
            "(was it produced by a Step-3 translator?)"
        )
    certified: list[PairCertificate] = []
    scheme = "putinar"
    for pair, prov in zip(task.pairs, system.provenance):
        if deadline is not None and time.perf_counter() > deadline:
            return None, "lift time budget exhausted"
        scheme = prov.scheme
        if prov.scheme == "putinar":
            pair_certificate, reason = _certify_pair_putinar(
                pair, prov, exact_s, floats, pin_denominator, escalate_basis=escalate_basis
            )
        else:
            pair_certificate, reason = _certify_pair_handelman(
                pair, prov, exact_s, floats, pin_denominator
            )
        if pair_certificate is None:
            return None, f"{pair.name}: {reason}"
        certified.append(pair_certificate)
    return (
        Certificate(
            scheme=scheme,
            assignment=dict(exact_s),
            pairs=tuple(certified),
            denominator=pin_denominator,
        ),
        None,
    )


def lift_solution(
    task: "SynthesisTask",
    assignment: Mapping[str, float],
    ladder: Sequence[int] | None = None,
    time_budget: float | None = 120.0,
) -> LiftResult:
    """Lift a numeric Step-4 assignment to an exact certificate.

    Walks the denominator ladder smallest-first; each rung snaps the template
    coefficients, deduplicates against previously tried snaps, and attempts
    the exact witness completion.  On failure the result carries the exact
    quadratic-system residuals of the finest whole-assignment snap, which the
    repair loop turns into counterexample cuts.
    """
    start = time.perf_counter()
    deadline = None if time_budget is None else start + time_budget
    rungs = tuple(ladder) if ladder is not None else DENOMINATOR_LADDER
    template_floats = _template_values(assignment)
    attempts = 0
    last_reason: str | None = None
    # Pass 1 walks the whole ladder at the translator's own witness basis
    # (cheap); pass 2 re-walks it with the escalated basis, which is an order
    # of magnitude more expensive and only pays off when the coarse basis
    # cannot express an exact witness at any snap.
    for escalate_basis in (False, True):
        seen: set[tuple] = set()
        for denominator in rungs:
            if time_budget is not None and time.perf_counter() - start > time_budget:
                last_reason = last_reason or "lift time budget exhausted"
                break
            exact_s = {
                name: Fraction(value).limit_denominator(denominator)
                for name, value in template_floats.items()
            }
            signature = tuple(sorted(exact_s.items()))
            if signature in seen:
                continue
            seen.add(signature)
            # The witness pinning is decoupled from the template snap: the
            # coarse rung keeps clean multipliers clean, the fine fallback
            # stays faithful to the solver's values (whose PSD margins the
            # role floors guarantee).
            pins = (denominator,) if denominator >= 10**6 else (denominator, 10**6)
            for pin in pins:
                attempts += 1
                certificate, reason = certify_assignment(
                    task,
                    exact_s,
                    assignment,
                    pin,
                    escalate_basis=escalate_basis,
                    deadline=deadline,
                )
                if certificate is not None:
                    return LiftResult(
                        ok=True,
                        certificate=certificate,
                        exact_assignment=exact_s,
                        denominator=denominator,
                        attempts=attempts,
                        seconds=time.perf_counter() - start,
                    )
                last_reason = reason
    snapped = rationalize(assignment, max(rungs))
    return LiftResult(
        ok=False,
        attempts=attempts,
        seconds=time.perf_counter() - start,
        reason=last_reason or "no denominator rung admitted an exact completion",
        violations=exact_violations(task.system, snapped, limit=32),
    )
