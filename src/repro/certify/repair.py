"""Counterexample-guided repair of unverifiable solutions.

When verification rejects a Step-4 solution — the exact lift finds no
rational certificate, or the sampling tier witnesses a violation — the
:func:`repair_solution` loop drives a CEGIS-style refinement instead of
silently accepting the solver's word:

1. **Harvest** violating valuations: exact residuals of the quadratic system
   at the snapped point, and concrete program states from
   :mod:`repro.semantics` trace falsification of the candidate invariant.
2. **Cut**: every reachable state ``v`` that falsifies the candidate yields
   the *sound* linear cut ``sum_j s_j * m_j(v) >= 0`` over the template
   unknowns — by Lemma 2.1 any inductive invariant must hold at ``v``, so the
   cut prunes the bad region without excluding any real solution.
3. **Re-race**: the portfolio re-solves the cut system under the remaining
   deadline with a decorrelated seed and an escalated restart budget, warm
   biased away from the rejected point.

Rounds are bounded by ``SynthesisOptions.max_repair_rounds``; each round
re-runs the caller's validation (exact lift or sampling check) and the loop
stops at the first verified solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Mapping

from repro.certify.sampling import derive_argument_sets
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.result import Invariant
from repro.polynomial.polynomial import Polynomial
from repro.semantics.interpreter import ExecutionLimits, Interpreter
from repro.semantics.scheduler import RandomScheduler
from repro.solvers.base import SolverOptions, SolverResult
from repro.solvers.portfolio import make_solver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reduction.task import SynthesisTask

#: Large prime stride decorrelating per-round solver seeds.
_SEED_STRIDE = 7919

#: Cap on the cuts injected per repair round.
_MAX_CUTS = 24


@dataclass(frozen=True)
class RepairRound:
    """What one repair round did."""

    round: int
    cuts_added: int
    solver_status: str
    feasible: bool
    validated: bool
    seconds: float


@dataclass
class RepairOutcome:
    """Final outcome of :func:`repair_solution`."""

    ok: bool
    solve_result: SolverResult | None = None
    payload: object | None = None  # whatever the validator returned for the accepted solution
    rounds: list[RepairRound] = field(default_factory=list)

    @property
    def rounds_used(self) -> int:
        return len(self.rounds)


def _instantiate(task: "SynthesisTask", assignment: Mapping[str, float]) -> Invariant:
    """The candidate invariant of a numeric assignment (uncleaned, direct)."""
    from repro.invariants.synthesis import _instantiate_invariant

    return _instantiate_invariant(task, assignment, clean=False)


#: Candidate template values below this magnitude at a reachable state are
#: treated as degenerate (a near-zero template whose positivity the solver
#: only sustained inside its float tolerance).
_DEGENERATE_THRESHOLD = 0.5


def harvest_trace_cuts(
    task: "SynthesisTask",
    assignment: Mapping[str, float],
    rng_seed: int = 0,
    max_runs: int = 8,
    max_cuts: int = _MAX_CUTS,
    max_steps: int = 2000,
    states_per_label: int = 3,
) -> list[tuple[str, Polynomial]]:
    """Template cuts from trace exploration of the candidate invariant.

    Two kinds of ``>= 0`` cuts over the template unknowns come back as
    ``(origin, polynomial)`` pairs, both obtained by substituting a reachable
    program state ``v`` into a label's template conjunct
    ``sum_j s_j * m_j(v)``:

    * **violation cuts** — the candidate fails at ``v``: requiring the value
      non-negative is sound for *any* inductive invariant (Lemma 2.1) and
      cuts off the rejected candidate;
    * **normalization cuts** — the candidate's value at ``v`` is close to
      zero (the degenerate near-zero templates whose strict positivity lives
      entirely inside the solver tolerance): requiring ``value - 1 >= 0``
      excludes them while keeping a positively-scaled copy of every genuine
      strict invariant feasible (templates scale freely per label).
    """
    invariant = _instantiate(task, assignment)
    interpreter = Interpreter(
        task.cfg,
        scheduler=RandomScheduler(seed=rng_seed),
        limits=ExecutionLimits(max_steps=max_steps),
    )
    cuts: list[tuple[str, Polynomial]] = []
    seen: set[Polynomial] = set()
    per_label: dict[object, int] = {}
    argument_sets = derive_argument_sets(
        task.cfg, task.precondition, runs=max_runs, rng_seed=rng_seed
    )

    def add(origin: str, cut: Polynomial) -> bool:
        if cut.is_zero() or cut.is_constant() or cut in seen:
            return False
        seen.add(cut)
        cuts.append((origin, cut))
        return len(cuts) >= max_cuts

    for arguments in argument_sets:
        result = interpreter.run(arguments)
        for configuration in result.trace:
            if not configuration:
                continue
            element = configuration.top()
            float_valuation = {name: float(value) for name, value in element.valuation.items()}
            if not task.precondition.holds_at(element.label, float_valuation):
                break
            entry = task.templates.entries.get(element.label)
            if entry is None:
                continue
            violated = not invariant.at(element.label).holds(float_valuation)
            if not violated and per_label.get(element.label, 0) >= states_per_label:
                continue
            exact_valuation = {
                name: Polynomial.constant(Fraction(value))
                for name, value in element.valuation.items()
            }
            for conjunct in range(entry.conjuncts):
                symbolic = entry.conjunct_polynomial(conjunct)
                valuation = {
                    name: float_valuation.get(name, float(assignment.get(name, 0.0)))
                    for name in symbolic.variables()
                }
                value = symbolic.evaluate_float(valuation)
                cut = symbolic.substitute(exact_valuation)
                if violated:
                    if add(f"violation@{element.label}", cut):
                        return cuts
                elif abs(value) < _DEGENERATE_THRESHOLD and task.options.with_witness:
                    # Normalization is only sound against *strict* invariants
                    # (which scale above any finite bound at reachable
                    # states); the non-strict Remark-6 translation admits
                    # genuinely tight invariants a >=1 cut would exclude.
                    per_label[element.label] = per_label.get(element.label, 0) + 1
                    if add(f"normalize@{element.label}", cut - Polynomial.one()):
                        return cuts
    return cuts


def _cut_system(task: "SynthesisTask", cuts: list[tuple[str, Polynomial]]) -> QuadraticSystem:
    """The task's system plus the harvested cuts (provenance preserved)."""
    system = QuadraticSystem(
        constraints=list(task.system.constraints),
        objective=task.system.objective,
        provenance=list(task.system.provenance),
    )
    for index, (origin, cut) in enumerate(cuts):
        system.add_nonnegative(cut, origin=f"repair:{origin}[{index}]")
    return system


def _escalated_options(
    base: SolverOptions | None, round_index: int, remaining: float | None
) -> SolverOptions:
    """Per-round escalation: decorrelated seed, bigger budget, tighter numerics.

    Tolerance tightens and the strict margin grows with each round: rejected
    solutions frequently owe their float feasibility to witnesses hiding
    inside the solve tolerance (``eps ~ tolerance``), and re-racing with
    ``tolerance << strict_margin`` forces genuine slack the exact lift can
    keep.
    """
    options = base if base is not None else SolverOptions()
    limit = options.time_limit
    if remaining is not None:
        limit = remaining if limit is None else min(limit, remaining)
    return replace(
        options,
        seed=options.seed + _SEED_STRIDE * round_index,
        restarts=max(options.restarts * (round_index + 1), round_index + 2),
        max_iterations=max(options.max_iterations, 200 * (round_index + 1)),
        time_limit=limit,
        tolerance=max(options.tolerance / 10**round_index, 1e-9),
        strict_margin=min(options.strict_margin * 10**round_index, 1e-2),
    )


def repair_solution(
    task: "SynthesisTask",
    assignment: Mapping[str, float],
    validate: Callable[[Mapping[str, float]], tuple[bool, object]],
    max_rounds: int = 2,
    solver_options: SolverOptions | None = None,
    strategy: str = "portfolio",
    portfolio: tuple[str, ...] = (),
    deadline_seconds: float | None = None,
    rng_seed: int = 0,
) -> RepairOutcome:
    """Drive the harvest-cut-rerace loop until a solution validates.

    ``validate`` maps a numeric assignment to ``(ok, payload)`` — the exact
    tier passes a lift closure, the sampling tier a check closure — and the
    loop returns the first payload that validates, together with the repaired
    :class:`SolverResult`.  Rounds are bounded by ``max_rounds`` and by
    ``deadline_seconds`` of wall-clock.
    """
    outcome = RepairOutcome(ok=False)
    start = time.perf_counter()
    current = dict(assignment)
    for round_index in range(1, max_rounds + 1):
        round_start = time.perf_counter()
        remaining: float | None = None
        if deadline_seconds is not None:
            remaining = deadline_seconds - (time.perf_counter() - start)
            if remaining <= 0.05:
                break
        # Round 1 re-races the untouched system under tightened numerics —
        # the most common rejection cause is float slack hiding inside the
        # solve tolerance, and counterexample cuts only make that solve
        # harder.  Later rounds inject the harvested cuts.
        cuts = (
            harvest_trace_cuts(task, current, rng_seed=rng_seed + round_index)
            if round_index > 1
            else []
        )
        system = _cut_system(task, cuts)
        options = _escalated_options(solver_options, round_index, remaining)
        solver = make_solver(strategy, options=options, portfolio=portfolio)
        result = solver.solve(system)
        validated = False
        payload: object | None = None
        if result.feasible and result.assignment is not None:
            current = dict(result.assignment)
            validated, payload = validate(current)
        outcome.rounds.append(
            RepairRound(
                round=round_index,
                cuts_added=len(cuts),
                solver_status=result.status,
                feasible=result.feasible,
                validated=validated,
                seconds=time.perf_counter() - round_start,
            )
        )
        if validated:
            outcome.ok = True
            outcome.solve_result = result
            outcome.payload = payload
            return outcome
    return outcome
