"""repro.certify — certificate-carrying results and counterexample-guided repair.

The paper's guarantee rests on Positivstellensatz witnesses, yet a numeric
Step-4 solution is only trustworthy up to solver tolerances.  This package
closes the gap, end to end:

* :mod:`repro.certify.lift` — **exact lifting**: continued-fraction
  rationalization of the numeric assignment at escalating denominators, exact
  witness completion over :class:`fractions.Fraction`, exact re-evaluation of
  the quadratic system (:func:`exact_violations`) — no float tolerances in
  any verdict;
* :mod:`repro.certify.certificate` — serializable :class:`Certificate`
  objects validated by :func:`check_certificate` through pure polynomial
  identity and exact rational PSD checks — no solver, no sampling;
* :mod:`repro.certify.repair` — a CEGIS-style :func:`repair_solution` loop
  harvesting violating valuations (exact residuals + semantics-trace
  falsification) into sound template cuts and re-racing the portfolio;
* :mod:`repro.certify.sampling` — the dynamic checking tier (absorbed from
  ``repro.invariants.checker``) with pre-condition-derived simulation
  arguments and reproducible seeding;
* :mod:`repro.certify.verify` — the engine-side orchestration behind
  ``SynthesisOptions(verify="none"|"sample"|"exact")``.

See DESIGN.md ("Certificates and repair") for the lift/check/repair dataflow
and the old→new map for ``repro.invariants.checker`` callers.
"""

from repro.certify.certificate import (
    Certificate,
    CertificateCheck,
    PairCertificate,
    SOSWitness,
    check_certificate,
)
from repro.certify.lift import (
    DENOMINATOR_LADDER,
    ExactViolation,
    LiftResult,
    certify_assignment,
    exact_violations,
    lift_solution,
    rationalize,
)
from repro.certify.linalg import is_psd, ldl_decompose, solve_linear
from repro.certify.repair import (
    RepairOutcome,
    RepairRound,
    harvest_trace_cuts,
    repair_solution,
)
from repro.certify.sampling import (
    CheckReport,
    Violation,
    check_invariant,
    derive_argument_sets,
)
from repro.certify.verify import VERIFY_MODES, VerificationOutcome, verify_solution

__all__ = [
    "Certificate",
    "CertificateCheck",
    "CheckReport",
    "DENOMINATOR_LADDER",
    "ExactViolation",
    "LiftResult",
    "PairCertificate",
    "RepairOutcome",
    "RepairRound",
    "SOSWitness",
    "VERIFY_MODES",
    "VerificationOutcome",
    "Violation",
    "certify_assignment",
    "check_certificate",
    "check_invariant",
    "derive_argument_sets",
    "exact_violations",
    "harvest_trace_cuts",
    "is_psd",
    "ldl_decompose",
    "lift_solution",
    "rationalize",
    "repair_solution",
    "solve_linear",
    "verify_solution",
]
