"""Exact rational linear algebra for certificate lifting and checking.

Two small, fully exact routines over :class:`fractions.Fraction`:

* :func:`solve_linear` — solve an (under/over-determined) linear system
  ``A x = b`` exactly, pinning the free variables to a caller-supplied guess,
  so the solution stays close to the numeric point the solver found;
* :func:`ldl_decompose` — the rational ``L D L^T`` decomposition that decides
  positive semidefiniteness of a symmetric rational matrix *exactly* (no
  square roots, no eigenvalue tolerances).

Both are deliberately dependency-free (no numpy): certificate checking must
not inherit floating-point semantics from the solver stack.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

_ZERO = Fraction(0)
_ONE = Fraction(1)


def solve_linear(
    matrix: Sequence[Sequence[Fraction]],
    rhs: Sequence[Fraction],
    guess: Sequence[Fraction],
) -> list[Fraction] | None:
    """Solve ``matrix @ x = rhs`` exactly, pinning free variables to ``guess``.

    The system is reduced to RREF over :class:`Fraction`; non-pivot columns
    are fixed at their ``guess`` values and the pivot columns solved from the
    reduced rows.  Returns ``None`` when the system is inconsistent.  The
    ``guess`` supplies both the dimension of ``x`` and the preferred values of
    the solution's free coordinates.
    """
    rows = len(matrix)
    cols = len(guess)
    augmented = [list(matrix[i]) + [rhs[i]] for i in range(rows)]
    pivots: list[tuple[int, int]] = []
    rank = 0
    for col in range(cols):
        pivot_row = None
        for r in range(rank, rows):
            if augmented[r][col]:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        augmented[rank], augmented[pivot_row] = augmented[pivot_row], augmented[rank]
        pivot = augmented[rank][col]
        if pivot != _ONE:
            augmented[rank] = [value / pivot for value in augmented[rank]]
        lead = augmented[rank]
        for r in range(rows):
            if r == rank:
                continue
            factor = augmented[r][col]
            if factor:
                row = augmented[r]
                augmented[r] = [a - factor * b for a, b in zip(row, lead)]
        pivots.append((rank, col))
        rank += 1
        if rank == rows:
            break
    for r in range(rank, rows):
        if augmented[r][cols]:
            return None
    pivot_columns = {col for _, col in pivots}
    solution = [Fraction(guess[j]) if j not in pivot_columns else _ZERO for j in range(cols)]
    for r, c in pivots:
        value = augmented[r][cols]
        row = augmented[r]
        for j in range(cols):
            if j != c and row[j] and j not in pivot_columns:
                value -= row[j] * solution[j]
        solution[c] = value
    return solution


def ldl_decompose(
    matrix: Sequence[Sequence[Fraction]],
) -> tuple[list[list[Fraction]], list[Fraction]] | None:
    """Exact ``L D L^T`` of a symmetric rational matrix; ``None`` when not PSD.

    Returns ``(L, D)`` with ``L`` unit lower-triangular and ``D`` a
    non-negative diagonal, such that ``matrix == L diag(D) L^T`` exactly.
    A zero pivot is only admissible when its entire remaining column is zero
    (the standard exact PSD criterion); a negative pivot, or a zero pivot
    with a non-zero column, certifies that the matrix is *not* PSD.
    """
    n = len(matrix)
    work = [[Fraction(matrix[i][j]) for j in range(n)] for i in range(n)]
    for i in range(n):
        for j in range(i):
            if work[i][j] != work[j][i]:
                return None
    lower = [[_ONE if i == j else _ZERO for j in range(n)] for i in range(n)]
    diagonal = [_ZERO] * n
    for k in range(n):
        pivot = work[k][k]
        if pivot < 0:
            return None
        if pivot == 0:
            if any(work[r][k] for r in range(k + 1, n)):
                return None
            continue
        diagonal[k] = pivot
        for r in range(k + 1, n):
            lower[r][k] = work[r][k] / pivot
        for r in range(k + 1, n):
            if not work[r][k]:
                continue
            factor = lower[r][k]
            for c in range(k + 1, r + 1):
                if work[c][k]:
                    update = factor * work[c][k]
                    work[r][c] -= update
                    work[c][r] = work[r][c]
    return lower, diagonal


def is_psd(matrix: Sequence[Sequence[Fraction]]) -> bool:
    """Whether a symmetric rational matrix is PSD (decided exactly)."""
    return ldl_decompose(matrix) is not None
