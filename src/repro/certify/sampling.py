"""The sampling verification tier (absorbed from ``repro.invariants.checker``).

A synthesized invariant should never be trusted just because the solver said
so.  This module re-validates a concrete invariant three ways:

* **Simulation** — execute valid runs of the program and check the invariant
  at every visited stack element (Lemma 2.1 / 2.2 say an inductive invariant
  can never be falsified this way).  When no argument sets are supplied they
  are derived automatically from the entry pre-condition's box
  (:func:`derive_argument_sets`) instead of silently skipping simulation.
* **Constraint-pair sampling** — rebuild the Step-2 constraint pairs with the
  *concrete* invariant substituted for the template and falsify the resulting
  implications on random valuations.
* **Certificate search** (optional, slower) — look for an explicit Putinar/SOS
  certificate of every concrete constraint pair via
  :func:`repro.solvers.sdp.check_putinar_certificate`.

All randomness flows from one explicit ``rng_seed`` through private
:class:`random.Random` instances, so verification runs are reproducible.
This is the ``verify="sample"`` tier of the certificate subsystem; the exact
tier lives in :mod:`repro.certify.lift` / :mod:`repro.certify.certificate`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.cfg.graph import ProgramCFG
from repro.cfg.labels import Label
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.result import Invariant
from repro.polynomial.polynomial import Polynomial
from repro.semantics.interpreter import ExecutionLimits, Interpreter
from repro.semantics.scheduler import RandomScheduler
from repro.spec.assertions import ConjunctiveAssertion
from repro.spec.preconditions import Precondition


@dataclass(frozen=True)
class _ConcreteEntry:
    """Adapter presenting a concrete assertion with the template-entry interface."""

    assertion: ConjunctiveAssertion

    def polynomials(self) -> list[Polynomial]:
        return [atom.polynomial for atom in self.assertion]


class _InvariantAsTemplates:
    """Adapter so that :func:`generate_constraint_pairs` can run on a concrete invariant."""

    def __init__(self, invariant: Invariant):
        self._invariant = invariant

    def at(self, label: Label) -> _ConcreteEntry:
        return _ConcreteEntry(self._invariant.at(label))

    def post_entry_for(self, function: str) -> _ConcreteEntry:
        return _ConcreteEntry(self._invariant.postcondition(function))

    def has_postconditions(self) -> bool:
        return bool(self._invariant.postconditions)


@dataclass
class Violation:
    """One witnessed violation: where, and the valuation that falsifies it."""

    kind: str
    location: str
    valuation: Mapping[str, float]

    def __str__(self) -> str:
        values = ", ".join(f"{k}={v:g}" for k, v in sorted(self.valuation.items()))
        return f"{self.kind} violated at {self.location} with {{{values}}}"


@dataclass
class CheckReport:
    """Aggregated outcome of all enabled checks."""

    simulation_runs: int = 0
    simulation_elements_checked: int = 0
    pair_samples: int = 0
    pairs_checked: int = 0
    certificate_pairs_checked: int = 0
    certificate_failures: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether no check produced a violation."""
        return not self.violations and not self.certificate_failures

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}: {self.simulation_runs} runs "
            f"({self.simulation_elements_checked} states), "
            f"{self.pairs_checked} constraint pairs x {self.pair_samples} samples, "
            f"{self.certificate_pairs_checked} certificates, "
            f"{len(self.violations)} violations"
        )


# ---------------------------------------------------------------------------
# Deriving simulation arguments from the pre-condition box
# ---------------------------------------------------------------------------


def _interval_from_atoms(
    assertion: ConjunctiveAssertion, parameter: str, bound: int
) -> tuple[Fraction, Fraction]:
    """The interval the entry assertion's *univariate linear* atoms admit.

    Atoms mentioning other variables (or non-linear in ``parameter``) are
    ignored — runs whose arguments violate them are invalid and skipped by the
    simulation anyway.  The result is clipped to ``[-bound, bound]``.
    """
    low = Fraction(-bound)
    high = Fraction(bound)
    for atom in assertion:
        polynomial = atom.polynomial
        if polynomial.variables() != frozenset({parameter}):
            continue
        if polynomial.degree_in(parameter) != 1:
            continue
        slope = polynomial.coefficient(_monomial_of(parameter))
        offset = polynomial.constant_term()
        if not slope:
            continue
        threshold = -offset / slope  # slope * x + offset >= 0
        if slope > 0:
            low = max(low, threshold)
        else:
            high = min(high, threshold)
    if low > high:
        return Fraction(0), Fraction(0)
    return low, high


def _monomial_of(name: str):
    from repro.polynomial.monomial import Monomial

    return Monomial.of(name)


def derive_argument_sets(
    cfg: ProgramCFG,
    precondition: Precondition,
    runs: int = 8,
    rng_seed: int = 0,
    bound: int = 10,
) -> list[dict[str, Fraction]]:
    """Simulation arguments derived from the entry pre-condition's box.

    For every parameter of the entry function, the interval admitted by the
    univariate linear atoms of the entry assertion (clipped to
    ``[-bound, bound]``) supplies both endpoints and ``rng_seed``-seeded
    integer samples, so :func:`check_invariant` can simulate meaningfully even
    when the caller passes no explicit argument sets.
    """
    main_cfg = cfg.main
    parameters = list(main_cfg.parameters)
    if not parameters:
        return [{}]
    rng = random.Random(rng_seed)
    assertion = precondition.at(main_cfg.entry)
    intervals = {name: _interval_from_atoms(assertion, name, bound) for name in parameters}
    argument_sets: list[dict[str, Fraction]] = []
    seen: set[tuple] = set()

    def add(valuation: dict[str, Fraction]) -> None:
        key = tuple(sorted((name, value) for name, value in valuation.items()))
        if key not in seen:
            seen.add(key)
            argument_sets.append(valuation)

    # Box corners first (the extremes catch monotone violations cheapest) ...
    add({name: intervals[name][0] for name in parameters})
    add({name: intervals[name][1] for name in parameters})
    # ... then seeded integer samples from the interior.
    attempts = 0
    while len(argument_sets) < runs and attempts < 8 * runs:
        attempts += 1
        valuation = {}
        for name in parameters:
            low, high = intervals[name]
            low_int, high_int = math.ceil(low), math.floor(high)
            if low_int > high_int:
                valuation[name] = low
            else:
                valuation[name] = Fraction(rng.randint(low_int, high_int))
        add(valuation)
    return argument_sets


# ---------------------------------------------------------------------------
# The three checking tiers
# ---------------------------------------------------------------------------


def _simulate(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    argument_sets: Sequence[Mapping[str, Fraction | int | float]],
    report: CheckReport,
    seed: int,
    max_steps: int,
) -> None:
    interpreter = Interpreter(
        cfg, scheduler=RandomScheduler(seed=seed), limits=ExecutionLimits(max_steps=max_steps)
    )
    for arguments in argument_sets:
        result = interpreter.run(arguments)
        report.simulation_runs += 1
        valid = True
        for configuration in result.trace:
            if not configuration:
                continue
            element = configuration.top()
            float_valuation = {name: float(value) for name, value in element.valuation.items()}
            if not precondition.holds_at(element.label, float_valuation):
                valid = False
            if not valid:
                break
            report.simulation_elements_checked += 1
            if not invariant.at(element.label).holds(float_valuation):
                report.violations.append(
                    Violation(kind="invariant", location=str(element.label), valuation=float_valuation)
                )
        if result.completed and invariant.postconditions:
            main_cfg = cfg.main
            final_elements = [c.top() for c in result.trace if len(c) == 1]
            if final_elements:
                last = final_elements[-1]
                float_valuation = {name: float(value) for name, value in last.valuation.items()}
                post = invariant.postcondition(main_cfg.name)
                if last.label.is_endpoint and not post.holds(float_valuation):
                    report.violations.append(
                        Violation(kind="postcondition", location=main_cfg.name, valuation=float_valuation)
                    )


def _sample_pairs(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    report: CheckReport,
    samples: int,
    value_range: float,
    seed: int,
) -> None:
    adapter = _InvariantAsTemplates(invariant)
    pairs = generate_constraint_pairs(cfg, precondition, adapter)  # type: ignore[arg-type]
    rng = random.Random(seed)
    report.pairs_checked = len(pairs)
    report.pair_samples = samples
    for pair in pairs:
        names = pair.relevant_program_variables()
        for _ in range(samples):
            valuation = {name: rng.uniform(-value_range, value_range) for name in names}
            if rng.random() < 0.5:
                valuation = {name: float(round(value)) for name, value in valuation.items()}
            if not pair.holds_numerically(valuation):
                report.violations.append(
                    Violation(kind="constraint-pair", location=pair.name, valuation=valuation)
                )
                break


def _check_certificates(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    report: CheckReport,
    upsilon: int,
    epsilon: float,
) -> None:
    from repro.solvers.sdp import check_putinar_certificate

    adapter = _InvariantAsTemplates(invariant)
    pairs = generate_constraint_pairs(cfg, precondition, adapter)  # type: ignore[arg-type]
    for pair in pairs:
        report.certificate_pairs_checked += 1
        outcome = check_putinar_certificate(pair, upsilon=upsilon, epsilon=epsilon)
        if not outcome.feasible:
            report.certificate_failures.append(pair.name)


def check_invariant(
    cfg: ProgramCFG,
    precondition: Precondition,
    invariant: Invariant,
    argument_sets: Sequence[Mapping[str, Fraction | int | float]] = (),
    pair_samples: int = 50,
    sample_range: float = 25.0,
    with_certificates: bool = False,
    upsilon: int = 2,
    epsilon: float = 1e-6,
    seed: int = 0,
    max_steps: int = 5000,
    rng_seed: int | None = None,
    simulation_runs: int = 8,
) -> CheckReport:
    """Run every enabled validation of ``invariant`` and return a report.

    Parameters
    ----------
    argument_sets:
        Concrete argument valuations for the entry function; each produces one
        simulated run.  Arguments violating the entry pre-condition simply
        yield invalid runs that are skipped, so callers can pass broad grids.
        When empty, ``simulation_runs`` argument sets are derived from the
        entry pre-condition's box (:func:`derive_argument_sets`) — simulation
        is never silently skipped.
    pair_samples, sample_range:
        How many random valuations to throw at each concrete constraint pair,
        and from what box.
    with_certificates:
        Also search for explicit SOS certificates (slow; use on small
        programs or selected pairs).  For the exact, solver-free certificate
        check see :func:`repro.certify.check_certificate`.
    rng_seed:
        Explicit seed of *all* randomness in this run (scheduler choices,
        derived arguments, pair-sample valuations); falls back to the legacy
        ``seed`` parameter when ``None``.  Equal seeds reproduce reports
        exactly.
    simulation_runs:
        How many argument sets to derive when ``argument_sets`` is empty.
        Pass ``0`` to disable simulation explicitly.
    """
    effective_seed = seed if rng_seed is None else rng_seed
    report = CheckReport()
    runs: Sequence[Mapping[str, Fraction | int | float]] = argument_sets
    if not runs and simulation_runs > 0:
        runs = derive_argument_sets(
            cfg, precondition, runs=simulation_runs, rng_seed=effective_seed
        )
    if runs:
        _simulate(cfg, precondition, invariant, runs, report, effective_seed, max_steps)
    if pair_samples > 0:
        _sample_pairs(
            cfg, precondition, invariant, report, pair_samples, sample_range, effective_seed + 1
        )
    if with_certificates:
        _check_certificates(cfg, precondition, invariant, report, upsilon, epsilon)
    return report
