"""Verification orchestration: the ``verify=`` knob's engine-side entry point.

:func:`verify_solution` takes a feasible Step-4 result and runs the requested
verification tier:

* ``"sample"`` — the absorbed dynamic checker (:mod:`repro.certify.sampling`):
  simulation over pre-condition-derived arguments plus constraint-pair
  sampling, seeded from ``SynthesisOptions.verify_seed``;
* ``"exact"`` — the exact lift (:mod:`repro.certify.lift`): rationalize,
  complete witnesses, and validate the resulting
  :class:`~repro.certify.certificate.Certificate` with
  :func:`~repro.certify.certificate.check_certificate` bound to the task.

A rejected solution enters the counterexample-guided
:func:`~repro.certify.repair.repair_solution` loop (bounded by
``max_repair_rounds`` and the remaining request deadline); the outcome —
verified or not, certificate, repair trail — is summarised in a JSON-ready
:class:`VerificationOutcome` that the engine attaches to the response.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Mapping

from repro.certify.certificate import Certificate, check_certificate
from repro.certify.lift import LiftResult, lift_solution
from repro.certify.repair import RepairOutcome, repair_solution
from repro.certify.sampling import CheckReport, check_invariant
from repro.solvers.base import SolverOptions, SolverResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reduction.options import SynthesisOptions
    from repro.reduction.task import SynthesisTask

#: Verification tiers of the ``SynthesisOptions.verify`` knob.
VERIFY_MODES = ("none", "sample", "exact")


@dataclass
class VerificationOutcome:
    """Everything one verification (plus repair) pass produced."""

    mode: str
    verified: bool
    certificate: Certificate | None = None
    exact_assignment: dict[str, Fraction] | None = None
    solve_result: SolverResult | None = None  # replaced by repair when it re-solved
    repaired: bool = False
    repair_rounds: int = 0
    seconds: float = 0.0
    reason: str | None = None
    lift_denominator: int | None = None
    report: CheckReport | None = None
    details: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-ready summary carried on ``SynthesisResponse.verification``."""
        payload = {
            "mode": self.mode,
            "verified": self.verified,
            "repaired": self.repaired,
            "repair_rounds": self.repair_rounds,
            "seconds": self.seconds,
            "reason": self.reason,
            "lift_denominator": self.lift_denominator,
        }
        if self.report is not None:
            payload["sample_report"] = self.report.summary()
        if self.details:
            payload["details"] = dict(self.details)
        return payload


def _instantiate_for_sampling(task: "SynthesisTask", assignment: Mapping[str, float]):
    from repro.certify.repair import _instantiate

    return _instantiate(task, assignment)


def verify_solution(
    task: "SynthesisTask",
    solve_result: SolverResult,
    options: "SynthesisOptions",
    solver_options: SolverOptions | None = None,
    deadline_seconds: float | None = None,
) -> VerificationOutcome:
    """Run the requested verification tier, repairing on rejection.

    Only meaningful for feasible weak-mode results; the caller guards on
    ``solve_result.feasible``.  The returned outcome's ``solve_result`` is
    non-``None`` exactly when a repair round replaced the original solution.
    """
    start = time.perf_counter()
    mode = options.verify
    outcome = VerificationOutcome(mode=mode, verified=False)
    assignment = dict(solve_result.assignment or {})

    if mode == "sample":

        def validate_sample(candidate: Mapping[str, float]) -> tuple[bool, object]:
            invariant = _instantiate_for_sampling(task, candidate)
            report = check_invariant(
                task.cfg,
                task.precondition,
                invariant,
                rng_seed=options.verify_seed,
            )
            return report.passed, report

        verified, report = validate_sample(assignment)
        outcome.report = report  # type: ignore[assignment]
        outcome.verified = verified
        if not verified:
            repair = _repair(
                task, assignment, validate_sample, options, solver_options, deadline_seconds, start
            )
            outcome.repair_rounds = repair.rounds_used
            if repair.ok:
                outcome.verified = True
                outcome.repaired = True
                outcome.report = repair.payload  # type: ignore[assignment]
                outcome.solve_result = repair.solve_result
            else:
                outcome.reason = f"sampling check failed: {report.summary()}"
    elif mode == "exact":

        def validate_exact(candidate: Mapping[str, float]) -> tuple[bool, object]:
            # The lift honours whatever remains of the request deadline (its
            # own default budget caps unlimited requests); an exhausted
            # deadline degrades to a near-immediate unverified outcome.
            budget = 120.0
            if deadline_seconds is not None:
                budget = max(0.05, deadline_seconds - (time.perf_counter() - start))
            lift = lift_solution(task, candidate, time_budget=budget)
            if not lift.ok or lift.certificate is None:
                return False, lift
            check = check_certificate(lift.certificate, task=task)
            if not check.ok:  # the lift itself mis-assembled; treat as unverified
                lift.ok = False
                lift.reason = f"checker rejected the lifted certificate: {check.summary()}"
                return False, lift
            return True, lift

        verified, lift = validate_exact(assignment)
        outcome.verified = verified
        if verified:
            _absorb_lift(outcome, lift)  # type: ignore[arg-type]
        else:
            outcome.reason = lift.reason  # type: ignore[union-attr]
            outcome.details["exact_violations"] = float(len(lift.violations))  # type: ignore[union-attr]
            repair = _repair(
                task, assignment, validate_exact, options, solver_options, deadline_seconds, start
            )
            outcome.repair_rounds = repair.rounds_used
            if repair.ok:
                outcome.verified = True
                outcome.repaired = True
                outcome.reason = None
                outcome.solve_result = repair.solve_result
                _absorb_lift(outcome, repair.payload)  # type: ignore[arg-type]
    outcome.seconds = time.perf_counter() - start
    return outcome


def _absorb_lift(outcome: VerificationOutcome, lift: LiftResult) -> None:
    outcome.certificate = lift.certificate
    outcome.exact_assignment = lift.exact_assignment
    outcome.lift_denominator = lift.denominator
    outcome.details["lift_attempts"] = float(lift.attempts)
    outcome.details["lift_seconds"] = lift.seconds


def _repair(
    task: "SynthesisTask",
    assignment: Mapping[str, float],
    validate,
    options: "SynthesisOptions",
    solver_options: SolverOptions | None,
    deadline_seconds: float | None,
    start: float,
) -> RepairOutcome:
    if options.max_repair_rounds <= 0:
        return RepairOutcome(ok=False)
    remaining: float | None = None
    if deadline_seconds is not None:
        remaining = max(0.0, deadline_seconds - (time.perf_counter() - start))
    # Repair is an escalation mechanism: it always re-races the portfolio
    # (the request's own `portfolio` line-up when given), because the pinned
    # strategy already produced the rejected solution.
    return repair_solution(
        task,
        assignment,
        validate,
        max_rounds=options.max_repair_rounds,
        solver_options=solver_options,
        strategy="portfolio",
        portfolio=options.portfolio,
        deadline_seconds=remaining,
        rng_seed=options.verify_seed,
    )
