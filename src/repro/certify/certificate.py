"""Machine-checkable Positivstellensatz certificates.

A :class:`Certificate` packages everything needed to *re-derive* the paper's
guarantee for one synthesized invariant without trusting the numeric solver:
the exact rational values of the template coefficients, and — per Step-2
constraint pair — the concrete implication together with its witness
polynomials (Putinar: one rational PSD Gram matrix per SOS multiplier;
Handelman: one non-negative rational scalar per assumption product) and the
positivity witness ``eps``.

:func:`check_certificate` validates a certificate by **pure polynomial
identity over** :class:`~fractions.Fraction`: it rebuilds every multiplier
from its Gram matrix (PSD decided exactly via rational ``L D L^T``), expands
the right-hand side of the paper's equation (†) and compares polynomials
coefficient-for-coefficient.  No solver is invoked and nothing is sampled, so
a passing check is a proof — modulo this checker's ~200 lines — that the
implication of every constraint pair holds.

Certificates serialise to JSON (polynomials as text, rationals as
``"p/q"`` strings) and survive the round trip bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import ReproError, SynthesisError, ValidationError
from repro.polynomial.monomial import Monomial
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reduction.task import SynthesisTask

#: Witness schemes a certificate can carry.
SCHEMES = ("putinar", "handelman")


def certificate_fingerprint(payload: Mapping) -> str:
    """The sha256 content hash of a certificate's canonical JSON form.

    This is the key the persistent store files certificates under (and the
    name responses carry in ``verification["certificate_sha"]``), so an
    auditor can re-load the exact witness a response was gated by.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fraction_to_str(value: Fraction) -> str:
    return str(value)


def _fraction_from_str(text: str) -> Fraction:
    return Fraction(str(text))


def _polynomial_to_str(polynomial: Polynomial) -> str:
    return str(polynomial)


def _polynomial_from_str(text: str) -> Polynomial:
    return parse_polynomial(text)


def _monomial_to_str(monomial: Monomial) -> str:
    return str(Polynomial.from_monomial(monomial))


def _monomial_from_str(text: str) -> Monomial:
    polynomial = parse_polynomial(text)
    terms = list(polynomial.items())
    if len(terms) != 1 or terms[0][1] != 1:
        raise SynthesisError(f"{text!r} is not a monomial")
    return terms[0][0]


@dataclass(frozen=True)
class SOSWitness:
    """One SOS multiplier ``h = y^T Q y`` as its basis and rational Gram matrix.

    PSD-ness of ``Q`` is *not* stored — the checker re-decides it exactly via
    :func:`~repro.certify.linalg.ldl_decompose`, so a tampered Gram cannot
    smuggle a negative direction past the check.
    """

    basis: tuple[Monomial, ...]
    gram: tuple[tuple[Fraction, ...], ...]

    def polynomial(self) -> Polynomial:
        """The exact expansion ``y^T Q y``."""
        result = Polynomial.zero()
        for i, row in enumerate(self.gram):
            for j, value in enumerate(row):
                if value:
                    result = result + Polynomial.from_monomial(self.basis[i] * self.basis[j], value)
        return result

    def is_psd(self) -> bool:
        """Exact PSD decision of the Gram matrix."""
        from repro.certify.linalg import ldl_decompose

        return ldl_decompose(self.gram) is not None

    def to_dict(self) -> dict:
        return {
            "basis": [_monomial_to_str(monomial) for monomial in self.basis],
            "gram": [[_fraction_to_str(value) for value in row] for row in self.gram],
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "SOSWitness":
        return SOSWitness(
            basis=tuple(_monomial_from_str(text) for text in payload["basis"]),
            gram=tuple(
                tuple(_fraction_from_str(value) for value in row) for row in payload["gram"]
            ),
        )


@dataclass(frozen=True)
class PairCertificate:
    """The certified implication of one Step-2 constraint pair.

    ``assumptions``/``conclusion`` are the pair's polynomials with the exact
    rational template coefficients substituted in (concrete, over program
    variables only).  For the Putinar scheme ``multipliers`` holds one
    :class:`SOSWitness` per assumption plus the free multiplier ``h_0`` at
    index 0; for Handelman, ``lambdas[k]`` is the non-negative coefficient of
    the assumption product ``products[k]`` (a tuple of assumption indices;
    the empty tuple is the constant product 1).
    """

    name: str
    target: str
    scheme: str
    assumptions: tuple[Polynomial, ...]
    conclusion: Polynomial
    witness: Fraction | None = None
    multipliers: tuple[SOSWitness, ...] = ()
    lambdas: tuple[Fraction, ...] = ()
    products: tuple[tuple[int, ...], ...] = ()

    # -- the exact right-hand side of equation (†) --------------------------------

    def rhs(self) -> Polynomial:
        """``eps + h_0 + sum_i h_i * g_i`` (Putinar) / the product combination (Handelman)."""
        total = Polynomial.zero()
        if self.witness is not None:
            total = total + Polynomial.constant(self.witness)
        if self.scheme == "putinar":
            for index, multiplier in enumerate(self.multipliers):
                expanded = multiplier.polynomial()
                if index == 0:
                    total = total + expanded
                else:
                    total = total + expanded * self.assumptions[index - 1]
            return total
        for coefficient, combination in zip(self.lambdas, self.products):
            if not coefficient:
                continue
            product = Polynomial.constant(coefficient)
            for assumption_index in combination:
                product = product * self.assumptions[assumption_index]
            total = total + product
        return total

    def check(self) -> str | None:
        """Validate this pair's witness; returns a failure reason or ``None``."""
        if self.scheme not in SCHEMES:
            return f"unknown scheme {self.scheme!r}"
        if self.witness is not None and self.witness <= 0:
            return f"positivity witness eps = {self.witness} is not > 0"
        if self.scheme == "putinar":
            if len(self.multipliers) != len(self.assumptions) + 1:
                return (
                    f"expected {len(self.assumptions) + 1} multipliers, "
                    f"got {len(self.multipliers)}"
                )
            for index, multiplier in enumerate(self.multipliers):
                if not multiplier.is_psd():
                    return f"Gram matrix of multiplier h_{index} is not PSD"
        else:
            if len(self.lambdas) != len(self.products):
                return "lambda/product length mismatch"
            for coefficient, combination in zip(self.lambdas, self.products):
                if coefficient < 0:
                    return f"lambda[{combination}] = {coefficient} is negative"
                if any(not 0 <= i < len(self.assumptions) for i in combination):
                    return f"product {combination} references a missing assumption"
        difference = self.conclusion - self.rhs()
        if not difference.is_zero():
            return f"polynomial identity fails with residual {difference}"
        return None

    # -- JSON ---------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "scheme": self.scheme,
            "assumptions": [_polynomial_to_str(p) for p in self.assumptions],
            "conclusion": _polynomial_to_str(self.conclusion),
            "witness": _fraction_to_str(self.witness) if self.witness is not None else None,
            "multipliers": [witness.to_dict() for witness in self.multipliers],
            "lambdas": [_fraction_to_str(value) for value in self.lambdas],
            "products": [list(combination) for combination in self.products],
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "PairCertificate":
        witness = payload.get("witness")
        return PairCertificate(
            name=str(payload.get("name", "")),
            target=str(payload.get("target", "")),
            scheme=str(payload.get("scheme", "putinar")),
            assumptions=tuple(_polynomial_from_str(p) for p in payload.get("assumptions", [])),
            conclusion=_polynomial_from_str(payload["conclusion"]),
            witness=_fraction_from_str(witness) if witness is not None else None,
            multipliers=tuple(
                SOSWitness.from_dict(entry) for entry in payload.get("multipliers", [])
            ),
            lambdas=tuple(_fraction_from_str(value) for value in payload.get("lambdas", [])),
            products=tuple(
                tuple(int(i) for i in combination) for combination in payload.get("products", [])
            ),
        )


@dataclass(frozen=True)
class CertificateCheck:
    """Outcome of :func:`check_certificate`."""

    ok: bool
    pairs_checked: int
    failures: tuple[tuple[str, str], ...] = ()  # (pair name, reason)

    def summary(self) -> str:
        status = "VALID" if self.ok else "INVALID"
        detail = "" if self.ok else f"; first failure: {self.failures[0][0]}: {self.failures[0][1]}"
        return f"{status}: {self.pairs_checked} pairs checked{detail}"


@dataclass(frozen=True)
class Certificate:
    """An exact, independently checkable witness for one synthesized invariant."""

    scheme: str
    assignment: Mapping[str, Fraction] = field(default_factory=dict)
    pairs: tuple[PairCertificate, ...] = ()
    denominator: int = 1

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "assignment": {
                name: _fraction_to_str(value) for name, value in sorted(self.assignment.items())
            },
            "pairs": [pair.to_dict() for pair in self.pairs],
            "denominator": self.denominator,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def fingerprint(self) -> str:
        """This certificate's stable content hash (see :func:`certificate_fingerprint`)."""
        return certificate_fingerprint(self.to_dict())

    @staticmethod
    def from_dict(payload: Mapping) -> "Certificate":
        """Rebuild a certificate from its JSON form.

        Malformed documents — truncated blobs that still parse, fields of the
        wrong shape, unparsable polynomial/fraction text — raise a
        :class:`~repro.errors.ValidationError`, never a bare
        ``KeyError``/``TypeError``: the persistent store's miss-and-repair
        boundary (and every other loader) catches exactly that.
        """
        if not isinstance(payload, Mapping):
            raise ValidationError("certificate document must be a JSON object")
        try:
            return Certificate(
                scheme=str(payload.get("scheme", "putinar")),
                assignment={
                    str(name): _fraction_from_str(value)
                    for name, value in (payload.get("assignment") or {}).items()
                },
                pairs=tuple(
                    PairCertificate.from_dict(entry) for entry in payload.get("pairs") or []
                ),
                denominator=int(payload.get("denominator", 1)),
            )
        except ValidationError:
            raise
        except (ReproError, TypeError, ValueError, KeyError, AttributeError, ZeroDivisionError) as exc:
            raise ValidationError(f"malformed certificate document: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Certificate":
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"certificate document is not valid JSON: {exc}") from exc
        return Certificate.from_dict(payload)


def _concretize(polynomial: Polynomial, assignment: Mapping[str, Fraction]) -> Polynomial:
    """Substitute exact rational values for every template unknown."""
    from repro.invariants.template import UNKNOWN_PREFIX

    substitution = {
        name: Polynomial.constant(assignment.get(name, Fraction(0)))
        for name in polynomial.variables()
        if name.startswith(UNKNOWN_PREFIX)
    }
    return polynomial.substitute(substitution) if substitution else polynomial


def check_certificate(
    certificate: Certificate, task: "SynthesisTask | None" = None
) -> CertificateCheck:
    """Validate a certificate by exact polynomial identity over ``Fraction``.

    Per pair: the positivity witness must be strictly positive, every Putinar
    multiplier's Gram matrix must be PSD (decided by exact rational
    ``L D L^T``), every Handelman lambda non-negative, and the paper's
    equation (†) must hold as a *polynomial identity* — the conclusion minus
    the expanded right-hand side must be the zero polynomial.  Nothing is
    sampled and no solver runs.

    When ``task`` is supplied the certificate is additionally *bound* to that
    reduction: every Step-2 constraint pair of the task must appear in the
    certificate, and its concrete assumptions/conclusion must equal the
    task's pair polynomials with ``certificate.assignment`` substituted —
    so the certificate provably certifies this program's proof obligations,
    not a look-alike set.
    """
    failures: list[tuple[str, str]] = []
    for pair in certificate.pairs:
        reason = pair.check()
        if reason is not None:
            failures.append((pair.name, reason))
    checked = len(certificate.pairs)
    if task is not None:
        by_name = {pair.name: pair for pair in certificate.pairs}
        for task_pair in task.pairs:
            certified = by_name.get(task_pair.name)
            if certified is None:
                failures.append((task_pair.name, "constraint pair missing from certificate"))
                continue
            expected_conclusion = _concretize(task_pair.conclusion, certificate.assignment)
            expected_assumptions = tuple(
                _concretize(polynomial, certificate.assignment)
                for polynomial in task_pair.assumptions
            )
            if certified.conclusion != expected_conclusion:
                failures.append(
                    (task_pair.name, "certified conclusion differs from the task's pair")
                )
            elif certified.assumptions != expected_assumptions:
                failures.append(
                    (task_pair.name, "certified assumptions differ from the task's pair")
                )
    return CertificateCheck(ok=not failures, pairs_checked=checked, failures=tuple(failures))
