"""Benchmark harness: regenerate the paper's Tables 1, 2 and 3.

Use the command line entry point::

    python -m repro.bench table2            # Table 2 (non-recursive)
    python -m repro.bench table3            # Table 3 (recursive + RL)
    python -m repro.bench table1            # Table 1 (literature summary)
    python -m repro.bench ablation          # Putinar vs Handelman vs Farkas
    python -m repro.bench all --quick       # everything, small parameter preset
    python -m repro.bench table2 --solve --workers 8   # parallel Step-4 solves

or the programmatic API in :mod:`repro.bench.runner` and
:mod:`repro.bench.tables`.  The runner is a thin measurement layer over
:class:`repro.api.Engine`, so whole tables share Step 1-3 reductions and can
fan their solves out across the engine's process pool.
"""

from repro.bench.runner import (
    Measurement,
    bench_engine,
    default_bench_solver,
    measure_benchmark,
    measure_many,
    measurement_from_response,
    request_from_benchmark,
)
from repro.bench.tables import render_measurements, render_table1, table_rows

__all__ = [
    "Measurement",
    "bench_engine",
    "default_bench_solver",
    "measure_benchmark",
    "measure_many",
    "measurement_from_response",
    "render_measurements",
    "render_table1",
    "request_from_benchmark",
    "table_rows",
]
