"""Command-line entry point: ``python -m repro.bench <command>``."""

from __future__ import annotations

import argparse
import sys

from repro.api.engine import Engine
from repro.bench.runner import Measurement, bench_engine, measure_many, quick_subset
from repro.bench.tables import render_measurements, render_strategy_summary, render_table1
from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.synthesis import build_task
from repro.solvers.farkas import can_express_target, linear_baseline_system
from repro.solvers.portfolio import parse_strategy, strategy_names
from repro.suite.registry import all_benchmarks, benchmarks_by_category, get_benchmark


def _degree(value: str) -> int | str:
    """Parse the --degree flag: a positive integer or the literal "auto"."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected a degree or 'auto', got {value!r}") from exc


def _overrides(args: argparse.Namespace) -> dict:
    overrides = parse_strategy(args.strategy)
    if args.translation:
        overrides["translation"] = args.translation
    if args.degree is not None:
        overrides["degree"] = args.degree
    if args.max_degree is not None:
        overrides["max_degree"] = args.max_degree
    if args.verify:
        overrides["verify"] = args.verify
    return overrides


def _select(names: str | None, category: str) -> list:
    benchmarks = benchmarks_by_category(category)
    if names:
        wanted = [name.strip() for name in names.split(",") if name.strip()]
        benchmarks = [get_benchmark(name) for name in wanted]
    return benchmarks


def _render(measurements: list[Measurement], title: str) -> str:
    report = render_measurements(measurements, title)
    summary = render_strategy_summary(measurements)
    if summary:
        report += "\n" + summary
    return report


def _run_table(category: str, title: str, args: argparse.Namespace, engine: Engine) -> str:
    benchmarks = _select(args.names, category)
    if args.quick:
        benchmarks = quick_subset(benchmarks)
    measurements = measure_many(
        benchmarks,
        solve=args.solve,
        quick=args.quick,
        verbose=not args.no_progress,
        engine=engine,
        option_overrides=_overrides(args),
    )
    return _render(measurements, title)


def _run_table3(args: argparse.Namespace, engine: Engine) -> str:
    benchmarks = []
    if not args.names:
        benchmarks = benchmarks_by_category("reinforcement") + benchmarks_by_category("recursive")
    else:
        benchmarks = [get_benchmark(name.strip()) for name in args.names.split(",") if name.strip()]
    if args.quick:
        benchmarks = quick_subset(benchmarks)
    measurements = measure_many(
        benchmarks,
        solve=args.solve,
        quick=args.quick,
        verbose=not args.no_progress,
        engine=engine,
        option_overrides=_overrides(args),
    )
    return _render(measurements, "Table 3 - recursive and reinforcement-learning benchmarks")


def _run_ablation(args: argparse.Namespace) -> str:
    names = args.names or "freire1,sqrt,petter"
    lines = ["## Ablation - translation scheme and linear baseline", ""]
    lines.append("| Benchmark | |S| Putinar | |S| Handelman | |S| Farkas(d=1) | linear template can express target |")
    lines.append("|---|---|---|---|---|")
    for name in names.split(","):
        benchmark = get_benchmark(name.strip())
        options = benchmark.options(upsilon=1) if args.quick else benchmark.options()
        task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
        putinar_size = task.system.size
        handelman_size = handelman_translate(task.pairs).size
        templates, farkas_system = linear_baseline_system(task.cfg, task.precondition)
        target = benchmark.target_polynomial()
        expressible = "-"
        if target is not None and benchmark.target_label is not None and benchmark.target_kind == "label":
            expressible = str(
                can_express_target(templates, target, benchmark.target_function, benchmark.target_label)
            )
        lines.append(
            f"| {benchmark.name} | {putinar_size} | {handelman_size} | {farkas_system.size} | {expressible} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables on this machine.",
    )
    parser.add_argument("command", choices=["table1", "table2", "table3", "ablation", "all"])
    parser.add_argument("--names", help="comma-separated benchmark names to restrict to")
    parser.add_argument("--quick", action="store_true", help="small parameter preset (Upsilon=1, small benchmarks)")
    parser.add_argument("--solve", action="store_true", help="also run the Step-4 solver per benchmark")
    parser.add_argument(
        "--translation",
        choices=["putinar", "handelman"],
        help="Step-3 translation scheme override (default: the paper's Putinar encoding)",
    )
    parser.add_argument(
        "--degree",
        type=_degree,
        default=None,
        help=(
            "template degree override: a fixed d, or 'auto' to escalate "
            "d = 1..max_degree and keep the minimal feasible degree (needs --solve)"
        ),
    )
    parser.add_argument(
        "--max-degree",
        type=int,
        default=None,
        help="the largest degree tried by --degree auto (default: 3)",
    )
    parser.add_argument(
        "--strategy",
        help=(
            "Step-4 strategy: one of "
            + ", ".join(strategy_names())
            + "; 'portfolio' for the default racing line-up, or a comma-separated "
            "list of strategies to race"
        ),
    )
    parser.add_argument(
        "--verify",
        choices=["none", "sample", "exact"],
        help=(
            "post-solve verification tier (needs --solve): 'sample' re-checks by "
            "simulation + pair sampling, 'exact' lifts every solution to a rational "
            "certificate validated in pure Fraction arithmetic (repairing on rejection)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan Step-4 solves out across this many worker processes (0 = sequential)",
    )
    parser.add_argument(
        "--scheduler",
        choices=["off", "on", "record-only"],
        default="off",
        help=(
            "corpus-driven portfolio scheduler (needs --solve): 'record-only' logs "
            "every solve outcome to the corpus, 'on' additionally predicts the "
            "winning strategy / starting degree from past runs (never pruning)"
        ),
    )
    parser.add_argument(
        "--corpus",
        help=(
            "path of the scheduler's solve corpus (JSONL, shared across runs; "
            "default: $REPRO_CORPUS_PATH or ~/.cache/repro/solve_corpus.jsonl)"
        ),
    )
    parser.add_argument("--no-progress", action="store_true", help="suppress per-benchmark progress lines")
    parser.add_argument("--output", help="write the rendered tables to this file as well")
    args = parser.parse_args(argv)

    sections: list[str] = []
    # One engine for the whole invocation: every table command shares its task
    # cache (and, with --workers, its process pool).
    with bench_engine(workers=args.workers, scheduler=args.scheduler, corpus=args.corpus) as engine:
        if args.command in ("table1", "all"):
            sections.append("## Table 1 - literature summary\n\n" + render_table1() + "\n")
        if args.command in ("table2", "all"):
            sections.append(_run_table("nonrecursive", "Table 2 - non-recursive benchmarks", args, engine))
        if args.command in ("table3", "all"):
            sections.append(_run_table3(args, engine))
        if args.command in ("ablation", "all"):
            sections.append(_run_ablation(args))

    report = "\n".join(sections)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
