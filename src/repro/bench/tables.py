"""Rendering of reproduced tables (plain text / markdown)."""

from __future__ import annotations

import statistics
from typing import Sequence

from repro.bench.literature import LITERATURE_SUMMARY
from repro.bench.runner import Measurement
from repro.reduction import STAGE_NAMES


def _format_runtime(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 60:
        minutes = int(seconds // 60)
        return f"{minutes}m{seconds - 60 * minutes:.1f}s"
    return f"{seconds:.2f}s"


def table_rows(measurements: Sequence[Measurement]) -> list[dict[str, str]]:
    """The reproduced rows in the paper's column layout plus paper-reported columns."""
    with_strategy = any(measurement.strategy for measurement in measurements)
    with_stages = any(measurement.stages_cached for measurement in measurements)
    with_escalation = any(measurement.escalation_attempts is not None for measurement in measurements)
    with_verification = any(measurement.verified is not None for measurement in measurements)
    rows = []
    for measurement in measurements:
        row = {
            "Benchmark": measurement.name,
            "n": str(measurement.conjuncts),
            "d": str(measurement.degree),
            "|V|": str(measurement.variables),
            "|S|": str(measurement.system_size),
            "Runtime": _format_runtime(measurement.total_seconds),
            "|S| (paper)": str(measurement.paper_system_size) if measurement.paper_system_size else "-",
            "Runtime (paper)": _format_runtime(measurement.paper_runtime_seconds),
            "Solver": measurement.solver_status or "-",
        }
        if with_strategy:
            row["Strategy"] = measurement.strategy or "-"
        if with_stages:
            # How much of the staged Step 1-3 reduction came from the cache.
            row["Stages cached"] = f"{measurement.stages_cached}/{len(STAGE_NAMES)}"
        if with_escalation:
            if measurement.escalation_attempts is None:
                row["Escalation"] = "-"
            elif measurement.final_degree is not None:
                row["Escalation"] = f"d*={measurement.final_degree} ({measurement.escalation_attempts} tried)"
            else:
                row["Escalation"] = f"none ({measurement.escalation_attempts} tried)"
        if with_verification:
            if measurement.verified is None:
                row["Verified"] = "-"
            else:
                status = "yes" if measurement.verified else "NO"
                if measurement.repair_rounds:
                    status += f" ({measurement.repair_rounds} repair)"
                row["Verified"] = status
        rows.append(row)
    return rows


def strategy_summary_rows(measurements: Sequence[Measurement]) -> list[dict[str, str]]:
    """Per-strategy win/loss and wall-clock aggregates of portfolio measurements.

    A strategy *wins* a benchmark when the portfolio returned its result
    (first feasible point); the per-strategy seconds come from the racing
    columns the portfolio records in ``Measurement.extra``.
    """
    names: list[str] = []
    for measurement in measurements:
        for key in measurement.extra:
            if key.startswith("portfolio_") and key.endswith("_seconds"):
                name = key[len("portfolio_"):-len("_seconds")]
                if name not in names:
                    names.append(name)
    if not names:
        return []

    rows = []
    for name in names:
        seconds = [
            measurement.extra[f"portfolio_{name}_seconds"]
            for measurement in measurements
            if f"portfolio_{name}_seconds" in measurement.extra
        ]
        feasible = [
            measurement.extra.get(f"portfolio_{name}_feasible", -1.0) for measurement in measurements
        ]
        wins = sum(1 for measurement in measurements if measurement.strategy == name)
        ran = sum(1 for flag in feasible if flag >= 0.0)
        solved = sum(1 for flag in feasible if flag == 1.0)
        median = statistics.median(seconds) if seconds else 0.0
        rows.append(
            {
                "Strategy": name,
                "Wins": str(wins),
                "Feasible": f"{solved}/{ran}" if ran else "0/0",
                "Median wall-clock": _format_runtime(median),
                "Total wall-clock": _format_runtime(sum(seconds)),
            }
        )
    return rows


def render_strategy_summary(measurements: Sequence[Measurement], title: str = "Portfolio strategies") -> str:
    """Render the per-strategy summary table (empty string without portfolio data)."""
    rows = strategy_summary_rows(measurements)
    if not rows:
        return ""
    return f"### {title}\n\n" + render_rows(rows) + "\n"


def render_rows(rows: Sequence[dict[str, str]], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    widths = {column: max(len(column), *(len(row.get(column, "")) for row in rows)) for column in columns}
    header = "| " + " | ".join(column.ljust(widths[column]) for column in columns) + " |"
    separator = "|" + "|".join("-" * (widths[column] + 2) for column in columns) + "|"
    lines = [header, separator]
    for row in rows:
        lines.append("| " + " | ".join(row.get(column, "").ljust(widths[column]) for column in columns) + " |")
    return "\n".join(lines)


def render_measurements(measurements: Sequence[Measurement], title: str = "") -> str:
    """Render a full reproduced table with an optional title line."""
    body = render_rows(table_rows(measurements))
    return f"## {title}\n\n{body}\n" if title else body + "\n"


def render_table1() -> str:
    """Render the Table 1 literature summary (qualitative feature matrix)."""
    columns = [
        "Approach",
        "Assignments",
        "Invariants",
        "Nondet",
        "Rec",
        "Prob",
        "Sound",
        "Complete",
        "Weak",
        "Strong",
    ]
    return render_rows(LITERATURE_SUMMARY, columns)
