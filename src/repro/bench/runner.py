"""Measurement runner: execute the reduction (and optionally a solve) per benchmark."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.invariants.synthesis import SynthesisOptions, build_task, weak_inv_synth
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.base import Benchmark


@dataclass
class Measurement:
    """One row of a reproduced table."""

    name: str
    category: str
    conjuncts: int
    degree: int
    variables: int
    constraint_pairs: int
    system_size: int
    unknowns: int
    reduction_seconds: float
    solve_seconds: float | None = None
    solver_status: str | None = None
    paper_system_size: int | None = None
    paper_runtime_seconds: float | None = None
    paper_variables: int | None = None
    notes: str = ""
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Reduction plus solve time (the paper's runtime column spans both)."""
        return self.reduction_seconds + (self.solve_seconds or 0.0)


def measure_benchmark(
    benchmark: Benchmark,
    options: SynthesisOptions | None = None,
    solve: bool = False,
    solver: Solver | None = None,
) -> Measurement:
    """Run Steps 1-3 (and optionally Step 4) on one benchmark and record a row.

    Parameters
    ----------
    benchmark:
        The suite entry to measure.
    options:
        Synthesis options; defaults to the benchmark's own table parameters.
    solve:
        Whether to also run the Step-4 solver (adds its wall-clock time and
        status to the row).  The reduction alone reproduces the structural
        columns n, d, |V| and |S|.
    solver:
        Solver to use when ``solve`` is true (default: a short-budget
        :class:`~repro.solvers.qclp.PenaltyQCLPSolver`).
    """
    options = options if options is not None else benchmark.options()

    start = time.perf_counter()
    task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
    reduction_seconds = time.perf_counter() - start

    solve_seconds: float | None = None
    solver_status: str | None = None
    if solve:
        solver = solver if solver is not None else PenaltyQCLPSolver(
            SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)
        )
        start = time.perf_counter()
        result = weak_inv_synth(benchmark.source, task=task, solver=solver)
        solve_seconds = time.perf_counter() - start
        solver_status = result.solver_status

    counts = task.system.counts()
    return Measurement(
        name=benchmark.name,
        category=benchmark.category,
        conjuncts=options.conjuncts,
        degree=options.degree,
        variables=task.cfg.variable_count(),
        constraint_pairs=len(task.pairs),
        system_size=task.system.size,
        unknowns=counts["variables"],
        reduction_seconds=reduction_seconds,
        solve_seconds=solve_seconds,
        solver_status=solver_status,
        paper_system_size=benchmark.paper.system_size if benchmark.paper else None,
        paper_runtime_seconds=benchmark.paper.runtime_seconds if benchmark.paper else None,
        paper_variables=benchmark.paper.variables if benchmark.paper else None,
        notes=benchmark.notes,
        extra={
            "template_variables": float(counts["template_variables"]),
            "equalities": float(counts["equalities"]),
            "inequalities": float(counts["inequalities"]),
        },
    )


def measure_many(
    benchmarks: Iterable[Benchmark],
    solve: bool = False,
    solver: Solver | None = None,
    quick: bool = False,
    verbose: bool = True,
) -> list[Measurement]:
    """Measure a collection of benchmarks, optionally with the quick parameter preset.

    The quick preset lowers the multiplier degree (Upsilon) to 1, which keeps
    every reduction under a few seconds; it is used by the default pytest
    benchmark run so that CI stays fast.  The full preset (``quick=False``)
    reproduces the paper's parameters.
    """
    measurements: list[Measurement] = []
    for benchmark in benchmarks:
        options = benchmark.options(upsilon=1) if quick else benchmark.options()
        if verbose:
            print(f"[bench] {benchmark.name} (d={options.degree}, n={options.conjuncts}, Y={options.upsilon}) ...")
        measurement = measure_benchmark(benchmark, options=options, solve=solve, solver=solver)
        if verbose:
            print(
                f"         |V|={measurement.variables} pairs={measurement.constraint_pairs} "
                f"|S|={measurement.system_size} reduction={measurement.reduction_seconds:.2f}s"
                + (f" solve={measurement.solve_seconds:.2f}s [{measurement.solver_status}]" if solve else "")
            )
        measurements.append(measurement)
    return measurements


def quick_subset(benchmarks: Sequence[Benchmark], limit_variables: int = 8) -> list[Benchmark]:
    """The benchmarks whose variable count keeps the reduction cheap (used by default CI runs)."""
    return [benchmark for benchmark in benchmarks if benchmark.variable_count() <= limit_variables]
