"""Measurement runner: execute the reduction (and optionally a solve) per benchmark.

Since the service-API refactor this module is a thin measurement layer on top
of :class:`repro.api.Engine`: benchmarks become typed
:class:`~repro.api.request.SynthesisRequest` values, reductions are
deduplicated through the engine's task cache, and with ``workers > 1`` the
Step-4 solves of a whole table run concurrently across the engine's process
pool while results stream back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.api.engine import Engine
from repro.api.request import SynthesisRequest
from repro.api.response import SynthesisResponse
from repro.invariants.synthesis import SynthesisOptions
from repro.pipeline.jobs import job_from_benchmark
from repro.reduction import EscalationTrace
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.base import Benchmark


@dataclass
class Measurement:
    """One row of a reproduced table."""

    name: str
    category: str
    conjuncts: int
    degree: int
    variables: int
    constraint_pairs: int
    system_size: int
    unknowns: int
    reduction_seconds: float
    solve_seconds: float | None = None
    solver_status: str | None = None
    strategy: str | None = None
    paper_system_size: int | None = None
    paper_runtime_seconds: float | None = None
    paper_variables: int | None = None
    notes: str = ""
    extra: dict[str, float] = field(default_factory=dict)
    stages_cached: int = 0
    escalation_attempts: int | None = None
    final_degree: int | None = None
    verified: bool | None = None
    repair_rounds: int | None = None

    @property
    def total_seconds(self) -> float:
        """Reduction + solve + verification time (the full cost of the row)."""
        return (
            self.reduction_seconds
            + (self.solve_seconds or 0.0)
            + self.extra.get("verify_seconds", 0.0)
        )


def bench_solver_options() -> SolverOptions:
    """The short solve budget used when measuring with ``solve=True``."""
    return SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)


def default_bench_solver() -> Solver:
    """The short-budget Step-4 solver used when measuring with ``solve=True``."""
    return PenaltyQCLPSolver(bench_solver_options())


def bench_engine(
    workers: int = 0,
    solver: Solver | None = None,
    scheduler: str = "off",
    corpus: str | None = None,
) -> Engine:
    """An engine configured like the benchmark runner uses it.

    Pass the same engine to several :func:`measure_many` calls (or table
    commands) to share its task cache and solve-dedup table between them.
    ``scheduler``/``corpus`` arm the corpus-driven portfolio scheduler
    (:mod:`repro.schedule`) exactly as on :class:`~repro.api.engine.Engine`.
    """
    return Engine(
        workers=workers,
        solver=solver,
        solver_options=bench_solver_options(),
        # Step-4-only fan-out: the runner reads in-process result extras,
        # which the whole-job wire path (executor="process") does not carry.
        executor="solve-process" if workers > 1 else "thread",
        scheduler=scheduler,
        corpus=corpus,
    )


def request_from_benchmark(
    benchmark: Benchmark,
    solve: bool = True,
    quick: bool = False,
    options: SynthesisOptions | None = None,
    **option_overrides,
) -> SynthesisRequest:
    """The typed request that measures one suite benchmark."""
    if options is None:
        job = job_from_benchmark(benchmark, quick=quick, **option_overrides)
        options = job.options
        if options.is_auto_degree and "max_degree" not in option_overrides:
            # Escalate at least up to the benchmark's own table degree —
            # recursive rows declare targets that need d=3/4, which the
            # uniform default ladder would never reach.
            options = dataclasses.replace(
                options, max_degree=max(options.max_degree, benchmark.degree)
            )
    if options.is_auto_degree and not solve:
        raise ValueError(
            'degree="auto" escalates through Step-4 solves; measure it with solve=True '
            "(bench CLI: add --solve)"
        )
    return SynthesisRequest(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        request_id=benchmark.name,
        reduce_only=not solve,
    )


def measurement_from_response(benchmark: Benchmark, response: SynthesisResponse) -> Measurement:
    """Convert one engine response into a table row."""
    if response.task is None:
        error = response.error.traceback if response.error else response.solver_status
        raise RuntimeError(f"benchmark {benchmark.name!r} failed during reduction:\n{error}")
    task = response.task
    counts = task.system.counts()
    solver_status = None
    strategy = None
    extra = {
        "template_variables": float(counts["template_variables"]),
        "equalities": float(counts["equalities"]),
        "inequalities": float(counts["inequalities"]),
    }
    if response.result is not None:
        solver_status = response.result.solver_status
        strategy = response.result.strategy
        # Per-strategy racing columns (portfolio solves record one wall-clock
        # and one feasibility flag per raced strategy).
        extra.update(
            {
                key: value
                for key, value in response.result.statistics.items()
                if key.startswith("portfolio_")
            }
        )
    elif response.error is not None:
        solver_status = "error"
    # Per-stage reduction timings and cache reuse (staged reduction).
    extra.update(
        {key: value for key, value in response.timings.items() if key.startswith("stage_")}
    )
    verified = None
    repair_rounds = None
    if response.verification is not None:
        verified = bool(response.verification.get("verified"))
        repair_rounds = int(response.verification.get("repair_rounds", 0))
        extra["verify_seconds"] = float(response.timings.get("verify_seconds", 0.0))
    escalation_attempts = None
    final_degree = None
    if response.escalation is not None:
        # Count only the rungs that actually ran (deadline-skipped entries
        # record degrees the ladder never reached).
        escalation_attempts = len(EscalationTrace.from_dict(response.escalation).degrees_tried)
        final_degree = response.escalation.get("final_degree")
    return Measurement(
        name=benchmark.name,
        category=benchmark.category,
        conjuncts=task.options.conjuncts,
        degree=task.options.degree,
        variables=task.cfg.variable_count(),
        constraint_pairs=len(task.pairs),
        system_size=task.system.size,
        unknowns=counts["variables"],
        reduction_seconds=response.timings.get("reduction_seconds", 0.0),
        solve_seconds=response.timings.get("solve_seconds"),
        solver_status=solver_status,
        strategy=strategy,
        paper_system_size=benchmark.paper.system_size if benchmark.paper else None,
        paper_runtime_seconds=benchmark.paper.runtime_seconds if benchmark.paper else None,
        paper_variables=benchmark.paper.variables if benchmark.paper else None,
        notes=benchmark.notes,
        extra=extra,
        stages_cached=int(response.timings.get("stages_from_cache", 0.0)),
        escalation_attempts=escalation_attempts,
        final_degree=final_degree,
        verified=verified,
        repair_rounds=repair_rounds,
    )


def measure_benchmark(
    benchmark: Benchmark,
    options: SynthesisOptions | None = None,
    solve: bool = False,
    solver: Solver | None = None,
) -> Measurement:
    """Run Steps 1-3 (and optionally Step 4) on one benchmark and record a row.

    Parameters
    ----------
    benchmark:
        The suite entry to measure.
    options:
        Synthesis options; defaults to the benchmark's own table parameters.
    solve:
        Whether to also run the Step-4 solver (adds its wall-clock time and
        status to the row).  The reduction alone reproduces the structural
        columns n, d, |V| and |S|.
    solver:
        Solver to use when ``solve`` is true (default: a short-budget
        :class:`~repro.solvers.qclp.PenaltyQCLPSolver`).
    """
    return measure_many([benchmark], solve=solve, solver=solver, options=options, verbose=False)[0]


def measure_many(
    benchmarks: Iterable[Benchmark],
    solve: bool = False,
    solver: Solver | None = None,
    quick: bool = False,
    verbose: bool = True,
    workers: int = 0,
    options: SynthesisOptions | None = None,
    engine: Engine | None = None,
    option_overrides: dict | None = None,
) -> list[Measurement]:
    """Measure a collection of benchmarks through the service engine.

    The quick preset lowers the multiplier degree (Upsilon) to 1, which keeps
    every reduction under a few seconds; it is used by the default pytest
    benchmark run so that CI stays fast.  The full preset (``quick=False``)
    reproduces the paper's parameters.  ``workers > 1`` fans the Step-4 solves
    out across the engine's process pool; pass an ``engine`` (see
    :func:`bench_engine`) to share its task cache between calls.

    ``option_overrides`` patches individual synthesis options per benchmark
    (e.g. ``{"translation": "handelman", "strategy": "portfolio"}``).  When no
    explicit ``solver`` is given, each request's Step-4 back-end follows its
    options' ``strategy``/``portfolio`` knobs under the short bench budget of
    :func:`bench_solver_options`.
    """
    benchmarks = list(benchmarks)
    requests = [
        request_from_benchmark(
            benchmark, solve=solve, quick=quick, options=options, **(option_overrides or {})
        )
        for benchmark in benchmarks
    ]
    owns_engine = engine is None
    if engine is None:
        engine = bench_engine(workers=workers, solver=solver)

    try:
        measurements: list[Measurement] = []
        for benchmark, request, response in zip(
            benchmarks, requests, engine.map(requests, ordered=True)
        ):
            if verbose:
                print(
                    f"[bench] {benchmark.name} (d={request.options.degree}, "
                    f"n={request.options.conjuncts}, Y={request.options.upsilon}) ..."
                )
            measurement = measurement_from_response(benchmark, response)
            if verbose:
                cached = " (cached reduction)" if response.from_cache else ""
                if not solve:
                    solve_note = ""
                elif measurement.solve_seconds is not None and response.ok:
                    solve_note = f" solve={measurement.solve_seconds:.2f}s [{measurement.solver_status}]"
                else:
                    solve_note = f" solve failed [{measurement.solver_status}]"
                print(
                    f"         |V|={measurement.variables} pairs={measurement.constraint_pairs} "
                    f"|S|={measurement.system_size} reduction={measurement.reduction_seconds:.2f}s"
                    + solve_note
                    + cached
                )
            measurements.append(measurement)
        return measurements
    finally:
        if owns_engine:
            engine.close()


def quick_subset(benchmarks: Sequence[Benchmark], limit_variables: int = 8) -> list[Benchmark]:
    """The benchmarks whose variable count keeps the reduction cheap (used by default CI runs)."""
    return [benchmark for benchmark in benchmarks if benchmark.variable_count() <= limit_variables]


__all__ = [
    "Measurement",
    "bench_engine",
    "bench_solver_options",
    "default_bench_solver",
    "job_from_benchmark",
    "measure_benchmark",
    "measure_many",
    "measurement_from_response",
    "quick_subset",
    "request_from_benchmark",
]
