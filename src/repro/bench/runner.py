"""Measurement runner: execute the reduction (and optionally a solve) per benchmark.

Since the batch-pipeline refactor this module is a thin measurement layer on
top of :class:`~repro.pipeline.SynthesisPipeline`: benchmarks become
:class:`~repro.pipeline.jobs.SynthesisJob` values, reductions are deduplicated
through the pipeline's task cache, and with ``workers > 1`` the Step-4 solves
of a whole table run concurrently across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.invariants.synthesis import SynthesisOptions
from repro.pipeline.jobs import SynthesisJob, job_from_benchmark
from repro.pipeline.pipeline import PipelineOutcome, SynthesisPipeline
from repro.solvers.base import Solver, SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.base import Benchmark


@dataclass
class Measurement:
    """One row of a reproduced table."""

    name: str
    category: str
    conjuncts: int
    degree: int
    variables: int
    constraint_pairs: int
    system_size: int
    unknowns: int
    reduction_seconds: float
    solve_seconds: float | None = None
    solver_status: str | None = None
    strategy: str | None = None
    paper_system_size: int | None = None
    paper_runtime_seconds: float | None = None
    paper_variables: int | None = None
    notes: str = ""
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Reduction plus solve time (the paper's runtime column spans both)."""
        return self.reduction_seconds + (self.solve_seconds or 0.0)


def bench_solver_options() -> SolverOptions:
    """The short solve budget used when measuring with ``solve=True``."""
    return SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)


def default_bench_solver() -> Solver:
    """The short-budget Step-4 solver used when measuring with ``solve=True``."""
    return PenaltyQCLPSolver(bench_solver_options())


def measurement_from_outcome(benchmark: Benchmark, outcome: PipelineOutcome) -> Measurement:
    """Convert one pipeline outcome into a table row."""
    if outcome.task is None:
        raise RuntimeError(
            f"benchmark {benchmark.name!r} failed during reduction:\n{outcome.error}"
        )
    task = outcome.task
    counts = task.system.counts()
    solver_status = None
    strategy = None
    extra = {
        "template_variables": float(counts["template_variables"]),
        "equalities": float(counts["equalities"]),
        "inequalities": float(counts["inequalities"]),
    }
    if outcome.result is not None:
        solver_status = outcome.result.solver_status
        strategy = outcome.result.strategy
        # Per-strategy racing columns (portfolio solves record one wall-clock
        # and one feasibility flag per raced strategy).
        extra.update(
            {
                key: value
                for key, value in outcome.result.statistics.items()
                if key.startswith("portfolio_")
            }
        )
    elif outcome.error is not None:
        solver_status = "error"
    return Measurement(
        name=benchmark.name,
        category=benchmark.category,
        conjuncts=task.options.conjuncts,
        degree=task.options.degree,
        variables=task.cfg.variable_count(),
        constraint_pairs=len(task.pairs),
        system_size=task.system.size,
        unknowns=counts["variables"],
        reduction_seconds=outcome.reduction_seconds,
        solve_seconds=outcome.solve_seconds,
        solver_status=solver_status,
        strategy=strategy,
        paper_system_size=benchmark.paper.system_size if benchmark.paper else None,
        paper_runtime_seconds=benchmark.paper.runtime_seconds if benchmark.paper else None,
        paper_variables=benchmark.paper.variables if benchmark.paper else None,
        notes=benchmark.notes,
        extra=extra,
    )


def measure_benchmark(
    benchmark: Benchmark,
    options: SynthesisOptions | None = None,
    solve: bool = False,
    solver: Solver | None = None,
) -> Measurement:
    """Run Steps 1-3 (and optionally Step 4) on one benchmark and record a row.

    Parameters
    ----------
    benchmark:
        The suite entry to measure.
    options:
        Synthesis options; defaults to the benchmark's own table parameters.
    solve:
        Whether to also run the Step-4 solver (adds its wall-clock time and
        status to the row).  The reduction alone reproduces the structural
        columns n, d, |V| and |S|.
    solver:
        Solver to use when ``solve`` is true (default: a short-budget
        :class:`~repro.solvers.qclp.PenaltyQCLPSolver`).
    """
    return measure_many([benchmark], solve=solve, solver=solver, options=options, verbose=False)[0]


def measure_many(
    benchmarks: Iterable[Benchmark],
    solve: bool = False,
    solver: Solver | None = None,
    quick: bool = False,
    verbose: bool = True,
    workers: int = 0,
    options: SynthesisOptions | None = None,
    pipeline: SynthesisPipeline | None = None,
    option_overrides: dict | None = None,
) -> list[Measurement]:
    """Measure a collection of benchmarks through the batch pipeline.

    The quick preset lowers the multiplier degree (Upsilon) to 1, which keeps
    every reduction under a few seconds; it is used by the default pytest
    benchmark run so that CI stays fast.  The full preset (``quick=False``)
    reproduces the paper's parameters.  ``workers > 1`` fans the Step-4 solves
    out across a process pool; pass a ``pipeline`` to share its task cache
    between calls.

    ``option_overrides`` patches individual synthesis options per benchmark
    (e.g. ``{"translation": "handelman", "strategy": "portfolio"}``).  When no
    explicit ``solver`` is given, each job's Step-4 back-end follows its
    options' ``strategy``/``portfolio`` knobs under the short bench budget of
    :func:`bench_solver_options`.
    """
    benchmarks = list(benchmarks)
    jobs = []
    for benchmark in benchmarks:
        if options is not None:
            jobs.append(
                SynthesisJob(
                    name=benchmark.name,
                    source=benchmark.source,
                    precondition=benchmark.precondition,
                    objective=benchmark.objective(),
                    options=options,
                )
            )
        else:
            jobs.append(job_from_benchmark(benchmark, quick=quick, **(option_overrides or {})))
    if pipeline is None:
        pipeline = SynthesisPipeline(
            solver=solver,
            workers=workers,
            solver_options=bench_solver_options(),
        )

    measurements: list[Measurement] = []
    for benchmark, job, outcome in zip(benchmarks, jobs, pipeline.stream(jobs, solve=solve)):
        if verbose:
            print(
                f"[bench] {benchmark.name} (d={job.options.degree}, n={job.options.conjuncts}, "
                f"Y={job.options.upsilon}) ..."
            )
        measurement = measurement_from_outcome(benchmark, outcome)
        if verbose:
            cached = " (cached reduction)" if outcome.from_cache else ""
            if not solve:
                solve_note = ""
            elif measurement.solve_seconds is not None:
                solve_note = f" solve={measurement.solve_seconds:.2f}s [{measurement.solver_status}]"
            else:
                solve_note = f" solve failed [{measurement.solver_status}]"
            print(
                f"         |V|={measurement.variables} pairs={measurement.constraint_pairs} "
                f"|S|={measurement.system_size} reduction={measurement.reduction_seconds:.2f}s"
                + solve_note
                + cached
            )
        measurements.append(measurement)
    return measurements


def quick_subset(benchmarks: Sequence[Benchmark], limit_variables: int = 8) -> list[Benchmark]:
    """The benchmarks whose variable count keeps the reduction cheap (used by default CI runs)."""
    return [benchmark for benchmark in benchmarks if benchmark.variable_count() <= limit_variables]


__all__ = [
    "Measurement",
    "bench_solver_options",
    "default_bench_solver",
    "job_from_benchmark",
    "measure_benchmark",
    "measure_many",
    "measurement_from_outcome",
    "quick_subset",
]
