"""Normal forms for propositional polynomial predicates.

Step 2 of the paper rewrites each branching guard into disjunctive normal
form: a disjunction of conjunctions of atomic polynomial inequalities.  Each
atomic inequality is normalised to the form ``polynomial >= 0`` (non-strict)
or ``polynomial > 0`` (strict); negation is pushed inwards with De Morgan's
laws and by flipping comparison operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SpecificationError
from repro.lang.ast_nodes import BinaryPredicate, Comparison, NegatedPredicate, Predicate
from repro.polynomial.polynomial import Polynomial


@dataclass(frozen=True)
class AtomicInequality:
    """A normalised atomic inequality ``polynomial >= 0`` or ``polynomial > 0``."""

    polynomial: Polynomial
    strict: bool = False

    def holds(self, valuation: Mapping[str, float]) -> bool:
        """Evaluate the inequality under a concrete valuation."""
        value = self.polynomial.evaluate_float(valuation)
        return value > 0 if self.strict else value >= 0

    def relaxed(self) -> "AtomicInequality":
        """The non-strict relaxation ``polynomial >= 0`` of this inequality."""
        if not self.strict:
            return self
        return AtomicInequality(polynomial=self.polynomial, strict=False)

    def negated(self) -> "AtomicInequality":
        """The normalised negation (``p >= 0`` becomes ``-p > 0`` and vice versa)."""
        return AtomicInequality(polynomial=-self.polynomial, strict=not self.strict)

    def substitute(self, mapping: Mapping[str, Polynomial]) -> "AtomicInequality":
        """Apply a substitution to the underlying polynomial."""
        return AtomicInequality(polynomial=self.polynomial.substitute(mapping), strict=self.strict)

    def __str__(self) -> str:
        op = ">" if self.strict else ">="
        return f"{self.polynomial} {op} 0"


Conjunction = tuple[AtomicInequality, ...]
DisjunctiveNormalForm = tuple[Conjunction, ...]


def normalize_comparison(comparison: Comparison, negate: bool = False) -> AtomicInequality:
    """Normalise a comparison (possibly negated) to an :class:`AtomicInequality`."""
    left, op, right = comparison.left, comparison.op, comparison.right
    if negate:
        flipped = {"<": ">=", "<=": ">", ">=": "<", ">": "<="}
        op = flipped[op]
    if op == "<":
        return AtomicInequality(polynomial=right - left, strict=True)
    if op == "<=":
        return AtomicInequality(polynomial=right - left, strict=False)
    if op == ">=":
        return AtomicInequality(polynomial=left - right, strict=False)
    if op == ">":
        return AtomicInequality(polynomial=left - right, strict=True)
    raise SpecificationError(f"unsupported comparison operator {op!r}")


def negate_predicate(predicate: Predicate) -> Predicate:
    """Structural negation of a predicate (used for else-branches and loop exits)."""
    return NegatedPredicate(operand=predicate)


def _dnf(predicate: Predicate, negate: bool) -> list[list[AtomicInequality]]:
    if isinstance(predicate, Comparison):
        return [[normalize_comparison(predicate, negate=negate)]]
    if isinstance(predicate, NegatedPredicate):
        return _dnf(predicate.operand, not negate)
    if isinstance(predicate, BinaryPredicate):
        op = predicate.op
        if negate:
            op = "or" if op == "and" else "and"
        left = _dnf(predicate.left, negate)
        right = _dnf(predicate.right, negate)
        if op == "or":
            return left + right
        # Conjunction: distribute over the disjuncts of both sides.
        combined: list[list[AtomicInequality]] = []
        for clause_left in left:
            for clause_right in right:
                combined.append(clause_left + clause_right)
        return combined
    raise SpecificationError(f"unknown predicate node {predicate!r}")


def _dedupe(clause: Iterable[AtomicInequality]) -> Conjunction:
    seen: dict[tuple[Polynomial, bool], AtomicInequality] = {}
    for atom in clause:
        key = (atom.polynomial, atom.strict)
        if key not in seen:
            seen[key] = atom
    return tuple(seen.values())


def to_dnf(predicate: Predicate, negate: bool = False) -> DisjunctiveNormalForm:
    """Disjunctive normal form of ``predicate`` (or of its negation).

    The result is a tuple of clauses; each clause is a tuple of
    :class:`AtomicInequality` whose conjunction implies the original
    predicate, and the disjunction of all clauses is equivalent to it.
    """
    clauses = _dnf(predicate, negate)
    normalised = tuple(_dedupe(clause) for clause in clauses)
    return normalised


def predicate_holds(predicate: Predicate, valuation: Mapping[str, float]) -> bool:
    """Evaluate a predicate through its DNF (reference semantics used in tests)."""
    for clause in to_dnf(predicate):
        if all(atom.holds(valuation) for atom in clause):
            return True
    return False
