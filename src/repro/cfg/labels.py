"""Program labels and their taxonomy.

The paper partitions the label set L into:

* ``La`` — assignment, skip and return statements,
* ``Lb`` — conditional branching (``if``) and while-loop guards,
* ``Lc`` — function-call statements,
* ``Ld`` — non-deterministic branching statements,
* ``Le`` — function endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LabelKind(str, Enum):
    """The five label classes of Section 2.1."""

    ASSIGN = "a"
    BRANCH = "b"
    CALL = "c"
    NONDET = "d"
    END = "e"


@dataclass(frozen=True, order=True)
class Label:
    """A program label: a function name plus a 1-based index within it.

    The index order follows the source order of statements, so for the
    running example of Figure 2 the labels coincide with the paper's
    numbering 1..9.
    """

    function: str
    index: int
    kind: LabelKind

    def __str__(self) -> str:
        return f"{self.function}:{self.index}{self.kind.value}"

    def short(self) -> str:
        """Just the numeric part, e.g. ``"3"`` — used in rendered tables."""
        return str(self.index)

    @property
    def is_endpoint(self) -> bool:
        """Whether this is the function's endpoint label (class ``Le``)."""
        return self.kind is LabelKind.END
