"""Program and per-function control-flow graphs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import Transition
from repro.errors import SemanticsError
from repro.lang.ast_nodes import Program, Statement


@dataclass(frozen=True)
class FunctionCFG:
    """The control-flow graph of a single function.

    Attributes
    ----------
    name, parameters:
        The function header.
    variables:
        The paper's set ``V^f``: every variable occurring in the function,
        plus the return variable ``ret_f`` and one frozen copy ``v_init`` per
        parameter ``v``.
    return_variable, frozen_parameters:
        The distinguished new variables of Section 2.2.
    entry, exit:
        The labels ``l^f_in`` and ``l^f_out``.
    labels:
        All labels of the function in index order (the endpoint last).
    transitions:
        All CFG edges with their payloads.
    statements:
        The statement each non-endpoint label refers to (for diagnostics).
    """

    name: str
    parameters: tuple[str, ...]
    variables: tuple[str, ...]
    return_variable: str
    frozen_parameters: Mapping[str, str]
    entry: Label
    exit: Label
    labels: tuple[Label, ...]
    transitions: tuple[Transition, ...]
    statements: Mapping[Label, Statement] = field(default_factory=dict)

    def outgoing(self, label: Label) -> list[Transition]:
        """All transitions whose source is ``label``."""
        return [transition for transition in self.transitions if transition.source == label]

    def incoming(self, label: Label) -> list[Transition]:
        """All transitions whose target is ``label``."""
        return [transition for transition in self.transitions if transition.target == label]

    def label_by_index(self, index: int) -> Label:
        """Look up a label by its 1-based index."""
        for label in self.labels:
            if label.index == index:
                return label
        raise KeyError(f"function {self.name!r} has no label with index {index}")

    def labels_of_kind(self, kind: LabelKind) -> list[Label]:
        """All labels of a given class."""
        return [label for label in self.labels if label.kind is kind]

    def statement_at(self, label: Label) -> Statement | None:
        """The statement a label refers to (``None`` for the endpoint)."""
        return self.statements.get(label)

    def __iter__(self) -> Iterator[Label]:
        return iter(self.labels)


@dataclass(frozen=True)
class ProgramCFG:
    """The control-flow graph of a whole program: one :class:`FunctionCFG` per function."""

    program: Program
    functions: Mapping[str, FunctionCFG]

    def __iter__(self) -> Iterator[FunctionCFG]:
        return iter(self.functions.values())

    def function(self, name: str) -> FunctionCFG:
        """The CFG of the function called ``name``."""
        try:
            return self.functions[name]
        except KeyError as exc:
            raise SemanticsError(f"program has no function named {name!r}") from exc

    @property
    def main(self) -> FunctionCFG:
        """The CFG of the entry-point function."""
        return self.function(self.program.main)

    def all_labels(self) -> list[Label]:
        """Every label of every function, in (function, index) order."""
        result: list[Label] = []
        for name in self.program.function_names():
            result.extend(self.functions[name].labels)
        return result

    def all_transitions(self) -> list[Transition]:
        """Every transition of every function."""
        result: list[Transition] = []
        for name in self.program.function_names():
            result.extend(self.functions[name].transitions)
        return result

    def label_count(self) -> int:
        """Total number of labels in the program."""
        return len(self.all_labels())

    def variable_count(self) -> int:
        """Number of *program* variables (the paper's ``|V|`` column).

        Frozen parameter copies and return variables are bookkeeping variables
        introduced by the analysis; the paper's tables count the program's own
        variables, so we exclude them here.
        """
        names: set[str] = set()
        for cfg in self.functions.values():
            synthetic = {cfg.return_variable, *cfg.frozen_parameters.values()}
            names.update(set(cfg.variables) - synthetic)
        return len(names)
