"""Construction of the control-flow graph from a parsed program.

Labels are assigned in source (pre-order) order, one per statement plus one
endpoint label per function, which reproduces the numbering the paper uses
for the running example (Figure 2 / Figure 3).

The paper's *Return Assumption* — every execution of a function ends with a
return statement — is enforced by appending an implicit ``return 0`` to a
function whose body does not end with a return.
"""

from __future__ import annotations

from typing import Sequence

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import CallSite, Transition, TransitionKind
from repro.lang.ast_nodes import (
    Assign,
    CallAssign,
    Function,
    IfStatement,
    NegatedPredicate,
    NondetIf,
    Program,
    Return,
    Skip,
    Statement,
    While,
)
from repro.lang.validate import frozen_parameter, return_variable
from repro.polynomial.polynomial import Polynomial


def _statement_kind(statement: Statement) -> LabelKind:
    if isinstance(statement, (Assign, Skip, Return)):
        return LabelKind.ASSIGN
    if isinstance(statement, (IfStatement, While)):
        return LabelKind.BRANCH
    if isinstance(statement, CallAssign):
        return LabelKind.CALL
    if isinstance(statement, NondetIf):
        return LabelKind.NONDET
    raise TypeError(f"unknown statement node {statement!r}")


class _FunctionBuilder:
    def __init__(self, function: Function):
        if function.body and isinstance(function.body[-1], Return):
            body = function.body
        else:
            body = (*function.body, Return(expression=Polynomial.constant(0)))
        self._function = function
        self._body = body
        self._labels: dict[int, Label] = {}
        self._statements: dict[Label, Statement] = {}
        self._transitions: list[Transition] = []
        self._counter = 0
        self._ordered_labels: list[Label] = []

    # -- label assignment (pre-order) -----------------------------------------

    def _new_label(self, kind: LabelKind) -> Label:
        self._counter += 1
        label = Label(function=self._function.name, index=self._counter, kind=kind)
        self._ordered_labels.append(label)
        return label

    def _assign_labels(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            label = self._new_label(_statement_kind(statement))
            self._labels[id(statement)] = label
            self._statements[label] = statement
            if isinstance(statement, (IfStatement, NondetIf)):
                self._assign_labels(statement.then_branch)
                self._assign_labels(statement.else_branch)
            elif isinstance(statement, While):
                self._assign_labels(statement.body)

    # -- transition wiring -----------------------------------------------------

    def _label_of(self, statement: Statement) -> Label:
        return self._labels[id(statement)]

    def _wire_block(self, statements: Sequence[Statement], successor: Label, exit_label: Label) -> None:
        for position, statement in enumerate(statements):
            if position + 1 < len(statements):
                next_label = self._label_of(statements[position + 1])
            else:
                next_label = successor
            self._wire_statement(statement, next_label, exit_label)

    def _wire_statement(self, statement: Statement, successor: Label, exit_label: Label) -> None:
        label = self._label_of(statement)
        if isinstance(statement, Skip):
            self._transitions.append(
                Transition(source=label, target=successor, kind=TransitionKind.UPDATE, update={})
            )
        elif isinstance(statement, Assign):
            self._transitions.append(
                Transition(
                    source=label,
                    target=successor,
                    kind=TransitionKind.UPDATE,
                    update={statement.variable: statement.expression},
                )
            )
        elif isinstance(statement, Return):
            self._transitions.append(
                Transition(
                    source=label,
                    target=exit_label,
                    kind=TransitionKind.UPDATE,
                    update={return_variable(self._function.name): statement.expression},
                )
            )
        elif isinstance(statement, CallAssign):
            self._transitions.append(
                Transition(
                    source=label,
                    target=successor,
                    kind=TransitionKind.CALL,
                    call=CallSite(
                        target=statement.target,
                        callee=statement.callee,
                        arguments=statement.arguments,
                    ),
                )
            )
        elif isinstance(statement, IfStatement):
            then_entry = self._label_of(statement.then_branch[0])
            else_entry = self._label_of(statement.else_branch[0])
            self._transitions.append(
                Transition(
                    source=label,
                    target=then_entry,
                    kind=TransitionKind.GUARD,
                    guard=statement.condition,
                )
            )
            self._transitions.append(
                Transition(
                    source=label,
                    target=else_entry,
                    kind=TransitionKind.GUARD,
                    guard=NegatedPredicate(operand=statement.condition),
                )
            )
            self._wire_block(statement.then_branch, successor, exit_label)
            self._wire_block(statement.else_branch, successor, exit_label)
        elif isinstance(statement, NondetIf):
            then_entry = self._label_of(statement.then_branch[0])
            else_entry = self._label_of(statement.else_branch[0])
            self._transitions.append(
                Transition(source=label, target=then_entry, kind=TransitionKind.NONDET)
            )
            self._transitions.append(
                Transition(source=label, target=else_entry, kind=TransitionKind.NONDET)
            )
            self._wire_block(statement.then_branch, successor, exit_label)
            self._wire_block(statement.else_branch, successor, exit_label)
        elif isinstance(statement, While):
            body_entry = self._label_of(statement.body[0])
            self._transitions.append(
                Transition(
                    source=label,
                    target=body_entry,
                    kind=TransitionKind.GUARD,
                    guard=statement.condition,
                )
            )
            self._transitions.append(
                Transition(
                    source=label,
                    target=successor,
                    kind=TransitionKind.GUARD,
                    guard=NegatedPredicate(operand=statement.condition),
                )
            )
            self._wire_block(statement.body, label, exit_label)
        else:
            raise TypeError(f"unknown statement node {statement!r}")

    # -- assembly ---------------------------------------------------------------

    def build(self) -> FunctionCFG:
        self._assign_labels(self._body)
        exit_label = self._new_label(LabelKind.END)
        entry_label = self._label_of(self._body[0])
        self._wire_block(self._body, exit_label, exit_label)

        frozen = {parameter: frozen_parameter(parameter) for parameter in self._function.parameters}
        names = set(self._function.local_variables())
        names.add(return_variable(self._function.name))
        names.update(frozen.values())

        return FunctionCFG(
            name=self._function.name,
            parameters=self._function.parameters,
            variables=tuple(sorted(names)),
            return_variable=return_variable(self._function.name),
            frozen_parameters=frozen,
            entry=entry_label,
            exit=exit_label,
            labels=tuple(self._ordered_labels),
            transitions=tuple(self._transitions),
            statements=dict(self._statements),
        )


def build_cfg(program: Program) -> ProgramCFG:
    """Build the :class:`~repro.cfg.graph.ProgramCFG` of a parsed program."""
    functions = {function.name: _FunctionBuilder(function).build() for function in program.functions}
    return ProgramCFG(program=program, functions=functions)
