"""CFG transitions and their payloads.

A transition ``(l, alpha, l')`` of the paper carries one of four payloads
depending on the class of its source label:

* an *update map* (assignment labels) — a finite map from variables to
  polynomials over the function's variables; unmentioned variables keep their
  value,
* a *guard predicate* (branching labels),
* a *call descriptor* (call labels, the paper's ``bottom`` payload),
* the *star marker* (non-deterministic labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.cfg.labels import Label
from repro.errors import SemanticsError
from repro.lang.ast_nodes import Predicate
from repro.polynomial.polynomial import Polynomial


class TransitionKind(str, Enum):
    """Payload classes of CFG transitions."""

    UPDATE = "update"
    GUARD = "guard"
    CALL = "call"
    NONDET = "nondet"


@dataclass(frozen=True)
class CallSite:
    """Descriptor of a function-call statement ``target := callee(arguments)``."""

    target: str
    callee: str
    arguments: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.target} := {self.callee}({', '.join(self.arguments)})"


@dataclass(frozen=True)
class Transition:
    """A single CFG edge with its payload."""

    source: Label
    target: Label
    kind: TransitionKind
    update: Mapping[str, Polynomial] | None = field(default=None)
    guard: Predicate | None = field(default=None)
    call: CallSite | None = field(default=None)

    def __post_init__(self) -> None:
        expectations = {
            TransitionKind.UPDATE: self.update is not None,
            TransitionKind.GUARD: self.guard is not None,
            TransitionKind.CALL: self.call is not None,
            TransitionKind.NONDET: True,
        }
        if not expectations[self.kind]:
            raise SemanticsError(
                f"transition {self.source} -> {self.target} of kind {self.kind.value} "
                "is missing its payload"
            )

    def apply_update(self, valuation: Mapping[str, object]) -> dict:
        """Apply the update map to a concrete valuation (identity elsewhere)."""
        if self.kind is not TransitionKind.UPDATE:
            raise SemanticsError(f"transition {self} has no update map")
        assert self.update is not None
        updated = dict(valuation)
        for variable, expression in self.update.items():
            updated[variable] = expression.evaluate(valuation)
        return updated

    def compose(self, polynomial: Polynomial) -> Polynomial:
        """The paper's ``g o alpha`` for update transitions: substitute the updates."""
        if self.kind is not TransitionKind.UPDATE:
            raise SemanticsError(f"transition {self} has no update map to compose with")
        assert self.update is not None
        return polynomial.substitute(dict(self.update))

    def describe(self) -> str:
        """Human-readable payload description (used in traces and debugging)."""
        if self.kind is TransitionKind.UPDATE:
            assert self.update is not None
            parts = ", ".join(f"{var} <- {expr}" for var, expr in sorted(self.update.items()))
            return f"[{parts}]" if parts else "[identity]"
        if self.kind is TransitionKind.GUARD:
            return f"guard({self.guard})"
        if self.kind is TransitionKind.CALL:
            return f"call({self.call})"
        return "*"

    def __str__(self) -> str:
        return f"{self.source} --{self.describe()}--> {self.target}"
