"""Control-flow graphs with the paper's label taxonomy (Section 2.2).

The CFG of a program has one vertex per statement label plus one endpoint
label per function.  Labels are partitioned into assignment labels (``La``),
branching labels (``Lb``), call labels (``Lc``), non-deterministic labels
(``Ld``) and endpoint labels (``Le``); transitions carry the update function,
guard, call descriptor or the ``*`` marker accordingly.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.dnf import AtomicInequality, DisjunctiveNormalForm, negate_predicate, to_dnf
from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import Transition, TransitionKind

__all__ = [
    "AtomicInequality",
    "DisjunctiveNormalForm",
    "FunctionCFG",
    "Label",
    "LabelKind",
    "ProgramCFG",
    "Transition",
    "TransitionKind",
    "build_cfg",
    "negate_predicate",
    "to_dnf",
]
