"""Lexer for the guarded polynomial language.

The surface syntax supports:

* identifiers (letters, digits, underscores; must start with a letter or ``_``),
* decimal number literals (``3``, ``0.5``),
* the keywords and symbols of Figure 5 plus ``and``/``or``/``not`` spellings,
* the non-determinism marker ``*`` in guard position (lexed as the ``*`` symbol;
  the parser disambiguates it from multiplication),
* comments starting with ``//`` or ``#`` and running to the end of the line.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.tokens import KEYWORDS, SYMBOLS, Token, TokenKind


def tokenize(source: str) -> list[Token]:
    """Convert program text into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]

        if char in " \t\r\n":
            advance(1)
            continue

        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                advance(1)
            continue

        if char.isdigit() or (char == "." and index + 1 < length and source[index + 1].isdigit()):
            start_line, start_column = line, column
            end = index
            seen_dot = False
            while end < length and (source[end].isdigit() or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            text = source[index:end]
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_column))
            advance(end - index)
            continue

        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_column))
            advance(end - index)
            continue

        matched = None
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                matched = symbol
                break
        if matched is not None:
            tokens.append(Token(TokenKind.SYMBOL, matched, line, column))
            advance(len(matched))
            continue

        raise ParseError(f"unexpected character {char!r}", line=line, column=column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
