"""Token definitions shared by the lexer and the parser."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(str, Enum):
    """Lexical categories of the guarded polynomial language."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "skip",
        "if",
        "then",
        "else",
        "fi",
        "while",
        "do",
        "od",
        "return",
        "and",
        "or",
        "not",
    }
)

# Multi-character symbols must come before their single-character prefixes.
SYMBOLS = (
    ":=",
    "<=",
    ">=",
    "**",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    "+",
    "-",
    "*",
    "<",
    ">",
    "=",
    "/",
    "^",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_symbol(self, text: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"
