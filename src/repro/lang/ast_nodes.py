"""Abstract syntax tree for non-deterministic recursive polynomial programs.

Arithmetic expressions are represented directly as
:class:`~repro.polynomial.polynomial.Polynomial` values (the grammar only
allows ``+``, ``-`` and ``*``, so every expression *is* a polynomial), which
keeps the rest of the pipeline free of a separate expression type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from repro.polynomial.polynomial import Polynomial

# ---------------------------------------------------------------------------
# Boolean expressions (propositional polynomial predicates)
# ---------------------------------------------------------------------------

ComparisonOp = str  # one of "<", "<=", ">=", ">"

_COMPARISON_OPS = ("<", "<=", ">=", ">")


@dataclass(frozen=True)
class Comparison:
    """An atomic comparison ``left op right`` between polynomial expressions."""

    left: Polynomial
    op: ComparisonOp
    right: Polynomial

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def holds(self, valuation) -> bool:
        """Evaluate the comparison under a valuation (used by the interpreter)."""
        difference = float((self.left - self.right).evaluate_float(valuation))
        if self.op == "<":
            return difference < 0
        if self.op == "<=":
            return difference <= 0
        if self.op == ">=":
            return difference >= 0
        return difference > 0

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class NegatedPredicate:
    """Logical negation of a predicate."""

    operand: "Predicate"

    def holds(self, valuation) -> bool:
        return not self.operand.holds(valuation)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"not ({self.operand})"


@dataclass(frozen=True)
class BinaryPredicate:
    """Conjunction or disjunction of two predicates."""

    op: str  # "and" | "or"
    left: "Predicate"
    right: "Predicate"

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError(f"unsupported boolean operator {self.op!r}")

    def holds(self, valuation) -> bool:
        if self.op == "and":
            return self.left.holds(valuation) and self.right.holds(valuation)
        return self.left.holds(valuation) or self.right.holds(valuation)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}) {self.op} ({self.right})"


Predicate = Union[Comparison, NegatedPredicate, BinaryPredicate]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Skip:
    """The ``skip`` statement."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign:
    """An assignment ``variable := expression``."""

    variable: str
    expression: Polynomial

    def __str__(self) -> str:
        return f"{self.variable} := {self.expression}"


@dataclass(frozen=True)
class CallAssign:
    """A function-call assignment ``target := callee(arguments...)``."""

    target: str
    callee: str
    arguments: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.target} := {self.callee}({', '.join(self.arguments)})"


@dataclass(frozen=True)
class Return:
    """A ``return expression`` statement."""

    expression: Polynomial

    def __str__(self) -> str:
        return f"return {self.expression}"


@dataclass(frozen=True)
class IfStatement:
    """A conditional branch guarded by a predicate."""

    condition: Predicate
    then_branch: tuple["Statement", ...]
    else_branch: tuple["Statement", ...]


@dataclass(frozen=True)
class NondetIf:
    """A non-deterministic branch (``if * then ... else ... fi``)."""

    then_branch: tuple["Statement", ...]
    else_branch: tuple["Statement", ...]


@dataclass(frozen=True)
class While:
    """A while loop guarded by a predicate."""

    condition: Predicate
    body: tuple["Statement", ...]


Statement = Union[Skip, Assign, CallAssign, Return, IfStatement, NondetIf, While]


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Function:
    """A program function: a name, parameter list and a statement body."""

    name: str
    parameters: tuple[str, ...]
    body: tuple[Statement, ...]

    def local_variables(self) -> frozenset[str]:
        """All variables appearing anywhere in the function (parameters included)."""
        names: set[str] = set(self.parameters)

        def visit(statements: Sequence[Statement]) -> None:
            for statement in statements:
                if isinstance(statement, Assign):
                    names.add(statement.variable)
                    names.update(statement.expression.variables())
                elif isinstance(statement, CallAssign):
                    names.add(statement.target)
                    names.update(statement.arguments)
                elif isinstance(statement, Return):
                    names.update(statement.expression.variables())
                elif isinstance(statement, IfStatement):
                    names.update(statement.condition.variables())
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, NondetIf):
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, While):
                    names.update(statement.condition.variables())
                    visit(statement.body)

        visit(self.body)
        return frozenset(names)

    def called_functions(self) -> frozenset[str]:
        """Names of all functions invoked by call statements in the body."""
        callees: set[str] = set()

        def visit(statements: Sequence[Statement]) -> None:
            for statement in statements:
                if isinstance(statement, CallAssign):
                    callees.add(statement.callee)
                elif isinstance(statement, IfStatement):
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, NondetIf):
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, While):
                    visit(statement.body)

        visit(self.body)
        return frozenset(callees)


@dataclass(frozen=True)
class Program:
    """A program: an ordered collection of functions.

    The first function is the entry point ``f_main`` unless ``main`` names a
    different one.
    """

    functions: tuple[Function, ...]
    main: str = field(default="")

    def __post_init__(self) -> None:
        if not self.functions:
            raise ValueError("a program must contain at least one function")
        if not self.main:
            object.__setattr__(self, "main", self.functions[0].name)

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions)

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        for candidate in self.functions:
            if candidate.name == name:
                return candidate
        raise KeyError(f"program has no function named {name!r}")

    def function_names(self) -> list[str]:
        """Names of all functions in declaration order."""
        return [function.name for function in self.functions]

    @property
    def main_function(self) -> Function:
        """The entry-point function."""
        return self.function(self.main)

    def is_recursive(self) -> bool:
        """Whether the program contains any function-call statement.

        This matches the paper's definition: a program is *simple* (non
        recursive) iff it has a single function and no call statements.
        """
        if len(self.functions) > 1:
            return True
        return bool(self.functions[0].called_functions())
