"""Pretty-printer: AST back to concrete syntax.

``parse_program(pretty_print(program))`` is structurally the identity (up to
polynomial normal forms), a property exercised by the round-trip tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.ast_nodes import (
    Assign,
    BinaryPredicate,
    CallAssign,
    Comparison,
    Function,
    IfStatement,
    NegatedPredicate,
    NondetIf,
    Predicate,
    Program,
    Return,
    Skip,
    Statement,
    While,
)

_INDENT = "    "


def format_predicate(predicate: Predicate) -> str:
    """Render a predicate in concrete syntax."""
    if isinstance(predicate, Comparison):
        return f"{predicate.left} {predicate.op} {predicate.right}"
    if isinstance(predicate, NegatedPredicate):
        return f"not ({format_predicate(predicate.operand)})"
    if isinstance(predicate, BinaryPredicate):
        return (
            f"({format_predicate(predicate.left)}) {predicate.op} "
            f"({format_predicate(predicate.right)})"
        )
    raise TypeError(f"unknown predicate node {predicate!r}")


def _format_statement(statement: Statement, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(statement, Skip):
        return [f"{pad}skip"]
    if isinstance(statement, Assign):
        return [f"{pad}{statement.variable} := {statement.expression}"]
    if isinstance(statement, CallAssign):
        arguments = ", ".join(statement.arguments)
        return [f"{pad}{statement.target} := {statement.callee}({arguments})"]
    if isinstance(statement, Return):
        return [f"{pad}return {statement.expression}"]
    if isinstance(statement, IfStatement):
        lines = [f"{pad}if {format_predicate(statement.condition)} then"]
        lines.extend(_format_block(statement.then_branch, depth + 1))
        lines.append(f"{pad}else")
        lines.extend(_format_block(statement.else_branch, depth + 1))
        lines.append(f"{pad}fi")
        return lines
    if isinstance(statement, NondetIf):
        lines = [f"{pad}if * then"]
        lines.extend(_format_block(statement.then_branch, depth + 1))
        lines.append(f"{pad}else")
        lines.extend(_format_block(statement.else_branch, depth + 1))
        lines.append(f"{pad}fi")
        return lines
    if isinstance(statement, While):
        lines = [f"{pad}while {format_predicate(statement.condition)} do"]
        lines.extend(_format_block(statement.body, depth + 1))
        lines.append(f"{pad}od")
        return lines
    raise TypeError(f"unknown statement node {statement!r}")


def _format_block(statements: Sequence[Statement], depth: int) -> list[str]:
    lines: list[str] = []
    for position, statement in enumerate(statements):
        rendered = _format_statement(statement, depth)
        if position < len(statements) - 1:
            rendered[-1] = rendered[-1] + ";"
        lines.extend(rendered)
    return lines


def format_function(function: Function) -> str:
    """Render a single function in concrete syntax."""
    header = f"{function.name}({', '.join(function.parameters)}) {{"
    body = _format_block(function.body, 1)
    return "\n".join([header, *body, "}"])


def pretty_print(program: Program) -> str:
    """Render a whole program in concrete syntax."""
    return "\n\n".join(format_function(function) for function in program.functions) + "\n"
