"""Semantic validation of parsed programs (Appendix A assumptions).

The paper assumes that:

* each function is defined exactly once,
* function headers do not contain duplicate parameters,
* every call statement passes exactly as many arguments as the callee's
  header declares,
* no variable appears on both sides of a function-call statement,
* every called function is defined somewhere in the program.

In addition we check that reserved variable names (``ret_<f>`` and the
"frozen parameter" names ``<v>_init``) are not used by the programmer, since
the invariant engine introduces them internally (Section 2.2, "New
Variables").
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError
from repro.lang.ast_nodes import (
    Assign,
    CallAssign,
    Function,
    IfStatement,
    NondetIf,
    Program,
    Return,
    Statement,
    While,
)

RETURN_VARIABLE_PREFIX = "ret_"
FROZEN_PARAMETER_SUFFIX = "_init"


def return_variable(function_name: str) -> str:
    """The name of the paper's ``ret_f`` variable for function ``f``."""
    return f"{RETURN_VARIABLE_PREFIX}{function_name}"


def frozen_parameter(parameter_name: str) -> str:
    """The name of the paper's ``v-bar`` variable for parameter ``v``."""
    return f"{parameter_name}{FROZEN_PARAMETER_SUFFIX}"


def _walk(statements: Sequence[Statement]):
    for statement in statements:
        yield statement
        if isinstance(statement, IfStatement):
            yield from _walk(statement.then_branch)
            yield from _walk(statement.else_branch)
        elif isinstance(statement, NondetIf):
            yield from _walk(statement.then_branch)
            yield from _walk(statement.else_branch)
        elif isinstance(statement, While):
            yield from _walk(statement.body)


def _check_reserved_names(function: Function) -> None:
    for name in sorted(function.local_variables()):
        if name.startswith(RETURN_VARIABLE_PREFIX):
            raise ValidationError(
                f"variable {name!r} in function {function.name!r} uses the reserved "
                f"prefix {RETURN_VARIABLE_PREFIX!r}"
            )
        if name.endswith(FROZEN_PARAMETER_SUFFIX):
            raise ValidationError(
                f"variable {name!r} in function {function.name!r} uses the reserved "
                f"suffix {FROZEN_PARAMETER_SUFFIX!r}"
            )


def _check_calls(program: Program, function: Function) -> None:
    defined = {f.name: f for f in program.functions}
    for statement in _walk(function.body):
        if not isinstance(statement, CallAssign):
            continue
        if statement.callee not in defined:
            raise ValidationError(
                f"function {function.name!r} calls undefined function {statement.callee!r}"
            )
        callee = defined[statement.callee]
        if len(statement.arguments) != len(callee.parameters):
            raise ValidationError(
                f"call to {statement.callee!r} in {function.name!r} passes "
                f"{len(statement.arguments)} arguments but the header declares "
                f"{len(callee.parameters)}"
            )
        if statement.target in statement.arguments:
            raise ValidationError(
                f"variable {statement.target!r} appears on both sides of the call to "
                f"{statement.callee!r} in {function.name!r}"
            )


def ensure_trailing_return(function: Function) -> bool:
    """Whether the last top-level statement of ``function`` is a return.

    The paper's *Return Assumption* states that every execution of a function
    ends with a return statement; the CFG builder adds an implicit
    ``return 0`` when this check fails, so validation only reports the fact.
    """
    if not function.body:
        return False
    return isinstance(function.body[-1], Return)


def validate_program(program: Program) -> None:
    """Check the Appendix A syntactic assumptions, raising :class:`ValidationError`."""
    seen: set[str] = set()
    for function in program.functions:
        if function.name in seen:
            raise ValidationError(f"function {function.name!r} is defined more than once")
        seen.add(function.name)

        if len(set(function.parameters)) != len(function.parameters):
            raise ValidationError(
                f"function {function.name!r} has duplicate parameters: {function.parameters}"
            )

        _check_reserved_names(function)
        _check_calls(program, function)

    if program.main not in seen:
        raise ValidationError(f"entry function {program.main!r} is not defined")
