"""Recursive-descent parser producing the AST of :mod:`repro.lang.ast_nodes`.

The accepted grammar is the one in Figure 5 of the paper (Appendix A), with
two ergonomic extensions that desugar into it:

* exponentiation ``e ^ k`` / ``e ** k`` with a constant integer exponent
  (repeated multiplication),
* division of an expression by a non-zero numeric constant (scaling), so the
  paper's literals such as ``0.5 * x`` can also be written ``x / 2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParseError
from repro.lang.ast_nodes import (
    Assign,
    BinaryPredicate,
    CallAssign,
    Comparison,
    Function,
    IfStatement,
    NegatedPredicate,
    NondetIf,
    Predicate,
    Program,
    Return,
    Skip,
    Statement,
    While,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.validate import validate_program
from repro.polynomial.polynomial import Polynomial


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, line=token.line, column=token.column)

    def _expect_symbol(self, text: str) -> Token:
        token = self._advance()
        if not token.is_symbol(text):
            raise self._error(f"expected {text!r} but found {token.text!r}", token)
        return token

    def _expect_keyword(self, text: str) -> Token:
        token = self._advance()
        if not token.is_keyword(text):
            raise self._error(f"expected keyword {text!r} but found {token.text!r}", token)
        return token

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected an identifier but found {token.text!r}", token)
        return token.text

    # -- program structure ----------------------------------------------------

    def parse_program(self) -> Program:
        functions = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self._parse_function())
        if not functions:
            raise ParseError("a program must contain at least one function")
        return Program(functions=tuple(functions))

    def _parse_function(self) -> Function:
        name = self._expect_ident()
        self._expect_symbol("(")
        parameters: list[str] = []
        if not self._peek().is_symbol(")"):
            parameters.append(self._expect_ident())
            while self._peek().is_symbol(","):
                self._advance()
                parameters.append(self._expect_ident())
        self._expect_symbol(")")
        self._expect_symbol("{")
        body = self._parse_statement_list(terminators=("}",))
        self._expect_symbol("}")
        return Function(name=name, parameters=tuple(parameters), body=tuple(body))

    def _parse_statement_list(self, terminators: tuple[str, ...]) -> list[Statement]:
        statements = [self._parse_statement()]
        while self._peek().is_symbol(";"):
            self._advance()
            token = self._peek()
            if token.kind is TokenKind.SYMBOL and token.text in terminators:
                break  # tolerate a trailing semicolon
            if token.kind is TokenKind.KEYWORD and token.text in terminators:
                break
            statements.append(self._parse_statement())
        return statements

    # -- statements -----------------------------------------------------------

    def _parse_statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("skip"):
            self._advance()
            return Skip()
        if token.is_keyword("return"):
            self._advance()
            return Return(expression=self._parse_expression())
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.kind is TokenKind.IDENT:
            return self._parse_assignment()
        raise self._error(f"unexpected token {token.text!r} at start of a statement", token)

    def _parse_if(self) -> Statement:
        self._expect_keyword("if")
        if self._peek().is_symbol("*"):
            self._advance()
            self._expect_keyword("then")
            then_branch = self._parse_statement_list(terminators=("else",))
            self._expect_keyword("else")
            else_branch = self._parse_statement_list(terminators=("fi",))
            self._expect_keyword("fi")
            return NondetIf(then_branch=tuple(then_branch), else_branch=tuple(else_branch))
        condition = self._parse_predicate()
        self._expect_keyword("then")
        then_branch = self._parse_statement_list(terminators=("else",))
        self._expect_keyword("else")
        else_branch = self._parse_statement_list(terminators=("fi",))
        self._expect_keyword("fi")
        return IfStatement(
            condition=condition,
            then_branch=tuple(then_branch),
            else_branch=tuple(else_branch),
        )

    def _parse_while(self) -> Statement:
        self._expect_keyword("while")
        condition = self._parse_predicate()
        self._expect_keyword("do")
        body = self._parse_statement_list(terminators=("od",))
        self._expect_keyword("od")
        return While(condition=condition, body=tuple(body))

    def _parse_assignment(self) -> Statement:
        target = self._expect_ident()
        self._expect_symbol(":=")
        if self._peek().kind is TokenKind.IDENT and self._peek(1).is_symbol("("):
            callee = self._expect_ident()
            self._expect_symbol("(")
            arguments: list[str] = []
            if not self._peek().is_symbol(")"):
                arguments.append(self._expect_ident())
                while self._peek().is_symbol(","):
                    self._advance()
                    arguments.append(self._expect_ident())
            self._expect_symbol(")")
            return CallAssign(target=target, callee=callee, arguments=tuple(arguments))
        expression = self._parse_expression()
        return Assign(variable=target, expression=expression)

    # -- predicates -----------------------------------------------------------

    def _parse_predicate(self) -> Predicate:
        return self._parse_disjunction()

    def _parse_disjunction(self) -> Predicate:
        left = self._parse_conjunction()
        while self._peek().is_keyword("or"):
            self._advance()
            right = self._parse_conjunction()
            left = BinaryPredicate(op="or", left=left, right=right)
        return left

    def _parse_conjunction(self) -> Predicate:
        left = self._parse_negation()
        while self._peek().is_keyword("and"):
            self._advance()
            right = self._parse_negation()
            left = BinaryPredicate(op="and", left=left, right=right)
        return left

    def _parse_negation(self) -> Predicate:
        if self._peek().is_keyword("not"):
            self._advance()
            return NegatedPredicate(operand=self._parse_negation())
        if self._peek().is_symbol("("):
            # Could be a parenthesised predicate or a parenthesised arithmetic
            # expression at the start of a comparison; try the predicate first.
            checkpoint = self._position
            self._advance()
            try:
                inner = self._parse_predicate()
                if self._peek().is_symbol(")"):
                    closing = self._peek(1)
                    if not (
                        closing.kind is TokenKind.SYMBOL
                        and closing.text in ("<", "<=", ">=", ">", "+", "-", "*", "^", "**")
                    ):
                        self._advance()
                        return inner
            except ParseError:
                pass
            self._position = checkpoint
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        left = self._parse_expression()
        token = self._advance()
        if token.kind is not TokenKind.SYMBOL or token.text not in ("<", "<=", ">=", ">", "="):
            raise self._error(f"expected a comparison operator but found {token.text!r}", token)
        if token.text == "=":
            raise self._error("equality guards are not in the grammar; use <= and >= conjunctions", token)
        right = self._parse_expression()
        return Comparison(left=left, op=token.text, right=right)

    # -- arithmetic expressions ------------------------------------------------

    def _parse_expression(self) -> Polynomial:
        result = self._parse_term()
        while True:
            token = self._peek()
            if token.is_symbol("+"):
                self._advance()
                result = result + self._parse_term()
            elif token.is_symbol("-"):
                self._advance()
                result = result - self._parse_term()
            else:
                return result

    def _parse_term(self) -> Polynomial:
        result = self._parse_power()
        while True:
            token = self._peek()
            if token.is_symbol("*"):
                self._advance()
                result = result * self._parse_power()
            elif token.is_symbol("/"):
                self._advance()
                divisor = self._parse_power()
                if not divisor.is_constant() or divisor.constant_value() == 0:
                    raise self._error("division is only supported by a non-zero constant")
                result = result / divisor.constant_value()
            else:
                return result

    def _parse_power(self) -> Polynomial:
        base = self._parse_atom()
        token = self._peek()
        if token.is_symbol("^") or token.is_symbol("**"):
            self._advance()
            exponent_token = self._advance()
            if exponent_token.kind is not TokenKind.NUMBER or "." in exponent_token.text:
                raise self._error("exponent must be a non-negative integer literal", exponent_token)
            return base ** int(exponent_token.text)
        return base

    def _parse_atom(self) -> Polynomial:
        token = self._advance()
        if token.is_symbol("("):
            inner = self._parse_expression()
            self._expect_symbol(")")
            return inner
        if token.is_symbol("-"):
            return -self._parse_power()
        if token.is_symbol("+"):
            return self._parse_power()
        if token.kind is TokenKind.NUMBER:
            return Polynomial.constant(Fraction(token.text))
        if token.kind is TokenKind.IDENT:
            return Polynomial.variable(token.text)
        raise self._error(f"unexpected token {token.text!r} in an arithmetic expression", token)


def parse_program(source: str, validate: bool = True) -> Program:
    """Parse program text into a :class:`~repro.lang.ast_nodes.Program`.

    When ``validate`` is true (the default) the Appendix A syntactic
    assumptions are checked and a :class:`~repro.errors.ValidationError`
    is raised on violation.
    """
    program = _Parser(tokenize(source)).parse_program()
    if validate:
        validate_program(program)
    return program
