"""Front-end for the paper's guarded polynomial language (Figure 5 grammar).

The package provides:

* :mod:`repro.lang.ast_nodes` — the abstract syntax tree,
* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` — text to AST,
* :mod:`repro.lang.validate` — the Appendix A syntactic assumptions,
* :mod:`repro.lang.pretty` — AST back to text.

The surface syntax follows the paper::

    sum(n) {
        i := 1;
        s := 0;
        while i <= n do
            if * then s := s + i else skip fi;
            i := i + 1
        od;
        return s
    }
"""

from repro.lang.ast_nodes import (
    Assign,
    BinaryPredicate,
    CallAssign,
    Comparison,
    Function,
    IfStatement,
    NegatedPredicate,
    NondetIf,
    Program,
    Return,
    Skip,
    Statement,
    While,
)
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_print
from repro.lang.validate import validate_program

__all__ = [
    "Assign",
    "BinaryPredicate",
    "CallAssign",
    "Comparison",
    "Function",
    "IfStatement",
    "NegatedPredicate",
    "NondetIf",
    "Program",
    "Return",
    "Skip",
    "Statement",
    "While",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "pretty_print",
    "validate_program",
]
