"""The corpus-driven portfolio scheduler: predict, stagger, never prune.

Given the features of an incoming request, the :class:`Scheduler` mines the
persistent :class:`~repro.schedule.corpus.SolveCorpus` with a dependency-free
distance-weighted nearest-neighbour model and emits a :class:`SchedulePlan`:

* a **strategy order** — the full portfolio line-up with the predicted winner
  moved to the front (the race is reordered and staggered, never pruned: a
  misprediction costs the grace period, after which every other strategy
  launches exactly as in the unscheduled race);
* a **stagger** — how long the deferred strategies wait before launching,
  derived from the neighbours' observed winner wall-clock (if the prediction
  is right, the primary usually finishes inside the grace period and the
  losers never burn a core);
* a **starting degree rung** for ``degree="auto"`` requests — the neighbours'
  minimal feasible degree, with the skipped lower rungs appended *after* the
  upward ladder as downward repair (see :func:`ladder_for`), so a
  misprediction still tries every degree the plain ladder would have tried.

Safety model: the scheduler reorders work whose acceptance is gated elsewhere
(exact certificates under ``verify="exact"``, the solver's own feasibility
check otherwise), so a wrong prediction can only cost time, never
correctness.  With an empty or too-small corpus the plan degrades to exactly
the unscheduled PR 2 race: line-up order, no stagger, the d = 1 ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.schedule.corpus import FEATURE_NAMES, RequestFeatures, SolveCorpus, SolveRecord

#: Distance penalty for a fingerprint mismatch (per fingerprint): dominates
#: the numeric feature distance, so an exact program/reduction match is
#: always preferred over a merely similar-shaped stranger.
_MISMATCH_PENALTY = 0.25

#: Weight boost for rows whose result carried an exact certificate.
_VERIFIED_BOOST = 2.0


@dataclass(frozen=True)
class SchedulePlan:
    """What the scheduler decided for one request.

    ``strategy_order`` always contains the *entire* requested line-up —
    scheduling reorders and staggers, it never prunes.  ``primary is None``
    marks a cold start (the plan is exactly the unscheduled race).
    """

    strategy_order: tuple[str, ...]
    primary: str | None = None
    stagger_seconds: float = 0.0
    start_degree: int | None = None
    confidence: float = 0.0
    neighbors: int = 0
    source: str = "cold"  # "cold" | "fingerprint" | "knn"

    @property
    def predicted(self) -> bool:
        return self.primary is not None

    def to_dict(self) -> dict:
        return {
            "strategy_order": list(self.strategy_order),
            "primary": self.primary,
            "stagger_seconds": self.stagger_seconds,
            "start_degree": self.start_degree,
            "confidence": self.confidence,
            "neighbors": self.neighbors,
            "source": self.source,
        }


def ladder_for(start: int, max_degree: int) -> list[int]:
    """The escalation ladder from a predicted starting rung.

    ``[start, start+1, ..., max_degree]`` followed by the skipped rungs
    ``[start-1, ..., 1]`` as downward repair: if the predicted rung (and
    everything above it) fails where a lower degree would have been tried by
    the plain d = 1 ladder, the lower degrees still run — prediction changes
    the order of attempts, never the set.
    """
    start = max(1, min(int(start), max_degree))
    return list(range(start, max_degree + 1)) + list(range(start - 1, 0, -1))


class Scheduler:
    """Distance-weighted nearest-neighbour planning over a solve corpus.

    Deliberately dependency-free (no sklearn): the corpus is small (one row
    per solve), features are a dozen floats, and a weighted k-NN vote over
    normalised L1 distances — with fingerprint matches acting as a decision
    rule that short-circuits to the recorded outcome — is both transparent
    and fast enough to run on every request.
    """

    def __init__(
        self,
        corpus: SolveCorpus,
        k: int = 5,
        min_rows: int = 1,
        stagger_margin: float = 4.0,
        min_stagger: float = 0.02,
        max_stagger: float = 2.0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.corpus = corpus
        self.k = k
        self.min_rows = min_rows
        self.stagger_margin = stagger_margin
        self.min_stagger = min_stagger
        self.max_stagger = max_stagger

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        features: RequestFeatures,
        line_up: Sequence[str],
        max_degree: int | None = None,
    ) -> SchedulePlan:
        """The schedule for one request (cold plan when the corpus is thin).

        ``line_up`` is the strategy race order the request would run
        unscheduled; the cold-start plan returns it verbatim.
        """
        line_up = tuple(line_up)
        cold = SchedulePlan(strategy_order=line_up)
        rows = [row for row in self.corpus.rows() if row.feasible and row.strategy]
        if len(rows) < self.min_rows:
            return cold
        neighbors = self._nearest(features, rows)
        if not neighbors:
            return cold
        primary, confidence = self._vote_strategy(neighbors, line_up)
        start_degree = self._vote_degree(neighbors, max_degree)
        if primary is None and start_degree is None:
            return cold
        order = line_up
        stagger = 0.0
        if primary is not None:
            order = (primary, *[name for name in line_up if name != primary])
            stagger = self._stagger_for(neighbors, primary)
        exact = any(row.features.reduction_sha == features.reduction_sha for _, row in neighbors)
        return SchedulePlan(
            strategy_order=order,
            primary=primary,
            stagger_seconds=stagger,
            start_degree=start_degree,
            confidence=confidence,
            neighbors=len(neighbors),
            source="fingerprint" if exact else "knn",
        )

    # -- model internals ---------------------------------------------------------

    def _nearest(
        self, features: RequestFeatures, rows: list[SolveRecord]
    ) -> list[tuple[float, SolveRecord]]:
        """The k nearest rows as ``(weight, row)`` pairs, heaviest first."""
        spans = self._spans(rows)
        query = features.vector()
        scored: list[tuple[float, int, SolveRecord]] = []
        for order, row in enumerate(rows):
            vector = row.features.vector()
            numeric = sum(
                abs(a - b) / span for a, b, span in zip(query, vector, spans)
            ) / len(FEATURE_NAMES)
            distance = numeric
            if row.features.reduction_sha != features.reduction_sha:
                distance += _MISMATCH_PENALTY
            if row.features.program_sha != features.program_sha:
                distance += _MISMATCH_PENALTY
            weight = 1.0 / (distance + 1e-6)
            if row.verified:
                weight *= _VERIFIED_BOOST
            scored.append((weight, order, row))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [(weight, row) for weight, _, row in scored[: self.k]]

    @staticmethod
    def _spans(rows: list[SolveRecord]) -> list[float]:
        """Per-dimension normalisation spans (max - min, floored at 1)."""
        vectors = [row.features.vector() for row in rows]
        spans = []
        for dim in range(len(FEATURE_NAMES)):
            values = [vector[dim] for vector in vectors]
            spans.append(max(max(values) - min(values), 1.0))
        return spans

    @staticmethod
    def _vote_strategy(
        neighbors: list[tuple[float, SolveRecord]], line_up: tuple[str, ...]
    ) -> tuple[str | None, float]:
        """Weighted vote over the neighbours' winning strategies."""
        votes: dict[str, float] = {}
        total = 0.0
        for weight, row in neighbors:
            if row.strategy not in line_up:
                continue  # a winner the caller is not racing cannot lead
            votes[row.strategy] = votes.get(row.strategy, 0.0) + weight
            total += weight
        if not votes or total <= 0.0:
            return None, 0.0
        primary = max(votes, key=lambda name: votes[name])
        return primary, votes[primary] / total

    @staticmethod
    def _vote_degree(
        neighbors: list[tuple[float, SolveRecord]], max_degree: int | None
    ) -> int | None:
        """Weighted vote over the neighbours' minimal feasible degrees."""
        votes: dict[int, float] = {}
        for weight, row in neighbors:
            degree = row.final_degree if row.final_degree is not None else row.degree
            if degree and degree > 0:
                votes[degree] = votes.get(degree, 0.0) + weight
        if not votes:
            return None
        start = max(votes, key=lambda degree: votes[degree])
        if max_degree is not None:
            start = min(start, max_degree)
        return max(1, start)

    def _stagger_for(self, neighbors: list[tuple[float, SolveRecord]], primary: str) -> float:
        """The grace period before the deferred strategies launch.

        A weighted mean of the neighbours' observed wall-clock for the
        predicted primary, scaled by the safety margin: long enough that a
        correct prediction finishes alone, short enough that a misprediction
        costs little (and always clamped, so a pathological corpus row cannot
        postpone the race indefinitely).
        """
        total_weight = 0.0
        total_seconds = 0.0
        for weight, row in neighbors:
            seconds = row.strategy_seconds.get(primary)
            if seconds is None and row.strategy == primary:
                seconds = row.solve_seconds
            if seconds is None or seconds <= 0.0:
                continue
            total_weight += weight
            total_seconds += weight * seconds
        if total_weight <= 0.0:
            return self.min_stagger
        predicted = total_seconds / total_weight
        return min(max(self.stagger_margin * predicted, self.min_stagger), self.max_stagger)
