"""Corpus-driven portfolio scheduling (predict the winner, never prune).

The :class:`~repro.schedule.corpus.SolveCorpus` persists one row per
completed Step-4 solve (request features + outcome, keyed by stable content
fingerprints); the :class:`~repro.schedule.scheduler.Scheduler` mines it with
a dependency-free nearest-neighbour model to emit
:class:`~repro.schedule.scheduler.SchedulePlan` values — a reordered,
staggered strategy race and a predicted starting degree rung.  The
:class:`~repro.api.engine.Engine` drives both through its
``scheduler="off"|"on"|"record-only"`` knob.
"""

from repro.schedule.corpus import (
    CORPUS_SCHEMA_VERSION,
    FEATURE_NAMES,
    RequestFeatures,
    SolveCorpus,
    SolveRecord,
    default_corpus_path,
    stable_fingerprints,
)
from repro.schedule.scheduler import SchedulePlan, Scheduler, ladder_for

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "FEATURE_NAMES",
    "RequestFeatures",
    "SchedulePlan",
    "Scheduler",
    "SolveCorpus",
    "SolveRecord",
    "default_corpus_path",
    "ladder_for",
    "stable_fingerprints",
]
