"""The persistent solve corpus: one JSONL row per completed Step-4 solve.

Every completed solve the engine executes with ``scheduler="on"`` or
``"record-only"`` appends one :class:`SolveRecord` to a :class:`SolveCorpus`:
the request's features (program size, template degree, scheme knobs, the
reduction's pair/system counts), stable content fingerprints of the program
and its reduction, and the outcome (winning strategy, per-strategy wall-clock
including losers and cancellations, escalation ladder, repair rounds,
verified flag).  The corpus is what the
:class:`~repro.schedule.scheduler.Scheduler` mines to pre-rank strategies and
pick a starting degree rung — recorded *after* verification, so rows reflect
the certificate-gated result, never a rejected solution the repair loop later
replaced.

Storage is an append-only JSONL file written to be process-safe without any
coordination beyond POSIX append semantics: each row is serialised to a
single line and written with **one** ``os.write`` on an ``O_APPEND`` file
descriptor, so concurrent writers (engine worker processes, parallel bench
runs) interleave whole lines, never bytes.  Readers tolerate torn tails and
foreign schema versions by skipping undecodable lines — a corrupt row costs
one training example, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

#: Bump when a row's JSON layout changes incompatibly; readers skip rows
#: stamped with a different version instead of guessing at their fields.
CORPUS_SCHEMA_VERSION = 1

#: Environment override for :func:`default_corpus_path`.
CORPUS_PATH_ENV = "REPRO_CORPUS_PATH"


def default_corpus_path() -> str:
    """Where an engine stores its corpus when the caller names no path.

    ``$REPRO_CORPUS_PATH`` when set, else a per-user cache location —
    corpora are meant to outlive processes, so a tmpdir would defeat them.
    """
    override = os.environ.get(CORPUS_PATH_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "solve_corpus.jsonl")


def stable_fingerprints(
    source: str,
    precondition_text: str,
    scheme_knobs: tuple,
    objective_text: str,
) -> tuple[str, str]:
    """``(program_sha, reduction_sha)`` — content hashes stable across processes.

    The in-memory stage fingerprints of :mod:`repro.reduction.plan` identify
    :class:`~repro.spec.preconditions.Precondition` objects by ``id()`` and
    cannot be persisted; the corpus instead hashes the canonical *textual*
    rendering of every input.  ``reduction_sha`` deliberately excludes the
    template degree, so the rungs of a ``degree="auto"`` ladder and a later
    fixed-degree request over the same program all match each other — the
    degree itself travels as a feature.
    """
    program_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    reduction_payload = json.dumps(
        [source, precondition_text, list(scheme_knobs), objective_text], sort_keys=True
    )
    reduction_sha = hashlib.sha256(reduction_payload.encode("utf-8")).hexdigest()[:16]
    return program_sha, reduction_sha


#: Ordered numeric feature dimensions (the scheduler's distance space).
FEATURE_NAMES = (
    "program_chars",
    "program_lines",
    "degree",
    "conjuncts",
    "upsilon",
    "scheme",
    "bounded",
    "strict",
    "encode_sos",
    "pairs",
    "template_coefficients",
    "system_size",
)


@dataclass(frozen=True)
class RequestFeatures:
    """The feature vector of one synthesis request (plus its fingerprints).

    ``pairs``/``template_coefficients``/``system_size`` are only known after
    the Step 1-3 reduction; pre-reduction extractions (the degree predictor
    runs before any rung is reduced) leave them at 0 and rely on the
    fingerprints plus the program-level features.
    """

    program_sha: str
    reduction_sha: str
    program_chars: float = 0.0
    program_lines: float = 0.0
    degree: float = 0.0  # -1.0 encodes degree="auto" at request level
    conjuncts: float = 1.0
    upsilon: float = 1.0
    scheme: float = 0.0  # 0 = putinar, 1 = handelman
    bounded: float = 0.0
    strict: float = 1.0  # with_witness
    encode_sos: float = 1.0
    pairs: float = 0.0
    template_coefficients: float = 0.0
    system_size: float = 0.0

    def vector(self) -> tuple[float, ...]:
        """The numeric dimensions, in :data:`FEATURE_NAMES` order."""
        return tuple(float(getattr(self, name)) for name in FEATURE_NAMES)

    def with_reduction(
        self, pairs: float, template_coefficients: float, system_size: float
    ) -> "RequestFeatures":
        """A copy enriched with the post-reduction size features."""
        return replace(
            self,
            pairs=float(pairs),
            template_coefficients=float(template_coefficients),
            system_size=float(system_size),
        )

    def to_dict(self) -> dict:
        payload = {name: float(getattr(self, name)) for name in FEATURE_NAMES}
        payload["program_sha"] = self.program_sha
        payload["reduction_sha"] = self.reduction_sha
        return payload

    @staticmethod
    def from_dict(payload: Mapping) -> "RequestFeatures":
        numeric = {
            name: float(payload.get(name, 0.0))
            for name in FEATURE_NAMES
            if payload.get(name) is not None
        }
        return RequestFeatures(
            program_sha=str(payload.get("program_sha", "")),
            reduction_sha=str(payload.get("reduction_sha", "")),
            **numeric,
        )


@dataclass(frozen=True)
class SolveRecord:
    """One corpus row: the features and outcome of one completed solve.

    ``strategy_seconds`` maps every raced strategy — winners, losers and
    cancelled entries alike — to its observed wall-clock, so the scheduler can
    estimate how long the predicted primary needs before the deferred rest of
    the line-up should launch.
    """

    features: RequestFeatures
    strategy: str | None  # the winning strategy (None = nothing solved)
    solver_status: str = ""
    feasible: bool = False
    solve_seconds: float = 0.0
    strategy_seconds: Mapping[str, float] = field(default_factory=dict)
    degree: int = 0  # the degree actually solved at (final rung for auto)
    final_degree: int | None = None  # minimal feasible degree (auto requests)
    degrees_tried: tuple[int, ...] = ()
    repair_rounds: int = 0
    verified: bool | None = None  # None = verification not requested
    schema_version: int = CORPUS_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "v": self.schema_version,
            "features": self.features.to_dict(),
            "strategy": self.strategy,
            "solver_status": self.solver_status,
            "feasible": self.feasible,
            "solve_seconds": self.solve_seconds,
            "strategy_seconds": {name: float(s) for name, s in self.strategy_seconds.items()},
            "degree": self.degree,
            "final_degree": self.final_degree,
            "degrees_tried": list(self.degrees_tried),
            "repair_rounds": self.repair_rounds,
            "verified": self.verified,
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "SolveRecord":
        final_degree = payload.get("final_degree")
        return SolveRecord(
            features=RequestFeatures.from_dict(payload.get("features") or {}),
            strategy=payload.get("strategy"),
            solver_status=str(payload.get("solver_status", "")),
            feasible=bool(payload.get("feasible", False)),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            strategy_seconds=dict(payload.get("strategy_seconds") or {}),
            degree=int(payload.get("degree", 0)),
            final_degree=int(final_degree) if final_degree is not None else None,
            degrees_tried=tuple(int(d) for d in payload.get("degrees_tried") or ()),
            repair_rounds=int(payload.get("repair_rounds", 0)),
            verified=payload.get("verified"),
            schema_version=int(payload.get("v", CORPUS_SCHEMA_VERSION)),
        )


class SolveCorpus:
    """An append-only, process-safe JSONL store of :class:`SolveRecord` rows.

    Appends are one ``os.write`` each on an ``O_APPEND`` descriptor (atomic
    whole-line interleaving between processes for rows under the pipe-buffer
    bound, which every realistic row is); reads parse the whole file and are
    cached until its size changes, so the in-process reader sees its own
    appends immediately and other processes' appends on the next stat.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._cached_rows: list[SolveRecord] = []
        self._cached_size = -1
        self.append_failures = 0

    def __len__(self) -> int:
        return len(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SolveCorpus({self.path!r}, rows={len(self)})"

    # -- writing -----------------------------------------------------------------

    def append(self, record: SolveRecord) -> bool:
        """Append one row; returns False (and counts) on filesystem failure.

        Recording is advisory — a full disk or unwritable path must never
        fail the solve whose outcome is being recorded.
        """
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        try:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
            return True
        except OSError:
            with self._lock:
                self.append_failures += 1
            return False

    # -- reading -----------------------------------------------------------------

    def rows(self) -> list[SolveRecord]:
        """Every valid row currently on disk (cached until the file grows)."""
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return []
        with self._lock:
            if size == self._cached_size:
                return list(self._cached_rows)
        parsed = list(self._parse(self.path))
        with self._lock:
            self._cached_rows = parsed
            self._cached_size = size
            return list(parsed)

    @staticmethod
    def _parse(path: str) -> Iterable[SolveRecord]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail or foreign garbage: skip, never crash
            if not isinstance(payload, Mapping):
                continue
            if payload.get("v") != CORPUS_SCHEMA_VERSION:
                continue
            try:
                yield SolveRecord.from_dict(payload)
            except (TypeError, ValueError):
                continue
