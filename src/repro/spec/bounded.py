"""The bounded-reals model of computation (Section 2.3 and Remark 5).

In the bounded-reals model every variable value lies in ``[-c, c]`` and every
label's pre-condition additionally contains the ball constraint
``c^2 * |V^f| - (v_1^2 + ... + v_n^2) >= 0``.  The ball constraint makes the
semi-algebraic set described by the pre-condition compact, which is exactly
the condition Putinar's Positivstellensatz (and hence the paper's
semi-completeness result, Lemma 3.7) needs.
"""

from __future__ import annotations

from fractions import Fraction

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.polynomial.polynomial import Polynomial
from repro.spec.assertions import ConjunctiveAssertion
from repro.spec.preconditions import Precondition


def box_constraints(function_cfg: FunctionCFG, bound: Fraction | int) -> ConjunctiveAssertion:
    """The per-variable interval constraints ``-c <= v <= c`` for all of ``V^f``."""
    bound = Fraction(bound)
    assertion = ConjunctiveAssertion.true()
    for name in function_cfg.variables:
        variable = Polynomial.variable(name)
        assertion = assertion.conjoin(ConjunctiveAssertion.nonneg(Polynomial.constant(bound) - variable))
        assertion = assertion.conjoin(ConjunctiveAssertion.nonneg(variable + Polynomial.constant(bound)))
    return assertion


def ball_constraint(function_cfg: FunctionCFG, bound: Fraction | int) -> ConjunctiveAssertion:
    """The compactness witness ``c^2*|V^f| - sum v_i^2 >= 0`` of Remark 5."""
    bound = Fraction(bound)
    total = Polynomial.constant(bound * bound * len(function_cfg.variables))
    for name in function_cfg.variables:
        variable = Polynomial.variable(name)
        total = total - variable * variable
    return ConjunctiveAssertion.nonneg(total)


def apply_bounded_reals_model(
    cfg: ProgramCFG,
    precondition: Precondition,
    bound: Fraction | int = 10**6,
    include_boxes: bool = False,
) -> Precondition:
    """Strengthen a pre-condition with the bounded-reals constraints.

    Parameters
    ----------
    cfg:
        The program CFG.
    precondition:
        The user-supplied pre-condition (not modified).
    bound:
        The paper's constant ``c`` — the largest representable magnitude.
    include_boxes:
        Whether to also add the per-variable interval constraints.  The ball
        constraint alone is sufficient for compactness and keeps the
        constraint pairs smaller, so boxes are off by default.

    Returns
    -------
    Precondition
        A strengthened copy whose every label satisfies the compactness
        condition of Theorem 3.1.
    """
    strengthened = precondition.copy()
    for function_cfg in cfg:
        ball = ball_constraint(function_cfg, bound)
        boxes = box_constraints(function_cfg, bound) if include_boxes else ConjunctiveAssertion.true()
        for label in function_cfg.labels:
            strengthened.strengthen(label, ball)
            if include_boxes:
                strengthened.strengthen(label, boxes)
    return strengthened


def satisfies_compactness(precondition: Precondition, cfg: ProgramCFG) -> bool:
    """Heuristic check of the compactness condition of Lemma 3.7.

    We look for an atom at every label whose polynomial has the shape
    ``constant - sum of even powers`` (a ball-like constraint); the bounded
    reals transformation always produces one.  This is a sufficient, not a
    necessary, syntactic check — it is used to warn users, not to reject
    inputs.
    """
    for function_cfg in cfg:
        for label in function_cfg.labels:
            assertion = precondition.at(label)
            if not any(_looks_like_ball(atom.polynomial) for atom in assertion):
                return False
    return True


def _looks_like_ball(polynomial: Polynomial) -> bool:
    constant = polynomial.constant_term()
    if constant <= 0:
        return False
    for monomial, coefficient in polynomial.terms.items():
        if monomial.is_constant():
            continue
        exponents = monomial.powers
        if len(exponents) != 1:
            return False
        exponent = next(iter(exponents.values()))
        if exponent % 2 != 0 or coefficient > 0:
            return False
    return True
