"""Post-conditions: one conjunctive assertion per function over its return value.

A post-condition (Section 2.3) characterises the return value ``ret_f`` of a
function ``f`` in terms of the frozen parameter copies ``v_init``.  Its atoms
are *strict* inequalities (Remark 1), matching Putinar's characterisation of
strictly positive polynomials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.errors import SpecificationError
from repro.spec.assertions import ConjunctiveAssertion, parse_assertion


@dataclass
class Postcondition:
    """A mapping from function names to conjunctive assertions (default ``true``)."""

    assertions: dict[str, ConjunctiveAssertion] = field(default_factory=dict)

    @staticmethod
    def trivial() -> "Postcondition":
        """The post-condition that is ``true`` for every function."""
        return Postcondition()

    @staticmethod
    def from_spec(cfg: ProgramCFG, spec: Mapping[str, str]) -> "Postcondition":
        """Build a post-condition from textual assertions keyed by function name."""
        postcondition = Postcondition()
        for function_name, text in spec.items():
            function_cfg = cfg.function(function_name)
            postcondition.set(function_cfg, parse_assertion(text))
        return postcondition

    def set(self, function_cfg: FunctionCFG, assertion: ConjunctiveAssertion) -> None:
        """Set (replace) the assertion for a function, checking its vocabulary."""
        allowed = {function_cfg.return_variable, *function_cfg.frozen_parameters.values()}
        used = assertion.variables()
        extraneous = used - allowed
        if extraneous:
            raise SpecificationError(
                f"post-condition of {function_cfg.name!r} mentions {sorted(extraneous)}; "
                f"only {sorted(allowed)} are allowed"
            )
        self.assertions[function_cfg.name] = assertion

    def of(self, function_name: str) -> ConjunctiveAssertion:
        """The assertion for ``function_name`` (``true`` when unspecified)."""
        return self.assertions.get(function_name, ConjunctiveAssertion.true())

    def functions(self) -> list[str]:
        """Functions that carry a non-trivial post-condition."""
        return [name for name, assertion in self.assertions.items() if not assertion.is_true()]

    def holds_for(self, function_name: str, valuation: Mapping[str, float]) -> bool:
        """Evaluate the assertion of ``function_name`` on a concrete valuation."""
        return self.of(function_name).holds(valuation)

    def __str__(self) -> str:
        if not self.assertions:
            return "true for every function"
        return "\n".join(f"{name}: {assertion}" for name, assertion in sorted(self.assertions.items()))


def postcondition_vocabulary(cfg: ProgramCFG, function_name: str) -> list[str]:
    """The variables a post-condition of ``function_name`` may mention."""
    function_cfg = cfg.function(function_name)
    return sorted({function_cfg.return_variable, *function_cfg.frozen_parameters.values()})
