"""Conjunctive polynomial assertions.

A :class:`ConjunctiveAssertion` is the paper's ``/\\_i (e_i >= 0)`` (or with
strict inequalities): the building block of pre-conditions, post-conditions
and synthesized invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.cfg.dnf import AtomicInequality, to_dnf
from repro.errors import SpecificationError
from repro.lang.lexer import tokenize
from repro.lang.parser import _Parser
from repro.polynomial.polynomial import Polynomial


@dataclass(frozen=True)
class ConjunctiveAssertion:
    """A finite conjunction of atomic polynomial inequalities."""

    atoms: tuple[AtomicInequality, ...] = ()

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def true() -> "ConjunctiveAssertion":
        """The trivially-true assertion (empty conjunction)."""
        return _TRUE

    @staticmethod
    def of(*atoms: AtomicInequality) -> "ConjunctiveAssertion":
        """An assertion from explicit atoms."""
        return ConjunctiveAssertion(atoms=tuple(atoms))

    @staticmethod
    def nonneg(polynomial: Polynomial) -> "ConjunctiveAssertion":
        """The single-atom assertion ``polynomial >= 0``."""
        return ConjunctiveAssertion(atoms=(AtomicInequality(polynomial, strict=False),))

    @staticmethod
    def positive(polynomial: Polynomial) -> "ConjunctiveAssertion":
        """The single-atom assertion ``polynomial > 0``."""
        return ConjunctiveAssertion(atoms=(AtomicInequality(polynomial, strict=True),))

    @staticmethod
    def equals(polynomial: Polynomial) -> "ConjunctiveAssertion":
        """The assertion ``polynomial = 0`` encoded as two non-strict inequalities."""
        return ConjunctiveAssertion(
            atoms=(
                AtomicInequality(polynomial, strict=False),
                AtomicInequality(-polynomial, strict=False),
            )
        )

    # -- queries ----------------------------------------------------------------

    def is_true(self) -> bool:
        """Whether this is the empty (trivially true) conjunction."""
        return not self.atoms

    def __iter__(self) -> Iterator[AtomicInequality]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def variables(self) -> frozenset[str]:
        """All variables mentioned by any atom."""
        names: set[str] = set()
        for atom in self.atoms:
            names.update(atom.polynomial.variables())
        return frozenset(names)

    def holds(self, valuation: Mapping[str, float]) -> bool:
        """Evaluate the conjunction on a concrete valuation."""
        return all(atom.holds(valuation) for atom in self.atoms)

    def max_degree(self) -> int:
        """The maximum degree of any atom (0 for the true assertion)."""
        if not self.atoms:
            return 0
        return max(atom.polynomial.degree() for atom in self.atoms)

    # -- algebra ------------------------------------------------------------------

    def conjoin(self, other: "ConjunctiveAssertion") -> "ConjunctiveAssertion":
        """The conjunction of two assertions (duplicates removed, order kept)."""
        seen = set()
        merged: list[AtomicInequality] = []
        for atom in (*self.atoms, *other.atoms):
            key = (atom.polynomial, atom.strict)
            if key not in seen:
                seen.add(key)
                merged.append(atom)
        return ConjunctiveAssertion(atoms=tuple(merged))

    def add(self, atom: AtomicInequality) -> "ConjunctiveAssertion":
        """The conjunction of this assertion with one more atom."""
        return self.conjoin(ConjunctiveAssertion(atoms=(atom,)))

    def substitute(self, mapping: Mapping[str, Polynomial]) -> "ConjunctiveAssertion":
        """Apply a substitution to every atom."""
        return ConjunctiveAssertion(atoms=tuple(atom.substitute(mapping) for atom in self.atoms))

    def relaxed(self) -> "ConjunctiveAssertion":
        """All atoms relaxed to non-strict inequalities."""
        return ConjunctiveAssertion(atoms=tuple(atom.relaxed() for atom in self.atoms))

    def polynomials(self) -> list[Polynomial]:
        """The polynomials ``e_i`` of all atoms, in order."""
        return [atom.polynomial for atom in self.atoms]

    # -- display -------------------------------------------------------------------

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " and ".join(str(atom) for atom in self.atoms)


_TRUE = ConjunctiveAssertion()


def parse_assertion(text: str) -> ConjunctiveAssertion:
    """Parse a conjunction of comparisons, e.g. ``"n >= 0 and x - y > 0"``.

    The text must be purely conjunctive (no ``or`` / ``not`` that would
    introduce disjunction after normal-form conversion).
    """
    text = text.strip()
    if not text or text.lower() == "true":
        return ConjunctiveAssertion.true()
    parser = _Parser(tokenize(text))
    predicate = parser._parse_predicate()
    remaining = parser._peek()
    if remaining.kind.value != "eof":
        raise SpecificationError(f"trailing tokens in assertion {text!r}: {remaining.text!r}")
    clauses = to_dnf(predicate)
    if len(clauses) != 1:
        raise SpecificationError(
            f"assertion {text!r} is not conjunctive (it has {len(clauses)} DNF clauses)"
        )
    return ConjunctiveAssertion(atoms=clauses[0])


def assertion_from_polynomials(
    polynomials: Iterable[Polynomial], strict: bool = False
) -> ConjunctiveAssertion:
    """Build an assertion ``/\\ (p >= 0)`` (or ``> 0``) from raw polynomials."""
    return ConjunctiveAssertion(
        atoms=tuple(AtomicInequality(polynomial, strict=strict) for polynomial in polynomials)
    )
