"""Pre-conditions: a conjunctive assertion at every program label.

The paper (Section 2.3) defines a pre-condition as a map from labels to
conjunctions of non-strict polynomial inequalities; labels without an
explicit assertion default to ``true``.  The entry label of every function is
additionally assumed (footnote in Section 2.3) to constrain all non-parameter
variables to zero and to tie each parameter ``v`` to its frozen copy ``v_init``;
:func:`augment_entry_preconditions` makes that assumption explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cfg.graph import FunctionCFG, ProgramCFG
from repro.cfg.labels import Label
from repro.errors import SpecificationError
from repro.polynomial.polynomial import Polynomial
from repro.spec.assertions import ConjunctiveAssertion, parse_assertion


@dataclass
class Precondition:
    """A mapping from labels to conjunctive assertions, defaulting to ``true``."""

    assertions: dict[Label, ConjunctiveAssertion] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    @staticmethod
    def trivial() -> "Precondition":
        """The pre-condition that is ``true`` at every label."""
        return Precondition()

    @staticmethod
    def from_spec(cfg: ProgramCFG, spec: Mapping[str, Mapping[int, str]]) -> "Precondition":
        """Build a pre-condition from textual assertions.

        ``spec`` maps a function name to a map from 1-based label indices to
        assertion strings, e.g. ``{"sum": {1: "n >= 0"}}``.
        """
        precondition = Precondition()
        for function_name, per_label in spec.items():
            function_cfg = cfg.function(function_name)
            for index, text in per_label.items():
                label = function_cfg.label_by_index(index)
                precondition.set(label, parse_assertion(text))
        return precondition

    @staticmethod
    def at_entry(cfg: ProgramCFG, entry_assertions: Mapping[str, str]) -> "Precondition":
        """Pre-condition with one textual assertion at the entry label of each listed function."""
        precondition = Precondition()
        for function_name, text in entry_assertions.items():
            function_cfg = cfg.function(function_name)
            precondition.set(function_cfg.entry, parse_assertion(text))
        return precondition

    # -- mutation ----------------------------------------------------------------

    def set(self, label: Label, assertion: ConjunctiveAssertion) -> None:
        """Set (replace) the assertion at ``label``."""
        for atom in assertion:
            if atom.strict:
                raise SpecificationError(
                    f"pre-conditions must use non-strict inequalities, got {atom} at {label}"
                )
        self.assertions[label] = assertion

    def strengthen(self, label: Label, assertion: ConjunctiveAssertion) -> None:
        """Conjoin ``assertion`` with whatever is already required at ``label``."""
        current = self.at(label)
        merged = current.conjoin(assertion)
        self.assertions[label] = merged

    # -- queries -------------------------------------------------------------------

    def at(self, label: Label) -> ConjunctiveAssertion:
        """The assertion at ``label`` (``true`` when unspecified)."""
        return self.assertions.get(label, ConjunctiveAssertion.true())

    def labels(self) -> list[Label]:
        """Labels that carry a non-trivial assertion."""
        return [label for label, assertion in self.assertions.items() if not assertion.is_true()]

    def copy(self) -> "Precondition":
        """An independent copy."""
        return Precondition(assertions=dict(self.assertions))

    def holds_at(self, label: Label, valuation: Mapping[str, float]) -> bool:
        """Evaluate the assertion at ``label`` on a concrete valuation."""
        return self.at(label).holds(valuation)

    def __str__(self) -> str:
        if not self.assertions:
            return "true everywhere"
        lines = [
            f"{label}: {assertion}"
            for label, assertion in sorted(self.assertions.items(), key=lambda kv: str(kv[0]))
            if not assertion.is_true()
        ]
        return "\n".join(lines) if lines else "true everywhere"


def entry_assumptions(function_cfg: FunctionCFG) -> ConjunctiveAssertion:
    """The implicit entry-label assumptions of Section 2.3.

    At ``l^f_in`` every variable outside ``V^f_*`` is zero and each parameter
    equals its frozen copy; both facts are expressed as pairs of non-strict
    inequalities so that they fit the pre-condition format.
    """
    assertion = ConjunctiveAssertion.true()
    special = {
        function_cfg.return_variable,
        *function_cfg.parameters,
        *function_cfg.frozen_parameters.values(),
    }
    for name in function_cfg.variables:
        if name in special and name not in (function_cfg.return_variable,):
            continue
        # ret_f and every local variable start at zero.
        assertion = assertion.conjoin(ConjunctiveAssertion.equals(Polynomial.variable(name)))
    for parameter in function_cfg.parameters:
        frozen = function_cfg.frozen_parameters[parameter]
        difference = Polynomial.variable(parameter) - Polynomial.variable(frozen)
        assertion = assertion.conjoin(ConjunctiveAssertion.equals(difference))
    return assertion


def augment_entry_preconditions(cfg: ProgramCFG, precondition: Precondition) -> Precondition:
    """Return a copy of ``precondition`` strengthened with the entry assumptions."""
    augmented = precondition.copy()
    for function_cfg in cfg:
        augmented.strengthen(function_cfg.entry, entry_assumptions(function_cfg))
    return augmented
