"""Objective functions for the Weak Invariant Synthesis problem.

The paper (Remark 9) optimises a linear or quadratic function of the template
coefficients (the *s-variables*).  The most common use is to ask for the
invariant at one particular label to be as close as possible to a desired
target assertion; :class:`TargetInvariantObjective` implements exactly that
(it is the objective used in Example 9 and in the experimental section).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import SpecificationError
from repro.polynomial.polynomial import Polynomial

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invariants.template import TemplateSet


class Objective(ABC):
    """An objective over template coefficients, to be *minimised* by Step 4."""

    @abstractmethod
    def polynomial(self, template: "TemplateSet") -> Polynomial:
        """The objective as a polynomial over the template's s-variables."""

    def evaluate(self, template: "TemplateSet", assignment: Mapping[str, float]) -> float:
        """Numeric value of the objective under an assignment of the unknowns."""
        expression = self.polynomial(template)
        valuation = {name: float(assignment.get(name, 0.0)) for name in expression.variables()}
        return expression.evaluate_float(valuation)


@dataclass(frozen=True)
class FeasibilityObjective(Objective):
    """The constant-zero objective: any solution of the system is acceptable."""

    def polynomial(self, template: "TemplateSet") -> Polynomial:
        return Polynomial.zero()


@dataclass(frozen=True)
class TargetInvariantObjective(Objective):
    """Squared distance between one template conjunct and a target polynomial.

    Attributes
    ----------
    function, label_index:
        The label whose invariant should match the target (1-based index, as
        printed in the paper's listings).
    target:
        The desired polynomial ``g`` for the assertion ``g > 0``.
    conjunct:
        Which conjunct of the template at that label to aim at (0-based).
    normalise:
        When true the target coefficients are divided by the largest absolute
        coefficient, which keeps the objective well-scaled for the numeric
        solvers.
    """

    function: str
    label_index: int
    target: Polynomial
    conjunct: int = 0
    normalise: bool = False

    def polynomial(self, template: "TemplateSet") -> Polynomial:
        entry = template.entry_for(self.function, self.label_index)
        if self.conjunct >= entry.conjuncts:
            raise SpecificationError(
                f"template at {self.function}:{self.label_index} has {entry.conjuncts} conjuncts; "
                f"conjunct {self.conjunct} was requested"
            )
        target = self.target
        if self.normalise:
            scale = max((abs(c) for c in target.terms.values()), default=1)
            if scale:
                target = target / scale

        target_by_monomial = target.terms
        allowed = set(entry.monomials)
        unsupported = [m for m in target_by_monomial if m not in allowed]
        if unsupported:
            raise SpecificationError(
                f"target invariant uses monomials {sorted(map(str, unsupported))} outside the "
                f"degree-{entry.degree} template at {self.function}:{self.label_index}"
            )

        objective = Polynomial.zero()
        for monomial in entry.monomials:
            coefficient_variable = Polynomial.variable(
                entry.coefficient_name(self.conjunct, monomial)
            )
            desired = target_by_monomial.get(monomial, 0)
            difference = coefficient_variable - Polynomial.constant(desired)
            objective = objective + difference * difference
        return objective


@dataclass(frozen=True)
class TargetPostconditionObjective(Objective):
    """Squared distance between a function's post-condition template and a target.

    This is the recursive analogue of :class:`TargetInvariantObjective`: the
    paper's recursive benchmarks specify the desired fact as a post-condition
    ``g(ret_f, v_init, ...) > 0`` of the analysed function.
    """

    function: str
    target: Polynomial
    conjunct: int = 0

    def polynomial(self, template: "TemplateSet") -> Polynomial:
        entry = template.post_entry_for(self.function)
        if self.conjunct >= entry.conjuncts:
            raise SpecificationError(
                f"post-condition template of {self.function!r} has {entry.conjuncts} conjuncts; "
                f"conjunct {self.conjunct} was requested"
            )
        target_by_monomial = self.target.terms
        allowed = set(entry.monomials)
        unsupported = [m for m in target_by_monomial if m not in allowed]
        if unsupported:
            raise SpecificationError(
                f"target post-condition uses monomials {sorted(map(str, unsupported))} outside the "
                f"degree-{entry.degree} template of {self.function!r}"
            )
        objective = Polynomial.zero()
        for monomial in entry.monomials:
            coefficient_variable = Polynomial.variable(entry.coefficient_name(self.conjunct, monomial))
            desired = target_by_monomial.get(monomial, 0)
            difference = coefficient_variable - Polynomial.constant(desired)
            objective = objective + difference * difference
        return objective


@dataclass(frozen=True)
class LinearCoefficientObjective(Objective):
    """A linear objective ``sum w_j * s_j`` over named template coefficients.

    ``weights`` maps fully-qualified s-variable names (as produced by the
    template) to weights.  This mirrors the paper's statement that any linear
    objective over the s-variables is admissible.
    """

    weights: Mapping[str, float]

    def polynomial(self, template: "TemplateSet") -> Polynomial:
        known = set(template.coefficient_names())
        objective = Polynomial.zero()
        for name, weight in self.weights.items():
            if name not in known:
                raise SpecificationError(f"unknown template coefficient {name!r} in objective")
            objective = objective + Polynomial.variable(name).scale(weight)
        return objective
