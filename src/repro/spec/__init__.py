"""Specifications: pre-conditions, post-conditions, objectives and the bounded-reals model."""

from repro.spec.assertions import ConjunctiveAssertion, assertion_from_polynomials, parse_assertion
from repro.spec.bounded import apply_bounded_reals_model, ball_constraint, box_constraints, satisfies_compactness
from repro.spec.objectives import (
    FeasibilityObjective,
    LinearCoefficientObjective,
    Objective,
    TargetInvariantObjective,
    TargetPostconditionObjective,
)
from repro.spec.postconditions import Postcondition, postcondition_vocabulary
from repro.spec.preconditions import Precondition, augment_entry_preconditions, entry_assumptions

__all__ = [
    "ConjunctiveAssertion",
    "FeasibilityObjective",
    "LinearCoefficientObjective",
    "Objective",
    "Postcondition",
    "Precondition",
    "TargetInvariantObjective",
    "TargetPostconditionObjective",
    "apply_bounded_reals_model",
    "assertion_from_polynomials",
    "augment_entry_preconditions",
    "ball_constraint",
    "box_constraints",
    "entry_assumptions",
    "parse_assertion",
    "postcondition_vocabulary",
    "satisfies_compactness",
]
