"""The Engine: one service-grade front door for every synthesis caller.

An :class:`Engine` is a long-lived session object that owns the Step 1-3
:class:`~repro.pipeline.cache.TaskCache` and the Step-4 worker pool, and
executes typed :class:`~repro.api.request.SynthesisRequest` values:

* :meth:`Engine.synthesize` — one request, blocking, returns a
  :class:`~repro.api.response.SynthesisResponse` (never raises for
  per-request failures; they arrive as structured errors on the envelope);
* :meth:`Engine.submit` — non-blocking, returns a :class:`SynthesisHandle`;
* :meth:`Engine.map` — many requests, streaming completed responses **as
  they finish** (out of order, each stamped with its submission id);
* :meth:`Engine.close` / context-manager lifecycle.

Identical requests share work at two levels: reductions are deduplicated
through the task cache, and solves through a per-``(reduction, strategy,
solver options)`` result table — the second of two identical requests
reports ``shared_solve=True`` and reuses the first's solver result.

The four paper-named functions in :mod:`repro.invariants.synthesis`, the
batch :class:`~repro.pipeline.SynthesisPipeline` and the ``repro.bench``
runner are all thin layers over this class; a future HTTP/queue front-end
binds here as well.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.api.errors import EngineClosedError, RequestValidationError
from repro.api.request import STRONG_MODES, SynthesisRequest, precondition_to_spec
from repro.api.response import ErrorInfo, SynthesisResponse, response_from_result
from repro.api.workers import (
    FAULT_MARKER_ENV,
    ProcessWorkerPool,
    WorkerConfig,
    WorkerCrashError,
)
from repro.invariants.synthesis import (
    SynthesisTask,
    enumerate_task,
    result_from_solution,
)
from repro.pipeline.cache import TaskCache
from repro.reduction.escalate import DEADLINE_SKIPPED, EscalationAttempt, EscalationTrace
from repro.reduction.plan import objective_fingerprint
from repro.reduction.task import STAGE_NAMES
from repro.schedule import (
    RequestFeatures,
    SchedulePlan,
    Scheduler,
    SolveCorpus,
    SolveRecord,
    default_corpus_path,
    ladder_for,
    stable_fingerprints,
)
from repro.solvers.base import Solver, SolverOptions, SolverResult
from repro.solvers.portfolio import DEFAULT_PORTFOLIO, PortfolioSolver, make_solver
from repro.solvers.strong import RepresentativeEnumerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invariants.translation import TranslationPool
    from repro.store import BlobStore, EngineStore

#: Engine execution back-ends.  ``"process"`` is the multi-core production
#: path: whole synthesize jobs ship to persistent worker processes over the
#: JSON wire protocol (:mod:`repro.api.workers`).  ``"solve-process"`` is the
#: legacy Step-4-only fan-out kept for in-process batch consumers (the
#: pipeline, the bench runner) that need the rich ``result``/``task`` extras
#: a wire envelope cannot carry.  ``"auto"`` picks ``"process"`` when the
#: engine is pooled (``workers > 1``) and the host has at least two cores,
#: else ``"thread"``.
EXECUTORS = ("auto", "thread", "process", "solve-process")

#: Engine-level scheduler modes (requests can override via
#: ``SynthesisOptions.scheduler``; ``"inherit"`` follows the engine).
SCHEDULERS = ("off", "on", "record-only")

#: Remaining-deadline floor below which another escalation rung is pointless.
_ESCALATION_MIN_BUDGET = 0.01


def _solve_system(solver: Solver, system) -> tuple[SolverResult, float]:
    """Worker entry point: one Step-4 solve (module-level for picklability).

    Returns the result with the solve's own compute time, so pooled runs
    report per-request solver time rather than queue latency.
    """
    start = time.perf_counter()
    result = solver.solve(system)
    return result, time.perf_counter() - start


class SynthesisHandle:
    """A submitted request: a future-style handle onto its response.

    ``result()`` never raises for synthesis failures — those come back as an
    ``status="error"`` response — only for caller-side problems such as a
    ``timeout``.
    """

    def __init__(self, submission_id: int, request: SynthesisRequest, future: Future):
        self.submission_id = submission_id
        self.request = request
        self._future = future

    def done(self) -> bool:
        """Whether the response is ready."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> SynthesisResponse:
        """Block until the response is ready and return it."""
        return self._future.result(timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done() else "pending"
        return f"SynthesisHandle(id={self.submission_id}, {state})"


class Engine:
    """A synthesis session: persistent task cache plus a Step-4 worker pool.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` executes requests synchronously in the submitting
        thread; ``n > 1`` runs up to ``n`` requests concurrently.
    cache:
        The Step 1-3 task cache; pass a shared instance to reuse reductions
        across engines (e.g. between a service and its warm-up script).
    solver:
        An explicit Step-4 solver applied to every weak-mode request.  When
        ``None`` (the default) each request's solver is resolved from its
        options' ``strategy``/``portfolio`` knobs.
    solver_options:
        Default Step-4 solver knobs for resolved solvers; a request's own
        ``solver_options``/``deadline`` override/tighten these.
    executor:
        ``"thread"`` executes requests on the engine's worker threads — fine
        for warm traffic (cache hits, store hits) but CPU-bound cold work
        serialises on the GIL.  ``"process"`` — the production path — ships
        whole synthesize jobs (reduce, solve, verify) to a pool of
        ``workers`` persistent worker processes over the strict JSON wire
        protocol (:mod:`repro.api.workers`): each worker holds a warm
        sequential engine with its own stage caches, store/corpus writes
        happen in the workers, identical in-flight requests are deduplicated
        parent-side (the rider's envelope reports ``shared_solve=True``), and
        a worker crash mid-job becomes a structured ``status="error"``
        envelope while the pool rebuilds.  Responses carry the JSON envelope
        only (no in-process ``result``/``task`` extras), exactly as over the
        wire; requests that need live objects — escape-hatch submissions, an
        engine-level ``solver``, ``reduce_only`` — transparently fall back to
        the thread path.  ``"solve-process"`` is the legacy Step-4-only
        process fan-out kept for batch consumers that need the rich extras.
        ``"auto"`` (default) picks ``"process"`` when ``workers > 1`` and the
        host has at least two cores, else ``"thread"``.
    max_cached_solves:
        Size bound of the solve-dedup result table (oldest entries evicted
        first), so a long-lived engine's memory stays bounded.  ``None``
        disables eviction.
    translation_workers:
        ``n > 1`` fans the vectorised Step-3 translation kernels of each
        reduction out across a dedicated
        :class:`~repro.invariants.translation.TranslationPool` of ``n``
        shared-memory worker processes (exponent/coefficient arrays travel
        through ``multiprocessing.shared_memory``, never pickled
        ``Polynomial`` objects; results merge in pair-index order, so the
        system is bit-identical to a sequential translation).  ``"auto"``
        runs a one-time calibration on first use and enables a
        ``cpu_count``-sized pool only where fan-out actually measures at
        least as fast as the sequential kernel.  ``0``/``1`` (the default)
        translates sequentially.
    scheduler:
        The corpus-driven portfolio scheduler (:mod:`repro.schedule`).
        ``"off"`` (default) races portfolios exactly as configured;
        ``"record-only"`` appends one corpus row per completed solve without
        changing any schedule; ``"on"`` additionally predicts — the expected
        winning strategy launches first with the rest of the line-up
        staggered behind a learned grace period (never pruned), and
        ``degree="auto"`` ladders start at the predicted rung with the
        skipped lower rungs appended as downward repair.  Predictions only
        reorder work whose acceptance is gated by feasibility checks and
        (when requested) exact certificates, so a misprediction can cost
        time but never correctness.
    corpus:
        The :class:`~repro.schedule.SolveCorpus` (or its path) backing the
        scheduler; shared paths share training signal across processes and
        restarts.  ``None`` with a non-``"off"`` scheduler falls back to
        :func:`~repro.schedule.default_corpus_path`.  Passing a corpus while
        ``scheduler="off"`` arms the engine for per-request
        ``SynthesisOptions(scheduler=...)`` overrides without changing the
        engine default.
    store:
        The persistent content-addressed store (:mod:`repro.store`): an
        :class:`~repro.store.EngineStore`, a :class:`~repro.store.BlobStore`
        or a root directory path.  When set, the engine (1) re-serves whole
        response envelopes for previously completed requests straight from
        disk (``served_from_store=True``; nothing is recomputed — not even by
        this process or since the last restart), (2) persists every feasible
        Step-4 solve under its stable content hash, so requests differing
        only in e.g. their verification tier reuse the solve across
        processes, (3) files every issued certificate under its own
        fingerprint (named in ``verification["certificate_sha"]``), and
        (4) roots the schedule corpus in the same data directory, one per
        deployment.  A corrupt or half-written blob degrades to a cache
        miss, never an error.  Store-served responses carry the JSON
        envelope only — the in-process ``result``/``task`` extras are
        absent, exactly as over the wire.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: TaskCache | None = None,
        solver: Solver | None = None,
        solver_options: SolverOptions | None = None,
        executor: str = "auto",
        max_cached_solves: int | None = 512,
        translation_workers: int | str = 0,
        scheduler: str = "off",
        corpus: SolveCorpus | str | None = None,
        store: "EngineStore | BlobStore | str | None" = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if isinstance(translation_workers, str):
            if translation_workers != "auto":
                raise ValueError(
                    f"translation_workers must be a non-negative int or 'auto', "
                    f"got {translation_workers!r}"
                )
        elif translation_workers < 0:
            raise ValueError(f"translation_workers must be non-negative, got {translation_workers}")
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; known executors: {', '.join(EXECUTORS)}")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known schedulers: {', '.join(SCHEDULERS)}"
            )
        self.workers = workers
        self.cache = cache if cache is not None else TaskCache()
        self.max_cached_solves = max_cached_solves
        self.solver = solver
        self.solver_options = solver_options
        self.translation_workers = translation_workers
        self.executor = executor
        self._executor_kind = self._resolve_executor(executor, workers)
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessPoolExecutor | None = None
        self._jobs: ProcessWorkerPool | None = None
        self._inflight: dict[str, Future] = {}
        self._inflight_lock = threading.Lock()
        self._process_stats = {
            "process_jobs": 0,
            "process_jobs_shared": 0,
            "process_jobs_failed": 0,
        }
        self._translators: "TranslationPool | None" = None
        self._translation_disabled = False
        self._pool_lock = threading.Lock()
        self._solves: dict[tuple, Future] = {}
        self._solve_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._translation_lock = threading.Lock()
        self._translation_stats = {
            "translation_compile_seconds": 0.0,
            "translation_fanout_seconds": 0.0,
            "translation_assemble_seconds": 0.0,
            "translation_parallel_runs": 0.0,
        }
        self._verify_lock = threading.Lock()
        self._verify_stats = {
            "verify_requested": 0,
            "verify_passed": 0,
            "verify_failed": 0,
            "repair_rounds": 0,
            "repair_successes": 0,
            "certificates_issued": 0,
        }
        self.store: "EngineStore | None" = None
        if store is not None:
            from repro.store import open_store

            self.store = open_store(store)
        self._store_lock = threading.Lock()
        self._store_stats = {
            "store_response_hits": 0,
            "store_response_misses": 0,
            "store_response_writes": 0,
            "store_solve_hits": 0,
            "store_solve_writes": 0,
            "store_certificates_stored": 0,
        }
        self.scheduler = scheduler
        self._corpus: SolveCorpus | None = None
        self._planner: Scheduler | None = None
        if scheduler != "off" or corpus is not None or self.store is not None:
            if corpus is None:
                # One data directory per deployment: a store-backed engine
                # roots its corpus next to the blob namespaces.
                corpus = self.store.corpus_path if self.store is not None else default_corpus_path()
            self._corpus = corpus if isinstance(corpus, SolveCorpus) else SolveCorpus(corpus)
            self._planner = Scheduler(self._corpus)
        self._solver_stats_lock = threading.Lock()
        self._solver_stats = {
            "solver_residual_evaluations": 0,
            "solver_jacobian_evaluations": 0,
            "solver_batch_width_max": 0,
        }
        self._schedule_lock = threading.Lock()
        self._schedule_stats = {
            "schedule_predictions": 0,
            "schedule_cold_starts": 0,
            "schedule_strategy_hits": 0,
            "schedule_strategy_misses": 0,
            "schedule_degree_hits": 0,
            "schedule_degree_misses": 0,
            "schedule_rows_recorded": 0,
            "schedule_record_failures": 0,
        }
        if self._executor_kind == "process" and self.workers > 1:
            # Fork the job workers now, from the constructing thread — before
            # the engine's own worker threads exist — so the pool is warm for
            # the first request.  A construction failure tears the partial
            # pool down: a half-built engine must leave no child processes.
            pool = ProcessWorkerPool(self.workers, self._worker_config())
            try:
                pool.warm()
            except BaseException:
                pool.close(wait=False)
                raise
            self._jobs = pool

    @staticmethod
    def _resolve_executor(executor: str, workers: int, cpus: int | None = None) -> str:
        """The effective executor of one engine (the ``"auto"`` decision table).

        ========== ============ =========== =================
        executor   workers      host cores  resolved
        ========== ============ =========== =================
        auto       <= 1         any         thread
        auto       > 1          1           thread
        auto       > 1          >= 2        process
        anything else                       itself (explicit)
        ========== ============ =========== =================
        """
        if executor != "auto":
            return executor
        cpus = cpus if cpus is not None else (os.cpu_count() or 1)
        return "process" if workers > 1 and cpus >= 2 else "thread"

    @property
    def executor_kind(self) -> str:
        """The resolved executor back-end this engine runs requests on."""
        return self._executor_kind

    def _worker_config(self) -> WorkerConfig:
        """The JSON-able config the job workers build their engines from."""
        corpus_path = None
        if self.store is None and self._corpus is not None:
            corpus_path = self._corpus.path
        return WorkerConfig(
            store_root=self.store.root if self.store is not None else None,
            corpus_path=corpus_path,
            scheduler=self.scheduler,
            solver_options=(
                dataclasses.asdict(self.solver_options)
                if self.solver_options is not None
                else None
            ),
            max_cached_solves=self.max_cached_solves,
            fault_marker=os.environ.get(FAULT_MARKER_ENV),
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, wait_for_pending: bool = True) -> None:
        """Shut the worker pools down; further submissions raise :class:`EngineClosedError`."""
        self._closed = True
        self.shutdown_pools(wait_for_pending=wait_for_pending)

    def shutdown_pools(self, wait_for_pending: bool = True) -> None:
        """Release the worker pools without closing the engine.

        The caches survive and the pools are lazily recreated on the next
        submission — this is how batch-scoped callers (e.g.
        :class:`~repro.pipeline.SynthesisPipeline`) avoid keeping worker
        processes alive between batches.
        """
        with self._pool_lock:
            threads, self._threads = self._threads, None
            processes, self._processes = self._processes, None
            translators, self._translators = self._translators, None
            jobs, self._jobs = self._jobs, None
        if threads is not None:
            threads.shutdown(wait=wait_for_pending)
        if processes is not None:
            processes.shutdown(wait=wait_for_pending)
        if translators is not None:
            translators.close()
        if jobs is not None:
            jobs.close(wait=wait_for_pending)

    def stats(self) -> dict[str, float]:
        """Cache and dedup counters (for service dashboards).

        Includes the per-stage hit/miss counters of the staged reduction
        (``stage_frontend_hits``, ``stage_translation_misses``, ...) next to
        the historical whole-task counters.
        """
        stats = self.cache.stats()
        with self._solve_lock:
            stats["solves_cached"] = float(len(self._solves))
        stats["submissions"] = float(self._next_id)
        with self._translation_lock:
            stats.update(self._translation_stats)
        with self._verify_lock:
            stats.update({key: float(value) for key, value in self._verify_stats.items()})
        with self._schedule_lock:
            stats.update({key: float(value) for key, value in self._schedule_stats.items()})
        with self._solver_stats_lock:
            stats.update({key: float(value) for key, value in self._solver_stats.items()})
        if self._corpus is not None:
            stats["schedule_corpus_rows"] = float(len(self._corpus))
        with self._store_lock:
            stats.update({key: float(value) for key, value in self._store_stats.items()})
        with self._inflight_lock:
            stats.update({key: float(value) for key, value in self._process_stats.items()})
            stats["process_inflight"] = float(len(self._inflight))
        if self.store is not None:
            stats.update(self.store.stats())
        return stats

    def _bump_store(self, key: str) -> None:
        with self._store_lock:
            self._store_stats[key] += 1

    def _record_translation(self, report) -> None:
        """Accumulate a reduction's translation sub-phase split into :meth:`stats`.

        Only reductions whose translation stage actually ran carry the split
        (``ReductionReport.extra_timings``); cached stages contribute nothing.
        """
        extra = dict(report.extra_timings)
        if not extra:
            return
        with self._translation_lock:
            for phase in ("compile", "fanout", "assemble"):
                self._translation_stats[f"translation_{phase}_seconds"] += extra.get(
                    f"stage_translation_{phase}_seconds", 0.0
                )
            if extra.get("stage_translation_workers", 0.0) > 1.0:
                self._translation_stats["translation_parallel_runs"] += 1.0

    def _record_verification(self, outcome) -> None:
        with self._verify_lock:
            self._verify_stats["verify_requested"] += 1
            self._verify_stats["verify_passed" if outcome.verified else "verify_failed"] += 1
            self._verify_stats["repair_rounds"] += outcome.repair_rounds
            if outcome.repaired:
                self._verify_stats["repair_successes"] += 1
            if outcome.certificate is not None:
                self._verify_stats["certificates_issued"] += 1

    # -- scheduling --------------------------------------------------------------

    def _schedule_mode(self, request: SynthesisRequest) -> str:
        """The effective scheduler mode of one request (request over engine)."""
        if self._corpus is None or self._planner is None:
            return "off"
        mode = request.options.scheduler
        return self.scheduler if mode == "inherit" else mode

    def _request_features(self, request: SynthesisRequest) -> RequestFeatures:
        """The corpus feature vector of a request (pre-reduction fields only).

        The stable fingerprints hash canonical *textual* renderings of the
        program, precondition and objective — never ``id()``-based in-memory
        keys — so they match across processes and engine restarts.
        """
        options = request.options
        precondition_text = json.dumps(
            precondition_to_spec(request.precondition), sort_keys=True, default=str
        )
        # Scheme knobs: the reduction fingerprint minus its leading degree —
        # the degree travels as a numeric feature, not inside reduction_sha,
        # so auto-ladder rungs and fixed-degree requests match each other.
        scheme_knobs = options.reduction_fingerprint()[1:]
        program_sha, reduction_sha = stable_fingerprints(
            request.program,
            precondition_text,
            scheme_knobs,
            str(objective_fingerprint(request.objective)),
        )
        return RequestFeatures(
            program_sha=program_sha,
            reduction_sha=reduction_sha,
            program_chars=float(len(request.program)),
            program_lines=float(request.program.count("\n") + 1),
            degree=-1.0 if options.is_auto_degree else float(options.degree),
            conjuncts=float(options.conjuncts),
            upsilon=float(options.upsilon),
            scheme=0.0 if options.translation == "putinar" else 1.0,
            bounded=float(options.bounded),
            strict=float(options.with_witness),
            encode_sos=float(options.encode_sos),
        )

    def _enriched_features(self, request: SynthesisRequest, task) -> RequestFeatures:
        """Request features plus the post-reduction size dimensions."""
        features = self._request_features(request)
        if task is None:
            return features
        return features.with_reduction(
            task.statistics.get("constraint_pairs", 0.0),
            task.system.counts().get("template_variables", 0),
            task.system.size,
        )

    def _bump_schedule(self, key: str) -> None:
        with self._schedule_lock:
            self._schedule_stats[key] += 1

    def _plan_solve(self, request: SynthesisRequest, job, task) -> SchedulePlan | None:
        """Predict the portfolio schedule of one fixed-degree solve.

        Prediction failures degrade to ``None`` (the unscheduled race) — the
        scheduler is advisory and must never fail a request.
        """
        try:
            features = self._enriched_features(request, task)
            plan = self._planner.plan(
                features, line_up=job.options.portfolio or DEFAULT_PORTFOLIO
            )
        except Exception:  # pragma: no cover - defensive: corpus corruption
            return None
        self._bump_schedule("schedule_predictions" if plan.predicted else "schedule_cold_starts")
        return plan

    def _maybe_record(
        self,
        request: SynthesisRequest,
        response: SynthesisResponse,
        *,
        degree: int,
        final_degree: int | None = None,
        degrees_tried: tuple[int, ...] = (),
        shared: bool = False,
        enriched: bool = True,
    ) -> None:
        """Append one corpus row for a completed weak solve (post-verification).

        Rows are written *after* verification so they reflect the
        certificate-gated outcome; shared (deduplicated) solves are skipped —
        the owning request already recorded the work.  Recording is advisory:
        any failure only bumps ``schedule_record_failures``.

        ``enriched=False`` records the pre-reduction feature vector (pair and
        system counts left at 0).  Escalation-level rows use it so they live
        in the same feature space as the escalation-level *queries*, which
        run before any rung is reduced — a warm repeat of the same auto
        request is then an exact feature match and its recorded minimal
        degree dominates the vote.
        """
        mode = self._schedule_mode(request)
        if mode == "off" or shared or self._corpus is None:
            return
        if request.mode in STRONG_MODES or request.reduce_only:
            return
        if response.status not in ("ok", "no_invariant"):
            return
        ok = False
        try:
            if enriched:
                features = self._enriched_features(request, response.task)
            else:
                features = self._request_features(request)
            statistics = response.statistics or {}
            strategy_seconds = {
                key[len("portfolio_") : -len("_seconds")]: float(value)
                for key, value in statistics.items()
                if key.startswith("portfolio_") and key.endswith("_seconds")
            }
            solve_seconds = float(response.timings.get("solve_seconds", 0.0))
            strategy = response.strategy if response.status == "ok" else None
            if not strategy_seconds and strategy:
                strategy_seconds = {strategy: solve_seconds}
            verification = response.verification
            record = SolveRecord(
                features=features,
                strategy=strategy,
                solver_status=response.solver_status or "",
                feasible=response.status == "ok",
                solve_seconds=solve_seconds,
                strategy_seconds=strategy_seconds,
                degree=degree,
                final_degree=final_degree,
                degrees_tried=degrees_tried,
                repair_rounds=0 if verification is None else int(verification.get("repair_rounds", 0)),
                verified=None if verification is None else bool(verification.get("verified")),
            )
            ok = self._corpus.append(record)
        except Exception:  # pragma: no cover - defensive: recording never fails a request
            ok = False
        self._bump_schedule("schedule_rows_recorded" if ok else "schedule_record_failures")

    # -- submission --------------------------------------------------------------

    def synthesize(
        self,
        request: SynthesisRequest,
        *,
        solver: Solver | None = None,
        task: SynthesisTask | None = None,
        enumerator: RepresentativeEnumerator | None = None,
        deadline_epoch: float | None = None,
    ) -> SynthesisResponse:
        """Execute one request and return its response (blocking).

        The keyword-only ``solver``/``task``/``enumerator`` escape hatches
        carry live in-process objects (a pre-built Step 1-3 reduction, a
        hand-configured solver); they are not part of the wire format and
        bypass the solve-dedup table.  ``deadline_epoch`` anchors the
        request's relative ``deadline`` to an absolute wall-clock instant
        (``time.time()`` scale) so a deadline keeps ticking across queueing
        and process hops; callers normally leave it ``None``.
        """
        return self.submit(
            request,
            solver=solver,
            task=task,
            enumerator=enumerator,
            deadline_epoch=deadline_epoch,
        ).result()

    def submit(
        self,
        request: SynthesisRequest,
        *,
        solver: Solver | None = None,
        task: SynthesisTask | None = None,
        enumerator: RepresentativeEnumerator | None = None,
        deadline_epoch: float | None = None,
    ) -> SynthesisHandle:
        """Schedule one request; returns a handle whose ``result()`` is the response."""
        if self._closed:
            raise EngineClosedError("engine is closed")
        if not isinstance(request, SynthesisRequest):
            raise RequestValidationError.single("$", "expected a SynthesisRequest")
        if deadline_epoch is None and request.deadline is not None:
            # Anchor the relative deadline now, at admission: queue time and
            # the process hop both count against the request's budget.
            deadline_epoch = time.time() + float(request.deadline)
        with self._submit_lock:
            submission_id = self._next_id
            self._next_id += 1
        if self.workers > 1:
            pool = self._thread_pool()
            future = pool.submit(
                self._execute,
                request,
                submission_id,
                solver,
                task,
                enumerator,
                deadline_epoch=deadline_epoch,
            )
        else:
            future: Future = Future()
            future.set_result(
                self._execute(
                    request, submission_id, solver, task, enumerator, deadline_epoch=deadline_epoch
                )
            )
        return SynthesisHandle(submission_id, request, future)

    def map(
        self, requests: Iterable[SynthesisRequest], ordered: bool = False
    ) -> Iterator[SynthesisResponse]:
        """Stream responses for many requests as they finish.

        By default completed responses are yielded **out of submission
        order** — whichever request finishes first arrives first, stamped
        with its ``submission_id`` so callers can match them back.  Pass
        ``ordered=True`` for submission-order delivery (still streaming: each
        response is yielded as soon as it and all its predecessors are done).
        A failing request yields an ``status="error"`` response; it never
        raises out of the iterator.
        """
        if self.workers <= 1:
            # Sequential engines execute on submit; stream lazily, one by one.
            for request in requests:
                yield self.submit(request).result()
            return
        handles = [self.submit(request) for request in requests]
        if ordered:
            for handle in handles:
                yield handle.result()
            return
        pending = {handle._future: handle for handle in handles}
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                handle = pending.pop(future)
                yield handle.result()

    # -- execution ---------------------------------------------------------------

    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-engine"
                )
            return self._threads

    def _process_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if self._processes is None:
                self._processes = ProcessPoolExecutor(max_workers=max(2, self.workers))
            return self._processes

    def _translation_pool(self) -> "TranslationPool | None":
        """The shared-memory translation pool (``None`` when sequential).

        Deliberately separate from the request pools: the translation fan-out
        owns its worker processes and shared-memory segments, and submitting
        translation sub-tasks to the request pool from inside a request could
        deadlock once every worker thread is itself a waiting request.  Under
        ``translation_workers="auto"`` the first call runs (and caches) a
        calibration micro-benchmark and enables the pool only where parallel
        fan-out measured at least as fast as the sequential kernel.
        """
        requested = self.translation_workers
        if requested == 0 or requested == 1 or self._translation_disabled:
            return None
        from repro.invariants.translation import (
            TranslationPool,
            calibrate_parallel_translation,
        )

        if requested == "auto":
            if not calibrate_parallel_translation():
                self._translation_disabled = True
                return None
            workers = None  # pool default: cpu_count
        else:
            workers = int(requested)
        with self._pool_lock:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if self._translators is None:
                pool = TranslationPool(workers=workers)
                if not pool.available:
                    self._translation_disabled = True
                    return None
                self._translators = pool
            return self._translators

    def _effective_solver_options(self, request: SynthesisRequest) -> SolverOptions | None:
        """Request solver options over engine defaults, tightened by the deadline."""
        options = request.solver_options if request.solver_options is not None else self.solver_options
        if request.deadline is not None:
            options = options if options is not None else SolverOptions()
            limit = (
                float(request.deadline)
                if options.time_limit is None
                else min(options.time_limit, float(request.deadline))
            )
            options = replace(options, time_limit=limit)
        return options

    def _execute(
        self,
        request: SynthesisRequest,
        submission_id: int,
        solver: Solver | None,
        task: SynthesisTask | None,
        enumerator: RepresentativeEnumerator | None,
        deadline_epoch: float | None = None,
    ) -> SynthesisResponse:
        # A request is wire-clean when everything it needs round-trips the
        # JSON codec: no live solver/task/enumerator escape hatches, no
        # engine-level solver object, and the caller does not want the
        # in-process ``task`` back (``reduce_only``).  Only wire-clean
        # requests can hit the store or ship to a worker process.
        wire_clean = (
            solver is None
            and task is None
            and enumerator is None
            and self.solver is None
            and not request.reduce_only
        )
        # The persistent store short-circuits the whole request: an identical
        # request completed by any process against this root — including a
        # previous life of this one — is re-served from disk.  Store keys are
        # always computed from the *original* request (never a
        # deadline-clamped derivation), so warm hits are stable across queue
        # delays and restarts.
        store_key: str | None = None
        if self.store is not None and wire_clean:
            lookup_start = time.perf_counter()
            store_key = self.store.responses.key_for(request, repr(self.solver_options))
            served = self.store.responses.load(store_key)
            if served is not None:
                self._bump_store("store_response_hits")
                return self._serve_from_store(
                    served, request, submission_id, time.perf_counter() - lookup_start
                )
            self._bump_store("store_response_misses")
        if self._executor_kind == "process" and self.workers > 1 and wire_clean:
            # The production path: the whole job — reduce, solve, verify,
            # store/corpus writes — runs in a worker process.  The parent
            # does not write the store (the worker owns the write); it only
            # deduplicates identical in-flight requests.
            return self._execute_process_job(request, submission_id, deadline_epoch)
        exec_request = self._clamp_deadline(request, deadline_epoch)
        if exec_request.options.is_auto_degree and task is None:
            response = self._execute_escalation(exec_request, submission_id, solver, enumerator)
        else:
            response = self._execute_fixed(exec_request, submission_id, solver, task, enumerator)
        if store_key is not None and response.exception is None:
            if self.store.responses.store(store_key, response):
                self._bump_store("store_response_writes")
        return response

    @staticmethod
    def _clamp_deadline(
        request: SynthesisRequest, deadline_epoch: float | None
    ) -> SynthesisRequest:
        """Re-anchor a request's relative deadline to its admission instant.

        Only ever *tightens*: when less of the budget remains than the
        request's own ``deadline`` (queue time, a process hop), execution
        runs on a derived request carrying the remaining budget.  The
        original request — and therefore every content-addressed key — is
        never mutated.
        """
        if deadline_epoch is None or request.deadline is None:
            return request
        remaining = deadline_epoch - time.time()
        if remaining >= float(request.deadline):
            return request
        return dataclasses.replace(request, deadline=max(remaining, 0.001))

    # -- the process-backed job path ---------------------------------------------

    def _job_pool(self) -> ProcessWorkerPool:
        with self._pool_lock:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if self._jobs is None:
                self._jobs = ProcessWorkerPool(self.workers, self._worker_config())
            return self._jobs

    def _bump_process(self, key: str) -> None:
        with self._inflight_lock:
            self._process_stats[key] += 1

    def _process_dedup_key(self, request: SynthesisRequest) -> str:
        """In-flight dedup key: the same content hash the response store uses.

        ``request_id`` is excluded, so two clients racing the same program
        share one worker job; the engine's default solver options
        participate because they shape the solve.  Works with or without a
        persistent store.
        """
        from repro.store.views import ResponseStore

        return ResponseStore.key_for(request, repr(self.solver_options))

    def _execute_process_job(
        self, request: SynthesisRequest, submission_id: int, deadline_epoch: float | None
    ) -> SynthesisResponse:
        """Ship one synthesize job to a worker process (or ride a twin's).

        The first request for a given content key *owns* the worker job;
        identical requests arriving while it is in flight become *riders* on
        the owner's future and re-parse their own copy of the owner's wire
        envelope (``shared_solve=True``, like a dedup hit).  A worker crash
        mid-job becomes a structured ``status="error"`` envelope for the
        owner and every rider — never an exception out of the engine.
        """
        key = self._process_dedup_key(request)
        with self._inflight_lock:
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[key] = future
        if not owner:
            self._bump_process("process_jobs_shared")
            try:
                wire = future.result()
            except WorkerCrashError as exc:
                return self._crash_envelope(request, submission_id, exc)
            return self._envelope_from_wire(wire, request, submission_id, shared=True)
        self._bump_process("process_jobs")
        start = time.perf_counter()
        try:
            wire = self._job_pool().execute(request.to_dict(), deadline_epoch)
        except WorkerCrashError as exc:
            self._bump_process("process_jobs_failed")
            with self._inflight_lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            return self._crash_envelope(request, submission_id, exc)
        except BaseException as exc:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        with self._inflight_lock:
            self._inflight.pop(key, None)
        future.set_result(wire)
        return self._envelope_from_wire(
            wire,
            request,
            submission_id,
            shared=False,
            wall_seconds=time.perf_counter() - start,
        )

    def _envelope_from_wire(
        self,
        wire: str,
        request: SynthesisRequest,
        submission_id: int,
        shared: bool,
        wall_seconds: float | None = None,
    ) -> SynthesisResponse:
        """Parse a worker's envelope and stamp it for this submission.

        Riders get their own parsed copy (responses are mutable), flagged
        ``from_cache``/``shared_solve`` exactly like an in-memory dedup hit.
        """
        response = SynthesisResponse.from_dict(json.loads(wire))
        response.request_id = request.request_id
        response.submission_id = submission_id
        if shared:
            response.from_cache = True
            response.shared_solve = True
        if wall_seconds is not None:
            timings = dict(response.timings)
            timings["process_wall_seconds"] = wall_seconds
            response.timings = timings
        return response

    def _crash_envelope(
        self, request: SynthesisRequest, submission_id: int, exc: WorkerCrashError
    ) -> SynthesisResponse:
        return SynthesisResponse(
            mode=request.mode,
            status="error",
            request_id=request.request_id,
            submission_id=submission_id,
            error=ErrorInfo(type="WorkerCrashed", message=str(exc)),
        )

    def _serve_from_store(
        self,
        served: SynthesisResponse,
        request: SynthesisRequest,
        submission_id: int,
        seconds: float,
    ) -> SynthesisResponse:
        """Stamp a disk-served envelope for this submission (no recompute).

        Volatile bookkeeping is rewritten to reflect what actually happened
        *now*: zero reduction/solve work, every stage effectively cached, and
        the store lookup as the total cost.  The semantic payload (status,
        invariants, assignment, certificate, ...) is the stored one.
        """
        served.request_id = request.request_id
        served.submission_id = submission_id
        served.from_cache = True
        served.shared_solve = True
        served.served_from_store = True
        served.timings = {
            "reduction_seconds": 0.0,
            "solve_seconds": 0.0,
            "stages_from_cache": float(len(STAGE_NAMES)),
            "store_seconds": seconds,
            "total_seconds": seconds,
        }
        return served

    def _execute_escalation(
        self,
        request: SynthesisRequest,
        submission_id: int,
        solver: Solver | None,
        enumerator: RepresentativeEnumerator | None,
    ) -> SynthesisResponse:
        """Adaptive degree escalation: run the d = 1..max_degree ladder.

        Each rung is an ordinary fixed-degree execution (so it shares the
        degree-independent reduction stages and the solve-dedup table with
        everything else), under whatever remains of the request deadline.
        The first rung that yields an invariant wins — its response is
        returned, stamped with the full :class:`EscalationTrace`; errors at a
        rung (e.g. an objective the small template cannot express) are
        recorded and escalation continues.
        """
        total_start = time.perf_counter()
        attempts: list[EscalationAttempt] = []
        last_response: SynthesisResponse | None = None
        last_usable: SynthesisResponse | None = None
        final_degree: int | None = None
        exhausted = False
        degrees = request.options.escalation_degrees()
        plan: SchedulePlan | None = None
        if (
            self._schedule_mode(request) == "on"
            and solver is None
            and request.mode not in STRONG_MODES
        ):
            try:
                line_up = (
                    request.options.portfolio or DEFAULT_PORTFOLIO
                    if request.options.strategy == "portfolio"
                    else (request.options.strategy,)
                )
                plan = self._planner.plan(
                    self._request_features(request),
                    line_up=line_up,
                    max_degree=request.options.max_degree,
                )
            except Exception:  # pragma: no cover - defensive: corpus corruption
                plan = None
            if plan is not None and plan.start_degree is not None and plan.start_degree > 1:
                # Start at the predicted rung; the skipped lower rungs run
                # after the upward ladder as downward repair, so prediction
                # reorders the attempts but never drops one.
                degrees = ladder_for(plan.start_degree, request.options.max_degree)
        for degree in degrees:
            remaining: float | None = None
            if request.deadline is not None:
                remaining = float(request.deadline) - (time.perf_counter() - total_start)
                if remaining <= _ESCALATION_MIN_BUDGET:
                    attempts.append(EscalationAttempt(degree=degree, status=DEADLINE_SKIPPED))
                    exhausted = True
                    break
            derived = dataclasses.replace(
                request,
                options=replace(request.options, degree=degree),
                deadline=remaining,
            )
            start = time.perf_counter()
            # Rungs never record corpus rows themselves: the ladder records
            # one request-level row below, with the full escalation trace.
            response = self._execute_fixed(derived, submission_id, solver, None, enumerator, record=False)
            seconds = time.perf_counter() - start
            attempts.append(
                EscalationAttempt(
                    degree=degree,
                    status=response.status,
                    seconds=seconds,
                    reduction_seconds=response.timings.get("reduction_seconds", 0.0),
                    solve_seconds=response.timings.get("solve_seconds", 0.0),
                    from_cache=response.from_cache,
                    error=f"{response.error.type}: {response.error.message}" if response.error else None,
                )
            )
            last_response = response
            if response.status != "error":
                last_usable = response
            # A rung only wins outright when its invariant also passed the
            # requested verification tier; an "ok"-but-unverified rung is
            # kept as a fallback while escalation tries higher degrees for a
            # certifiable one.
            if response.status == "ok" and (
                response.verification is None or response.verification.get("verified")
            ):
                final_degree = degree
                break
        trace = EscalationTrace(
            attempts=tuple(attempts), final_degree=final_degree, exhausted_deadline=exhausted
        )
        # Prefer the winning rung; otherwise the last rung that at least ran
        # the solver; otherwise the last error.
        chosen = last_usable if final_degree is None else last_response
        if chosen is None:
            chosen = last_response
        if chosen is None:  # pragma: no cover - deadline validation keeps rung 1 alive
            chosen = SynthesisResponse(
                mode=request.mode,
                status="error",
                request_id=request.request_id,
                submission_id=submission_id,
                error=ErrorInfo(type="SynthesisError", message="escalation ran no degree"),
            )
        chosen.escalation = trace.to_dict()
        # Aggregate the ladder's timings over the winning rung's own — keeping
        # its stage_* breakdown and stages_from_cache visible.
        merged = dict(chosen.timings)
        merged.update(
            {
                "reduction_seconds": sum(a.reduction_seconds for a in attempts),
                "solve_seconds": sum(a.solve_seconds for a in attempts),
                "escalation_attempts": float(len(trace.degrees_tried)),
                "total_seconds": time.perf_counter() - total_start,
            }
        )
        if plan is not None and plan.start_degree is not None:
            merged["schedule_start_degree"] = float(plan.start_degree)
            self._bump_schedule(
                "schedule_degree_hits"
                if final_degree == plan.start_degree
                else "schedule_degree_misses"
            )
        chosen.timings = merged
        if solver is None:
            self._maybe_record(
                request,
                chosen,
                degree=final_degree if final_degree is not None else (
                    trace.degrees_tried[-1] if trace.degrees_tried else 0
                ),
                final_degree=final_degree,
                degrees_tried=tuple(trace.degrees_tried),
                enriched=False,
            )
        return chosen

    def _execute_fixed(
        self,
        request: SynthesisRequest,
        submission_id: int,
        solver: Solver | None,
        task: SynthesisTask | None,
        enumerator: RepresentativeEnumerator | None,
        record: bool = True,
    ) -> SynthesisResponse:
        total_start = time.perf_counter()
        timings: dict[str, float] = {}
        built: SynthesisTask | None = None
        try:
            job = request.job()
            if task is not None:
                built, from_cache = task, False
                timings["reduction_seconds"] = 0.0
            else:
                start = time.perf_counter()
                built, from_cache, report = self.cache.get_or_build_with_report(
                    job, translation_pool=self._translation_pool()
                )
                timings["reduction_seconds"] = time.perf_counter() - start
                timings.update(report.timings())
                self._record_translation(report)

            if request.reduce_only:
                timings["total_seconds"] = time.perf_counter() - total_start
                return SynthesisResponse(
                    mode=request.mode,
                    status="reduced",
                    request_id=request.request_id,
                    submission_id=submission_id,
                    statistics=dict(built.statistics),
                    timings=timings,
                    system_size=built.system.size,
                    from_cache=from_cache,
                    task=built,
                )

            certificate = None
            verification = None
            if request.mode in STRONG_MODES:
                start = time.perf_counter()
                chosen = enumerator
                if chosen is None:
                    options = self._effective_solver_options(request)
                    chosen = (
                        RepresentativeEnumerator(options=options)
                        if options is not None
                        else RepresentativeEnumerator()
                    )
                result = enumerate_task(built, chosen)
                timings["solve_seconds"] = time.perf_counter() - start
                shared = False
            else:
                solve_result, solve_seconds, shared, schedule_timings = self._weak_solve(
                    request, job, built, solver, task
                )
                timings["solve_seconds"] = solve_seconds
                timings.update(schedule_timings)
                exact_assignment = None
                if request.options.verify != "none" and solve_result.feasible:
                    from repro.certify.verify import verify_solution

                    remaining: float | None = None
                    if request.deadline is not None:
                        remaining = max(
                            0.0, float(request.deadline) - (time.perf_counter() - total_start)
                        )
                    outcome = verify_solution(
                        built,
                        solve_result,
                        request.options,
                        solver_options=self._effective_solver_options(request),
                        deadline_seconds=remaining,
                    )
                    self._record_verification(outcome)
                    if outcome.solve_result is not None:  # a repair round re-solved
                        solve_result = outcome.solve_result
                        shared = False
                        # Overwrite the dedup table with the repaired solve:
                        # identical future requests start from the verified
                        # solution instead of re-living the failing lift and
                        # the repair re-race.  The cached duration charges
                        # the repair race to the solve that produced the
                        # result, not just the rejected first attempt.
                        # (Verification itself is deliberately *not*
                        # deduplicated: the solve-level table covers the
                        # expensive stage, and concurrent identical verifies
                        # are deterministic duplicates, not divergences.)
                        if solver is None and task is None:
                            self._replace_cached_solve(
                                request, job, solve_result, solve_seconds + outcome.seconds
                            )
                    if outcome.certificate is not None:
                        certificate = outcome.certificate.to_dict()
                        exact_assignment = outcome.exact_assignment
                    verification = outcome.to_dict()
                    if certificate is not None and self.store is not None:
                        # File the exact witness under its own fingerprint so
                        # auditors can re-load and re-check it by name.
                        cert_sha, wrote = self.store.certificates.put(certificate)
                        verification["certificate_sha"] = cert_sha
                        if wrote:
                            self._bump_store("store_certificates_stored")
                    timings["verify_seconds"] = outcome.seconds
                result = result_from_solution(
                    built,
                    solve_result,
                    solve_seconds=solve_seconds,
                    exact_assignment=exact_assignment,
                )
                if verification is not None:
                    result.statistics["verify_repair_rounds"] = float(
                        verification.get("repair_rounds", 0)
                    )
                    result.statistics["verified"] = float(bool(verification.get("verified")))

            timings["total_seconds"] = time.perf_counter() - total_start
            response = response_from_result(
                request,
                result,
                submission_id=submission_id,
                timings=timings,
                from_cache=from_cache,
                shared_solve=shared,
                task=built,
                certificate=certificate,
                verification=verification,
            )
            # Escape-hatch submissions (live solver / pre-built task) carry
            # inputs the corpus fingerprints cannot see; never record them.
            if record and solver is None and task is None:
                degree = request.options.degree
                self._maybe_record(
                    request,
                    response,
                    degree=int(degree) if isinstance(degree, int) else 0,
                    shared=shared,
                )
            return response
        except Exception as exc:  # per-request failures become structured errors
            timings["total_seconds"] = time.perf_counter() - total_start
            return SynthesisResponse(
                mode=request.mode,
                status="error",
                request_id=request.request_id,
                submission_id=submission_id,
                timings=timings,
                error=ErrorInfo.from_exception(exc),
                task=built,
                exception=exc,
            )

    def _weak_solve(
        self,
        request: SynthesisRequest,
        job,
        task: SynthesisTask,
        solver_override: Solver | None,
        task_override: SynthesisTask | None,
    ) -> tuple[SolverResult, float, bool, dict[str, float]]:
        """Run (or share) the Step-4 solve.

        Returns ``(result, seconds, shared, schedule_timings)`` — the last a
        (possibly empty) dict of ``schedule_*`` entries merged into the
        response timings when the corpus scheduler predicted this solve.
        """
        options = self._effective_solver_options(request)
        schedule: dict[str, float] = {}
        plan: SchedulePlan | None = None
        if solver_override is not None or self.solver is not None:
            solver = solver_override if solver_override is not None else self.solver
            # An explicit solver keeps its own options, but the request's
            # deadline is a hard per-request bound: tighten the solver's
            # time_limit on a copy (never mutate a caller's solver).
            if request.deadline is not None:
                deadline = float(request.deadline)
                limit = (
                    deadline
                    if solver.options.time_limit is None
                    else min(solver.options.time_limit, deadline)
                )
                if limit != solver.options.time_limit:
                    solver = copy.copy(solver)
                    solver.options = replace(solver.options, time_limit=limit)
        else:
            if (
                task_override is None
                and job.options.strategy == "portfolio"
                and self._schedule_mode(request) == "on"
            ):
                plan = self._plan_solve(request, job, task)
            if plan is not None and plan.predicted:
                # Predicted winner first, rest of the line-up staggered
                # behind the learned grace period — reordered, never pruned.
                solver = PortfolioSolver(
                    options,
                    strategies=plan.strategy_order,
                    stagger_seconds=plan.stagger_seconds,
                )
                schedule = {
                    "schedule_predicted": 1.0,
                    "schedule_stagger_seconds": plan.stagger_seconds,
                    "schedule_neighbors": float(plan.neighbors),
                    "schedule_confidence": plan.confidence,
                }
            else:
                solver = make_solver(
                    job.options.strategy, options=options, portfolio=job.options.portfolio
                )

        # Escape-hatch submissions (live solver or pre-built task) bypass the
        # dedup table: their inputs are not captured by the request's keys.
        if solver_override is not None or task_override is not None:
            result, seconds = self._run_solve(solver, task.system)
            return result, seconds, False, schedule

        # The persistent solve store is the cross-process sibling of the
        # in-memory dedup table; an engine-level live solver is not captured
        # by content keys, so it opts the engine out.
        store_key: str | None = None
        if self.store is not None and self.solver is None:
            store_key = self.store.solves.key_for(
                request, self._schedule_mode(request) == "on", repr(options)
            )
        key = self._solve_dedup_key(request, job)
        with self._solve_lock:
            future = self._solves.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._solves[key] = future
                if self.max_cached_solves is not None:
                    # FIFO bound: dicts preserve insertion order, so the
                    # oldest entries are evicted first.  An evicted in-flight
                    # future stays alive for whoever already holds it.
                    while len(self._solves) > self.max_cached_solves:
                        self._solves.pop(next(iter(self._solves)))
        if not owner:
            result, seconds = future.result()
            return result, seconds, True, schedule
        if store_key is not None:
            stored = self.store.solves.load(store_key)
            if stored is not None:
                # Another process (or a previous life of this one) already
                # paid for this solve: publish it to waiters and skip Step 4.
                self._bump_store("store_solve_hits")
                future.set_result(stored)
                return stored[0], stored[1], True, schedule
        try:
            pair = self._run_solve(solver, task.system)
        except BaseException as exc:
            future.set_exception(exc)
            with self._solve_lock:
                # Failed solves are not cached: a resubmission retries.
                self._solves.pop(key, None)
            raise
        future.set_result(pair)
        if store_key is not None and self.store.solves.store(store_key, pair[0], pair[1]):
            self._bump_store("store_solve_writes")
        if plan is not None and plan.predicted:
            self._bump_schedule(
                "schedule_strategy_hits"
                if pair[0].strategy == plan.primary
                else "schedule_strategy_misses"
            )
        return pair[0], pair[1], False, schedule

    def _solve_dedup_key(self, request: SynthesisRequest, job) -> tuple:
        """The solve-dedup table key of a (non-escape-hatch) request.

        A scheduler-``"on"`` solve may race a reordered, staggered portfolio,
        so it never shares a table entry with the unscheduled shape of the
        same request (``"record-only"`` solves behave identically to
        ``"off"`` and do share).
        """
        options = self._effective_solver_options(request)
        return (
            job.solve_key(),
            self._schedule_mode(request) == "on",
            ("engine-solver", request.deadline)
            if self.solver is not None
            else ("resolved", repr(options)),
        )

    def _replace_cached_solve(
        self, request: SynthesisRequest, job, result: SolverResult, seconds: float
    ) -> None:
        """Overwrite a dedup entry with a repair-round result (already resolved)."""
        future: Future = Future()
        future.set_result((result, seconds))
        key = self._solve_dedup_key(request, job)
        with self._solve_lock:
            if key in self._solves:
                self._solves[key] = future
        if self.store is not None and self.solver is None:
            options = self._effective_solver_options(request)
            store_key = self.store.solves.key_for(
                request, self._schedule_mode(request) == "on", repr(options)
            )
            if self.store.solves.store(store_key, result, seconds, overwrite=True):
                self._bump_store("store_solve_writes")

    def _run_solve(self, solver: Solver, system) -> tuple[SolverResult, float]:
        if self._executor_kind == "solve-process" and self.workers > 1:
            pair = self._process_pool().submit(_solve_system, solver, system).result()
        else:
            pair = _solve_system(solver, system)
        # Kernel-evaluation accounting of the batched Step-4 engines, surfaced
        # through :meth:`stats` next to the cache/dedup counters.
        with self._solver_stats_lock:
            self._solver_stats["solver_residual_evaluations"] += pair[0].residual_evaluations
            self._solver_stats["solver_jacobian_evaluations"] += pair[0].jacobian_evaluations
            self._solver_stats["solver_batch_width_max"] = max(
                self._solver_stats["solver_batch_width_max"], pair[0].batch_width
            )
        return pair


# ---------------------------------------------------------------------------
# The module-level default engine (what the paper-named functions run on)
# ---------------------------------------------------------------------------

_default_engine: Engine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> Engine:
    """The shared module-level engine backing the four paper-named functions.

    Sequential (``workers=0``) and lazily created; its task cache persists
    across calls, so repeated syntheses of the same program reuse the Step 1-3
    reduction.  Both of its caches are size-bounded (FIFO) so a long-running
    process calling the paper-named functions over many distinct programs
    stays at a bounded footprint; use :func:`reset_default_engine` to drop
    the state entirely.
    """
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None or _default_engine.closed:
            _default_engine = Engine(cache=TaskCache(max_entries=128), max_cached_solves=256)
        return _default_engine


def reset_default_engine() -> None:
    """Close and discard the module-level engine (and its caches)."""
    global _default_engine
    with _default_engine_lock:
        if _default_engine is not None:
            _default_engine.close()
            _default_engine = None
