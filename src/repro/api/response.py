"""The synthesis response envelope: status, results and structured errors.

A :class:`SynthesisResponse` is what the :class:`~repro.api.engine.Engine`
returns for every request — including failed ones, which carry an
:class:`ErrorInfo` instead of raising, so one bad request can never take down
a batch.  The envelope is JSON-serialisable: invariants are rendered both
pretty-printed (per-label assertion text) and machine-readable (per-atom
polynomial text + strictness), alongside the raw numeric assignment.

In-process consumers additionally get the rich
:class:`~repro.invariants.result.SynthesisResult` (and the underlying
:class:`~repro.invariants.synthesis.SynthesisTask`) on the ``result`` /
``task`` fields; those fields do not travel through JSON.

Two responses compare equal when their :meth:`SynthesisResponse.fingerprint`
matches — the semantic payload (mode, status, invariants, assignment, solver
status, strategy) — ignoring volatile bookkeeping such as timings, cache
flags and submission ids.  This is the equality used by the round-trip
guarantee: serialise a request, deserialise it, re-synthesise, and the new
response equals the old one.
"""

from __future__ import annotations

import json
import traceback as _traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.api.errors import RequestValidationError
from repro.invariants.result import Invariant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.request import SynthesisRequest
    from repro.invariants.result import SynthesisResult
    from repro.invariants.synthesis import SynthesisTask

#: The statuses a response can report.
STATUSES = ("ok", "no_invariant", "reduced", "error")


@dataclass(frozen=True)
class ErrorInfo:
    """Structured per-request failure information (instead of a raised exception)."""

    type: str
    message: str
    traceback: str | None = None

    @staticmethod
    def from_exception(exc: BaseException) -> "ErrorInfo":
        return ErrorInfo(type=type(exc).__name__, message=str(exc), traceback=_traceback.format_exc())

    def to_dict(self) -> dict:
        return {"type": self.type, "message": self.message, "traceback": self.traceback}

    @staticmethod
    def from_dict(payload: Mapping) -> "ErrorInfo":
        return ErrorInfo(
            type=str(payload.get("type", "Exception")),
            message=str(payload.get("message", "")),
            traceback=payload.get("traceback"),
        )


def invariant_to_dict(invariant: Invariant) -> dict:
    """Serialise an invariant: pretty text plus machine-readable atoms per label."""
    assertions = []
    for label, assertion in invariant:
        assertions.append(
            {
                "function": label.function,
                "index": label.index,
                "kind": label.kind.value,
                "text": str(assertion),
                "atoms": [
                    {"polynomial": str(atom.polynomial), "strict": atom.strict} for atom in assertion
                ],
            }
        )
    postconditions = [
        {
            "function": function,
            "text": str(assertion),
            "atoms": [{"polynomial": str(atom.polynomial), "strict": atom.strict} for atom in assertion],
        }
        for function, assertion in sorted(invariant.postconditions.items())
    ]
    return {"assertions": assertions, "postconditions": postconditions}


@dataclass(eq=False)
class SynthesisResponse:
    """Everything the engine reports for one request.

    Attributes
    ----------
    mode, request_id:
        Echoed from the request.
    submission_id:
        The engine's monotonically-increasing id for this submission (the key
        for matching out-of-order :meth:`~repro.api.engine.Engine.map`
        results back to their requests).
    status:
        ``"ok"`` (invariant found), ``"no_invariant"`` (solver finished
        without one), ``"reduced"`` (reduce-only run) or ``"error"``.
    solver_status, strategy:
        The Step-4 solver's own status string and the winning strategy.
    invariants:
        JSON-ready invariant renderings (see :func:`invariant_to_dict`).
    assignment:
        The numeric values of all unknowns in the best solution.
    statistics:
        Timings and counts recorded by the reduction and the solver.
    timings:
        ``reduction_seconds`` / ``solve_seconds`` / ``total_seconds`` as
        observed by the engine.
    system_size:
        The paper's ``|S|`` (size of the Step-3 quadratic system).
    from_cache, shared_solve:
        Whether the reduction was reused from the task cache, and whether the
        solve was shared with an identical in-flight/completed request.
    served_from_store:
        Whether the whole envelope was re-served from the engine's persistent
        content-addressed store (:mod:`repro.store`) — nothing was recomputed,
        possibly not even by this process or since the last restart.
    escalation:
        For ``degree="auto"`` requests, the JSON form of the
        :class:`~repro.reduction.escalate.EscalationTrace`: one entry per
        tried degree with its status and timings, plus the minimal feasible
        degree (``final_degree``).  ``None`` for fixed-degree requests.
    certificate:
        For ``verify="exact"`` requests that verified, the JSON form of the
        exact :class:`~repro.certify.certificate.Certificate` — rebuild it
        with ``Certificate.from_dict`` and re-validate independently with
        :func:`repro.certify.check_certificate`.  ``None`` otherwise.
    verification:
        Verification summary (``verify != "none"``): the tier, whether the
        result verified, repair rounds used, the lift denominator, timings
        and the failure reason when unverified.  ``None`` when verification
        was not requested.
    error:
        Structured failure info when ``status == "error"``.
    result, task, exception:
        In-process extras (the rich result, the Step 1-3 task and the original
        exception object); excluded from the JSON form.
    """

    mode: str
    status: str
    request_id: str | None = None
    submission_id: int | None = None
    solver_status: str = ""
    strategy: str | None = None
    invariants: list[dict] = field(default_factory=list)
    assignment: dict[str, float] | None = None
    statistics: dict[str, float] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    system_size: int | None = None
    from_cache: bool = False
    shared_solve: bool = False
    served_from_store: bool = False
    escalation: dict | None = None
    certificate: dict | None = None
    verification: dict | None = None
    error: ErrorInfo | None = None
    result: "SynthesisResult | None" = field(default=None, repr=False)
    task: "SynthesisTask | None" = field(default=None, repr=False)
    exception: BaseException | None = field(default=None, repr=False)

    # -- outcome queries ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether the request executed without error (an invariant may still be absent)."""
        return self.status != "error"

    @property
    def success(self) -> bool:
        """Whether at least one invariant was synthesized."""
        return self.status == "ok"

    # -- equality ----------------------------------------------------------------

    def fingerprint(self) -> dict:
        """The semantic payload used for equality (volatile bookkeeping excluded)."""
        return {
            "mode": self.mode,
            "status": self.status,
            "request_id": self.request_id,
            "solver_status": self.solver_status,
            "strategy": self.strategy,
            "invariants": self.invariants,
            "assignment": self.assignment,
            "system_size": self.system_size,
            "error": (self.error.type, self.error.message) if self.error else None,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SynthesisResponse):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        # Hash follows fingerprint equality (a custom __eq__ would otherwise
        # set __hash__ to None and make responses unusable in sets/dicts).
        # Envelopes are treated as read-only once emitted.
        return hash(json.dumps(self.fingerprint(), sort_keys=True))

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-ready form (in-process ``result``/``task`` fields excluded)."""
        return {
            "mode": self.mode,
            "status": self.status,
            "request_id": self.request_id,
            "submission_id": self.submission_id,
            "solver_status": self.solver_status,
            "strategy": self.strategy,
            "invariants": self.invariants,
            "assignment": self.assignment,
            "statistics": self.statistics,
            "timings": self.timings,
            "system_size": self.system_size,
            "from_cache": self.from_cache,
            "shared_solve": self.shared_solve,
            "served_from_store": self.served_from_store,
            "escalation": self.escalation,
            "certificate": self.certificate,
            "verification": self.verification,
            "error": self.error.to_dict() if self.error else None,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(payload: Mapping) -> "SynthesisResponse":
        """Rebuild a response envelope from its JSON form.

        Strict towards malformed documents: any shape the codec cannot
        coerce — a truncated blob that still parses, a field of the wrong
        container type — raises a structured
        :class:`~repro.api.errors.RequestValidationError`, never a bare
        ``TypeError``/``ValueError``.  This is the contract the persistent
        store's miss-and-repair boundary relies on.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError.single("$", "expected a JSON object")
        status = payload.get("status")
        if status not in STATUSES:
            raise RequestValidationError.single(
                "status", f"unknown status {status!r}; known statuses: {', '.join(STATUSES)}"
            )
        error = payload.get("error")
        try:
            return SynthesisResponse(
                mode=str(payload.get("mode", "weak")),
                status=status,
                request_id=payload.get("request_id"),
                submission_id=payload.get("submission_id"),
                solver_status=str(payload.get("solver_status", "")),
                strategy=payload.get("strategy"),
                invariants=list(payload.get("invariants") or []),
                assignment=dict(payload["assignment"]) if payload.get("assignment") is not None else None,
                statistics=dict(payload.get("statistics") or {}),
                timings=dict(payload.get("timings") or {}),
                system_size=payload.get("system_size"),
                from_cache=bool(payload.get("from_cache", False)),
                shared_solve=bool(payload.get("shared_solve", False)),
                served_from_store=bool(payload.get("served_from_store", False)),
                escalation=dict(payload["escalation"]) if payload.get("escalation") is not None else None,
                certificate=dict(payload["certificate"]) if payload.get("certificate") is not None else None,
                verification=dict(payload["verification"]) if payload.get("verification") is not None else None,
                error=ErrorInfo.from_dict(error) if error else None,
            )
        except RequestValidationError:
            raise
        except (TypeError, ValueError, AttributeError, KeyError) as exc:
            raise RequestValidationError.single(
                "$", f"malformed response document: {exc}"
            ) from exc

    @staticmethod
    def from_json(text: str) -> "SynthesisResponse":
        try:
            payload = json.loads(text)
        except (TypeError, json.JSONDecodeError) as exc:
            raise RequestValidationError.single("$", f"not valid JSON: {exc}") from exc
        return SynthesisResponse.from_dict(payload)


def response_from_result(
    request: "SynthesisRequest",
    result: "SynthesisResult",
    *,
    submission_id: int | None = None,
    timings: dict[str, float] | None = None,
    from_cache: bool = False,
    shared_solve: bool = False,
    task: "SynthesisTask | None" = None,
    certificate: dict | None = None,
    verification: dict | None = None,
) -> SynthesisResponse:
    """Wrap a rich :class:`~repro.invariants.result.SynthesisResult` into an envelope."""
    return SynthesisResponse(
        mode=request.mode,
        status="ok" if result.success else "no_invariant",
        request_id=request.request_id,
        submission_id=submission_id,
        solver_status=result.solver_status,
        strategy=result.strategy,
        invariants=[invariant_to_dict(invariant) for invariant in result.invariants],
        assignment=dict(result.assignment) if result.assignment is not None else None,
        statistics=dict(result.statistics),
        timings=dict(timings or {}),
        system_size=result.system_size,
        from_cache=from_cache,
        shared_solve=shared_solve,
        certificate=certificate,
        verification=verification,
        result=result,
        task=task,
    )
