"""The process-backed synthesis executor: whole jobs over a JSON wire protocol.

:class:`ProcessWorkerPool` owns a pool of persistent worker processes, each
holding one warm sequential :class:`~repro.api.engine.Engine` (built once per
worker by the pool initializer and reused for every job — its
:class:`~repro.pipeline.cache.TaskCache`, solve-dedup table and scheduler
stay hot across jobs).  A job ships the *entire* synthesize path — Steps 1-3
reduction, the Step-4 solve, verification and repair — to a worker, so
concurrent cold traffic runs on as many cores as there are workers instead of
serialising on the parent's GIL.

The wire protocol is deliberately identical to the HTTP one:

* **in** — one JSON document ``{"request": <SynthesisRequest.to_dict()>,
  "deadline_epoch": <float | null>}``; the request is rebuilt in the worker
  with the strict :meth:`~repro.api.request.SynthesisRequest.from_dict`
  codec, and the epoch anchors the request's wall-clock deadline across the
  process boundary (queue time counts against the budget).
* **out** — the :meth:`~repro.api.response.SynthesisResponse.to_dict`
  envelope as one JSON string, re-parsed by the parent with the strict
  response codec.

Nothing symbolic ever crosses the boundary — no pickled live ``Polynomial``
or ``SynthesisTask`` objects, the same cheap-wire-format rule the
shared-memory translation pool follows.  Store and corpus writes happen *in
the workers* (both layers are process-safe by construction), so a store hit
in the parent still short-circuits dispatch entirely, and everything a worker
computes is immediately visible to the parent and to sibling workers.

A worker that dies mid-job (OOM kill, native crash, ``os._exit``) surfaces as
:class:`WorkerCrashError`; the pool discards the broken executor and rebuilds
it lazily on the next job, so one crash costs one request — never the engine.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

#: Fault-injection hook (tests, chaos drills): when this environment variable
#: is set at engine construction, a worker receiving a request whose
#: ``request_id`` equals its value exits mid-job with :data:`FAULT_EXIT_CODE`
#: — exercising the crash path deterministically.  Unset in production.
FAULT_MARKER_ENV = "REPRO_PROCESS_FAULT_MARKER"

#: Exit code of a fault-injected worker crash.
FAULT_EXIT_CODE = 3


class WorkerCrashError(Exception):
    """A worker process died before returning its job's response envelope."""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its engine — JSON-able by design.

    The config crosses the process boundary as a plain dict of primitives
    (the same rule as the job payloads): store and corpus travel as paths,
    solver options as their field dict, never as live objects.
    """

    store_root: str | None = None
    corpus_path: str | None = None
    scheduler: str = "off"
    solver_options: dict | None = None
    max_cached_solves: int | None = 512
    fault_marker: str | None = None


# ---------------------------------------------------------------------------
# Worker-process side (module-level for picklability under every start method)
# ---------------------------------------------------------------------------

_WORKER_ENGINE = None
_WORKER_CONFIG: WorkerConfig | None = None


def _worker_init(config_fields: dict) -> None:
    """Pool initializer: build this worker's warm sequential engine once."""
    global _WORKER_ENGINE, _WORKER_CONFIG
    from repro.api.engine import Engine
    from repro.solvers.base import SolverOptions

    config = WorkerConfig(**config_fields)
    solver_options = (
        SolverOptions(**config.solver_options) if config.solver_options is not None else None
    )
    _WORKER_CONFIG = config
    _WORKER_ENGINE = Engine(
        workers=0,
        solver_options=solver_options,
        scheduler=config.scheduler,
        corpus=config.corpus_path,
        store=config.store_root,
        max_cached_solves=config.max_cached_solves,
    )


def _worker_warmup(_: int) -> int:
    """No-op job used to fork every worker eagerly from the constructing thread."""
    return os.getpid()


def run_job(payload: str) -> str:
    """Execute one synthesize job in this worker: JSON document in, JSON out.

    The worker engine does everything the parent would have done in-process —
    stage-cached reduction, solve dedup, verification, store/corpus writes —
    and the returned envelope is exactly what
    :meth:`~repro.api.response.SynthesisResponse.to_dict` emits (serialised
    with the store's ``default=str`` codec, so exact-rational certificate
    entries travel as text just like on disk and over HTTP).
    """
    from repro.api.request import SynthesisRequest

    job = json.loads(payload)
    request = SynthesisRequest.from_dict(job["request"])
    config = _WORKER_CONFIG
    if config is not None and config.fault_marker and request.request_id == config.fault_marker:
        os._exit(FAULT_EXIT_CODE)  # fault injection: die exactly like a native crash
    response = _WORKER_ENGINE.synthesize(request, deadline_epoch=job.get("deadline_epoch"))
    return json.dumps(response.to_dict(), default=str)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ProcessWorkerPool:
    """A persistent pool of synthesis worker processes speaking JSON.

    Thread-safe: the engine's worker threads submit jobs concurrently.  A
    broken pool (worker killed mid-job) is discarded and rebuilt lazily on
    the next job; the in-flight job that observed the crash raises
    :class:`WorkerCrashError` for its caller to convert into a structured
    ``status="error"`` envelope.
    """

    def __init__(self, workers: int, config: WorkerConfig) -> None:
        if workers < 1:
            raise ValueError(f"process pool needs at least one worker, got {workers}")
        self.workers = workers
        self.config = config
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(dataclasses.asdict(self.config),),
                )
            return self._executor

    def warm(self) -> None:
        """Fork (and engine-initialise) every worker now, from this thread.

        Called at engine construction so workers are spawned from the
        constructing thread — before the engine's own worker threads exist —
        rather than mid-request from a thread-pool thread.
        """
        executor = self._ensure()
        list(executor.map(_worker_warmup, range(self.workers)))

    def close(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- jobs --------------------------------------------------------------------

    def execute(self, request_document: dict, deadline_epoch: float | None = None) -> str:
        """Run one job on a worker (blocking); returns the envelope JSON.

        Raises :class:`WorkerCrashError` when the worker dies mid-job; any
        other exception a worker raises travels back as itself (the worker
        engine's contract makes that a programming error, not a request
        failure — request failures arrive as ``status="error"`` envelopes).
        """
        payload = json.dumps(
            {"request": request_document, "deadline_epoch": deadline_epoch}, default=str
        )
        executor = self._ensure()
        try:
            return executor.submit(run_job, payload).result()
        except BrokenProcessPool as exc:
            self._discard(executor)
            raise WorkerCrashError(
                "synthesis worker process died mid-job; the pool has been rebuilt"
            ) from exc

    def _discard(self, broken: ProcessPoolExecutor) -> None:
        """Drop a broken executor so the next job gets a fresh pool."""
        with self._lock:
            if self._executor is broken:
                self._executor = None
        broken.shutdown(wait=False, cancel_futures=True)

    # -- introspection -----------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (diagnostics and crash tests)."""
        with self._lock:
            executor = self._executor
        if executor is None or executor._processes is None:  # noqa: SLF001 - stdlib has no public view
            return []
        return list(executor._processes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cold" if self._executor is None else f"{len(self.worker_pids())} live"
        return f"ProcessWorkerPool(workers={self.workers}, {state})"
