"""repro.api — the typed service surface of the library.

Every caller — library user, batch pipeline, the ``repro.bench`` CLI, a
future HTTP/queue front-end — goes through the same front door:

>>> from repro.api import Engine, SynthesisRequest
>>> with Engine(workers=4) as engine:                       # doctest: +SKIP
...     request = SynthesisRequest(program=source, mode="weak",
...                                precondition={"sum": {1: "n >= 1"}})
...     for response in engine.map([request, *more]):
...         print(response.submission_id, response.status)

Requests and responses round-trip through JSON (``to_json``/``from_json``);
malformed documents raise a structured
:class:`~repro.api.errors.RequestValidationError` naming each offending
field.  Per-request synthesis failures never raise out of the engine — they
arrive as ``status="error"`` responses carrying an
:class:`~repro.api.response.ErrorInfo`.
"""

from repro.api.engine import (
    Engine,
    SynthesisHandle,
    default_engine,
    reset_default_engine,
)
from repro.api.errors import EngineClosedError, RequestValidationError
from repro.api.request import (
    MODES,
    STRONG_MODES,
    SynthesisRequest,
    objective_from_dict,
    objective_to_dict,
    precondition_to_spec,
)
from repro.api.response import (
    ErrorInfo,
    SynthesisResponse,
    invariant_to_dict,
    response_from_result,
)

__all__ = [
    "Engine",
    "EngineClosedError",
    "ErrorInfo",
    "MODES",
    "RequestValidationError",
    "STRONG_MODES",
    "SynthesisHandle",
    "SynthesisRequest",
    "SynthesisResponse",
    "default_engine",
    "invariant_to_dict",
    "objective_from_dict",
    "objective_to_dict",
    "precondition_to_spec",
    "reset_default_engine",
    "response_from_result",
]
