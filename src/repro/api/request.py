"""The typed synthesis request: one envelope for all four paper algorithms.

A :class:`SynthesisRequest` unifies ``WeakInvSynth``, ``StrongInvSynth`` and
their recursive variants behind a single ``mode`` switch, carries the program
(source text or AST), the pre-condition, the objective and every per-request
knob (synthesis options, solver options, a wall-clock deadline), and
round-trips losslessly through JSON — so the same value works as a library
call argument, a queue message and an HTTP body.

The JSON codecs in this module are strict: unknown fields, wrong types and
out-of-range values raise a structured
:class:`~repro.api.errors.RequestValidationError` naming every offending
field, never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.errors import RequestValidationError
from repro.errors import ReproError
from repro.invariants.synthesis import SynthesisOptions
from repro.lang.ast_nodes import Program
from repro.lang.pretty import pretty_print
from repro.pipeline.jobs import SynthesisJob
from repro.polynomial.parse import parse_polynomial
from repro.solvers.base import SolverOptions
from repro.spec.objectives import (
    FeasibilityObjective,
    LinearCoefficientObjective,
    Objective,
    TargetInvariantObjective,
    TargetPostconditionObjective,
)
from repro.spec.preconditions import Precondition

#: The four algorithm entry points of the paper, as request modes.
MODES = ("weak", "strong", "rec-weak", "rec-strong")

#: Modes that run the representative-set enumeration instead of a single solve.
STRONG_MODES = ("strong", "rec-strong")


# ---------------------------------------------------------------------------
# Objective codec
# ---------------------------------------------------------------------------

_OBJECTIVE_KINDS = {
    FeasibilityObjective: "feasibility",
    TargetInvariantObjective: "target-invariant",
    TargetPostconditionObjective: "target-postcondition",
    LinearCoefficientObjective: "linear-coefficients",
}


def objective_to_dict(objective: Objective) -> dict:
    """Serialise an objective to its JSON form (polynomials become text)."""
    kind = _OBJECTIVE_KINDS.get(type(objective))
    if kind is None:
        raise RequestValidationError.single(
            "objective", f"objective type {type(objective).__name__!r} has no JSON form"
        )
    if isinstance(objective, FeasibilityObjective):
        return {"kind": kind}
    if isinstance(objective, TargetInvariantObjective):
        return {
            "kind": kind,
            "function": objective.function,
            "label_index": objective.label_index,
            "target": str(objective.target),
            "conjunct": objective.conjunct,
            "normalise": objective.normalise,
        }
    if isinstance(objective, TargetPostconditionObjective):
        return {
            "kind": kind,
            "function": objective.function,
            "target": str(objective.target),
            "conjunct": objective.conjunct,
        }
    return {"kind": kind, "weights": {name: float(w) for name, w in objective.weights.items()}}


def objective_from_dict(payload: Mapping, field_path: str = "objective") -> Objective:
    """Rebuild an objective from its JSON form (inverse of :func:`objective_to_dict`)."""
    if not isinstance(payload, Mapping):
        raise RequestValidationError.single(field_path, "expected an object with a 'kind' field")
    kind = payload.get("kind")
    known = {name: cls for cls, name in _OBJECTIVE_KINDS.items()}
    if kind not in known:
        raise RequestValidationError.single(
            f"{field_path}.kind", f"unknown objective kind {kind!r}; known kinds: {', '.join(known)}"
        )
    data = {key: value for key, value in payload.items() if key != "kind"}
    try:
        if kind == "feasibility":
            if data:
                raise RequestValidationError.single(
                    field_path, f"feasibility objective takes no fields, got {sorted(data)}"
                )
            return FeasibilityObjective()
        if kind in ("target-invariant", "target-postcondition"):
            data["target"] = parse_polynomial(str(data.get("target", "")))
        return known[kind](**data)
    except RequestValidationError:
        raise
    except (ReproError, TypeError, ValueError) as exc:
        raise RequestValidationError.single(field_path, str(exc)) from exc


# ---------------------------------------------------------------------------
# Precondition codec
# ---------------------------------------------------------------------------


def precondition_to_spec(precondition) -> dict[str, dict[int, str]] | None:
    """A precondition's nested-dict textual form (JSON-ready).

    Textual specs pass through (normalised to ``int`` label keys);
    :class:`~repro.spec.preconditions.Precondition` objects are rendered back
    to per-label assertion text, which re-parses to an equivalent object.
    """
    if precondition is None:
        return None
    if isinstance(precondition, Precondition):
        spec: dict[str, dict[int, str]] = {}
        for label, assertion in precondition.assertions.items():
            if assertion.is_true():
                continue
            spec.setdefault(label.function, {})[label.index] = str(assertion)
        return spec or None
    return {
        str(function): {int(index): str(text) for index, text in per_label.items()}
        for function, per_label in precondition.items()
    }


def _validate_precondition(value, errors: list[dict[str, str]]):
    """Normalise/validate a precondition field; returns the canonical value."""
    if value is None or isinstance(value, Precondition):
        return value
    if not isinstance(value, Mapping):
        errors.append(
            {
                "field": "precondition",
                "reason": "expected null, a Precondition, or {function: {label_index: assertion}}",
            }
        )
        return None
    normalised: dict[str, dict[int, str]] = {}
    for function, per_label in value.items():
        if not isinstance(function, str) or not isinstance(per_label, Mapping):
            errors.append(
                {
                    "field": f"precondition.{function}",
                    "reason": "expected {function name: {label_index: assertion text}}",
                }
            )
            continue
        inner: dict[int, str] = {}
        for index, text in per_label.items():
            try:
                index_int = int(index)
            except (TypeError, ValueError):
                errors.append(
                    {
                        "field": f"precondition.{function}.{index!r}",
                        "reason": "label index must be an integer",
                    }
                )
                continue
            if not isinstance(text, str):
                errors.append(
                    {
                        "field": f"precondition.{function}.{index_int}",
                        "reason": "assertion must be a string",
                    }
                )
                continue
            inner[index_int] = text
        normalised[function] = inner
    return normalised


# ---------------------------------------------------------------------------
# Options codecs
# ---------------------------------------------------------------------------


def _options_to_dict(options: SynthesisOptions) -> dict:
    payload = dataclasses.asdict(options)
    payload["portfolio"] = list(options.portfolio)
    return payload


def _options_from_dict(payload: Mapping, field_path: str = "options") -> SynthesisOptions:
    if not isinstance(payload, Mapping):
        raise RequestValidationError.single(field_path, "expected an object of synthesis options")
    known = {f.name for f in dataclasses.fields(SynthesisOptions)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestValidationError.single(
            field_path, f"unknown option fields {unknown}; known fields: {', '.join(sorted(known))}"
        )
    data = dict(payload)
    if "portfolio" in data:
        if not isinstance(data["portfolio"], (list, tuple)):
            raise RequestValidationError.single(f"{field_path}.portfolio", "expected a list of strategy names")
        data["portfolio"] = tuple(data["portfolio"])
    try:
        return SynthesisOptions(**data)
    except (ReproError, TypeError, ValueError) as exc:
        raise RequestValidationError.single(field_path, str(exc)) from exc


def _solver_options_from_dict(payload: Mapping, field_path: str = "solver_options") -> SolverOptions:
    if not isinstance(payload, Mapping):
        raise RequestValidationError.single(field_path, "expected an object of solver options")
    known = {f.name for f in dataclasses.fields(SolverOptions)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestValidationError.single(
            field_path, f"unknown solver option fields {unknown}; known fields: {', '.join(sorted(known))}"
        )
    try:
        return SolverOptions(**payload)
    except (TypeError, ValueError) as exc:
        raise RequestValidationError.single(field_path, str(exc)) from exc


# ---------------------------------------------------------------------------
# The request
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SynthesisRequest:
    """One synthesis request against the :class:`~repro.api.engine.Engine`.

    Attributes
    ----------
    program:
        Program source text (a parsed
        :class:`~repro.lang.ast_nodes.Program` is accepted and pretty-printed
        back to canonical source, which re-parses to the same program).
    mode:
        ``"weak"``, ``"strong"``, ``"rec-weak"`` or ``"rec-strong"`` — the
        four algorithm entry points of the paper.  The recursive variants run
        the same pipeline (recursion is detected automatically) and exist for
        fidelity with the paper's algorithm names.
    precondition:
        ``None``, a :class:`~repro.spec.preconditions.Precondition`, or the
        nested textual spec ``{function: {label_index: assertion}}``.
    objective:
        The Step-4 objective (weak modes only; strong modes enumerate a
        representative set and take no objective).
    options:
        The Step 1-3 / strategy knobs
        (:class:`~repro.invariants.synthesis.SynthesisOptions`).
    solver_options:
        Per-request Step-4 solver knobs; ``None`` inherits the engine default.
    deadline:
        Per-request wall-clock budget in seconds; tightens (never loosens)
        ``solver_options.time_limit``.
    request_id:
        Free-form caller identifier echoed on the response.
    reduce_only:
        Run Steps 1-3 only (structural dry-run; the response carries the
        reduction statistics but no invariant).
    """

    program: str
    mode: str = "weak"
    precondition: Mapping[str, Mapping[int, str]] | Precondition | None = None
    objective: Objective | None = None
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    solver_options: SolverOptions | None = None
    deadline: float | None = None
    request_id: str | None = None
    reduce_only: bool = False

    def __post_init__(self) -> None:
        errors: list[dict[str, str]] = []

        program = self.program
        if isinstance(program, Program):
            program = pretty_print(program)
        if not isinstance(program, str) or not program.strip():
            errors.append({"field": "program", "reason": "expected non-empty program source or a Program AST"})
        object.__setattr__(self, "program", program)

        if self.mode not in MODES:
            errors.append(
                {"field": "mode", "reason": f"unknown mode {self.mode!r}; known modes: {', '.join(MODES)}"}
            )

        object.__setattr__(self, "precondition", _validate_precondition(self.precondition, errors))

        if self.objective is not None and not isinstance(self.objective, Objective):
            errors.append({"field": "objective", "reason": "expected an Objective or null"})
        if self.objective is not None and self.mode in STRONG_MODES:
            errors.append(
                {"field": "objective", "reason": f"mode {self.mode!r} enumerates representatives and takes no objective"}
            )
        if (
            isinstance(self.options, SynthesisOptions)
            and self.options.verify != "none"
            and self.mode in STRONG_MODES
        ):
            errors.append(
                {
                    "field": "options.verify",
                    "reason": f"verification applies to weak modes only; mode {self.mode!r} enumerates representatives",
                }
            )

        if not isinstance(self.options, SynthesisOptions):
            errors.append({"field": "options", "reason": "expected SynthesisOptions"})
        if self.solver_options is not None and not isinstance(self.solver_options, SolverOptions):
            errors.append({"field": "solver_options", "reason": "expected SolverOptions or null"})

        if self.deadline is not None:
            if not isinstance(self.deadline, (int, float)) or isinstance(self.deadline, bool) or self.deadline <= 0:
                errors.append({"field": "deadline", "reason": "expected a positive number of seconds or null"})
        if self.request_id is not None and not isinstance(self.request_id, str):
            errors.append({"field": "request_id", "reason": "expected a string or null"})
        if not isinstance(self.reduce_only, bool):
            errors.append({"field": "reduce_only", "reason": "expected a boolean"})
        if (
            isinstance(self.reduce_only, bool)
            and self.reduce_only
            and isinstance(self.options, SynthesisOptions)
            and self.options.is_auto_degree
        ):
            errors.append(
                {
                    "field": "options.degree",
                    "reason": 'degree="auto" escalates through Step-4 solves; reduce_only requires a fixed degree',
                }
            )

        if errors:
            raise RequestValidationError(errors)

    # -- engine plumbing ---------------------------------------------------------

    def job(self) -> SynthesisJob:
        """The pipeline job this request reduces through (shares the task cache)."""
        return SynthesisJob(
            name=self.request_id or "request",
            source=self.program,
            precondition=self.precondition,
            objective=None if self.mode in STRONG_MODES else self.objective,
            options=self.options,
        )

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-ready form of this request (inverse of :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "program": self.program,
            "precondition": precondition_to_spec(self.precondition),
            "objective": objective_to_dict(self.objective) if self.objective is not None else None,
            "options": _options_to_dict(self.options),
            "solver_options": dataclasses.asdict(self.solver_options) if self.solver_options else None,
            "deadline": self.deadline,
            "request_id": self.request_id,
            "reduce_only": self.reduce_only,
        }

    def to_json(self, indent: int | None = None) -> str:
        """This request as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(payload: Mapping) -> "SynthesisRequest":
        """Build a request from its JSON form, validating every field.

        Raises a structured
        :class:`~repro.api.errors.RequestValidationError` (never a bare
        ``KeyError``/``TypeError``) on malformed input.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError.single("$", "expected a JSON object")
        known = {
            "mode",
            "program",
            "precondition",
            "objective",
            "options",
            "solver_options",
            "deadline",
            "request_id",
            "reduce_only",
        }
        errors: list[dict[str, str]] = []
        unknown = sorted(set(payload) - known)
        if unknown:
            errors.append({"field": "$", "reason": f"unknown request fields {unknown}"})

        objective = None
        if payload.get("objective") is not None:
            try:
                objective = objective_from_dict(payload["objective"])
            except RequestValidationError as exc:
                errors.extend(exc.errors)

        options = SynthesisOptions()
        if payload.get("options") is not None:
            try:
                options = _options_from_dict(payload["options"])
            except RequestValidationError as exc:
                errors.extend(exc.errors)

        solver_options = None
        if payload.get("solver_options") is not None:
            try:
                solver_options = _solver_options_from_dict(payload["solver_options"])
            except RequestValidationError as exc:
                errors.extend(exc.errors)

        if errors:
            raise RequestValidationError(errors)

        return SynthesisRequest(
            program=payload.get("program", ""),
            mode=payload.get("mode", "weak"),
            precondition=payload.get("precondition"),
            objective=objective,
            options=options,
            solver_options=solver_options,
            deadline=payload.get("deadline"),
            request_id=payload.get("request_id"),
            reduce_only=payload.get("reduce_only", False),
        )

    @staticmethod
    def from_json(text: str) -> "SynthesisRequest":
        """Parse and validate a JSON request document."""
        try:
            payload = json.loads(text)
        except (TypeError, json.JSONDecodeError) as exc:
            raise RequestValidationError.single("$", f"not valid JSON: {exc}") from exc
        return SynthesisRequest.from_dict(payload)
