"""Structured errors of the service API surface."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ReproError, ValidationError


class RequestValidationError(ValidationError):
    """A synthesis request (or its JSON form) is malformed.

    Unlike a bare message, the error carries one structured entry per
    offending field so a service front-end can map failures back onto the
    request document::

        try:
            SynthesisRequest.from_json(payload)
        except RequestValidationError as exc:
            for entry in exc.errors:
                report(field=entry["field"], reason=entry["reason"])

    Attributes
    ----------
    errors:
        A list of ``{"field": <dotted path>, "reason": <human text>}`` dicts,
        one per violation, in document order.
    """

    def __init__(self, errors: Iterable[Mapping[str, str]], message: str | None = None):
        self.errors: list[dict[str, str]] = [dict(entry) for entry in errors]
        if message is None:
            message = "; ".join(f"{entry['field']}: {entry['reason']}" for entry in self.errors)
        super().__init__(f"invalid synthesis request: {message}")

    @staticmethod
    def single(field: str, reason: str) -> "RequestValidationError":
        """A one-violation error (convenience for validators)."""
        return RequestValidationError([{"field": field, "reason": reason}])


class EngineClosedError(ReproError):
    """Raised when a request is submitted to an :class:`~repro.api.engine.Engine` after ``close()``."""
