"""Lookup helpers over the whole benchmark suite."""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.suite.base import Benchmark
from repro.suite.nonrecursive import NONRECURSIVE_BENCHMARKS
from repro.suite.recursive import RECURSIVE_BENCHMARKS
from repro.suite.reinforcement import REINFORCEMENT_BENCHMARKS
from repro.suite.running_example import RUNNING_EXAMPLE_BENCHMARKS

_ALL: list[Benchmark] = [
    *RUNNING_EXAMPLE_BENCHMARKS,
    *NONRECURSIVE_BENCHMARKS,
    *REINFORCEMENT_BENCHMARKS,
    *RECURSIVE_BENCHMARKS,
]


def all_benchmarks() -> list[Benchmark]:
    """Every benchmark in the suite (running example, Table 2, Table 3)."""
    return list(_ALL)


def benchmark_names() -> list[str]:
    """The names of every benchmark, in suite order."""
    return [benchmark.name for benchmark in _ALL]


def get_benchmark(name: str) -> Benchmark:
    """Look a benchmark up by name (raises :class:`SpecificationError` when unknown)."""
    for benchmark in _ALL:
        if benchmark.name == name:
            return benchmark
    raise SpecificationError(
        f"unknown benchmark {name!r}; known benchmarks: {', '.join(benchmark_names())}"
    )


def benchmarks_by_category(category: str) -> list[Benchmark]:
    """All benchmarks of one category (``nonrecursive``, ``recursive``, ``reinforcement``, ``running-example``)."""
    matching = [benchmark for benchmark in _ALL if benchmark.category == category]
    if not matching:
        known = sorted({benchmark.category for benchmark in _ALL})
        raise SpecificationError(f"unknown category {category!r}; known categories: {', '.join(known)}")
    return matching
