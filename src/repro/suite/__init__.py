"""The benchmark suite of the paper's evaluation (Tables 2 and 3).

* :mod:`repro.suite.running_example` — the ``sum`` program of Figure 2.
* :mod:`repro.suite.nonrecursive` — the 19 Rodríguez-Carbonell benchmarks of
  Table 2, rewritten in the paper's guarded polynomial language.
* :mod:`repro.suite.recursive` — the five classical recursive benchmarks of
  Table 3 / Appendix B.2.
* :mod:`repro.suite.reinforcement` — polynomial-dynamics models standing in
  for the three reinforcement-learning benchmarks of [Zhu et al. 2019]
  (see DESIGN.md for the substitution rationale).
* :mod:`repro.suite.registry` — lookup helpers over the whole suite.
"""

from repro.suite.base import Benchmark, PaperReference
from repro.suite.registry import (
    all_benchmarks,
    benchmark_names,
    benchmarks_by_category,
    get_benchmark,
)

__all__ = [
    "Benchmark",
    "PaperReference",
    "all_benchmarks",
    "benchmark_names",
    "benchmarks_by_category",
    "get_benchmark",
]
