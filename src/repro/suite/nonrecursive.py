"""Table 2: the 19 non-recursive benchmarks of [Rodríguez-Carbonell 2018].

The original collection ships C-like sources; here each benchmark is rewritten
in the paper's guarded polynomial language (Figure 5).  Where the original
uses constructs outside the grammar (equality guards, ``mod``/parity tests,
integer division by two) the rewriting follows the paper's own conventions:
equalities become conjunctions of two non-strict inequalities, parity tests
become non-deterministic branches whose two arms both preserve the desired
invariant, and halving is written as multiplication by ``0.5``.  Every such
deviation is recorded in the benchmark's ``notes`` field and surfaced in
EXPERIMENTS.md.

The ``paper`` field carries the row of Table 2 (n, d, |V|, |S|, runtime) so
that the harness can print paper-vs-measured columns.
"""

from __future__ import annotations

from repro.suite.base import Benchmark, PaperReference

COHENDIV_SOURCE = """
cohendiv(x, y) {
    q := 0;
    r := x;
    while r >= y do
        a := 1;
        b := y;
        while r >= 2*b do
            a := 2*a;
            b := 2*b
        od;
        r := r - b;
        q := q + a
    od;
    return q
}
"""

DIVBIN_SOURCE = """
divbin(x, y) {
    b := y;
    r := x;
    q := 0;
    while r >= b do
        b := 2*b
    od;
    while b > y do
        q := 2*q;
        b := 0.5*b;
        if r >= b then
            r := r - b;
            q := q + 1
        else
            skip
        fi
    od;
    return q
}
"""

HARD_SOURCE = """
hard(A, B) {
    r := A;
    d := B;
    p := 1;
    q := 0;
    while r >= d do
        d := 2*d;
        p := 2*p
    od;
    while p > 1 do
        d := 0.5*d;
        p := 0.5*p;
        if r >= d then
            r := r - d;
            q := q + p
        else
            skip
        fi
    od;
    return q
}
"""

MANNADIV_SOURCE = """
mannadiv(x1, x2) {
    y1 := 0;
    y2 := 0;
    y3 := x1;
    while y3 >= 1 do
        if y2 + 1 >= x2 and y2 + 1 <= x2 then
            y1 := y1 + 1;
            y2 := 0;
            y3 := y3 - 1
        else
            y2 := y2 + 1;
            y3 := y3 - 1
        fi
    od;
    return y1
}
"""

WENSLEY_SOURCE = """
wensley(P, Q, E) {
    a := 0;
    b := 0.5*Q;
    d := 1;
    y := 0;
    while d >= E do
        if P < a + b then
            b := 0.5*b;
            d := 0.5*d
        else
            a := a + b;
            y := y + 0.5*d;
            b := 0.5*b;
            d := 0.5*d
        fi
    od;
    return y
}
"""

SQRT_SOURCE = """
sqrt(n) {
    a := 0;
    s := 1;
    t := 1;
    while s <= n do
        a := a + 1;
        t := t + 2;
        s := s + t
    od;
    return a
}
"""

DIJKSTRA_SOURCE = """
dijkstra(n) {
    p := 0;
    q := 1;
    r := n;
    h := 0;
    while q <= n do
        q := 4*q
    od;
    while q > 1 do
        q := 0.25*q;
        h := p + q;
        p := 0.5*p;
        if r >= h then
            p := p + q;
            r := r - h
        else
            skip
        fi
    od;
    return p
}
"""

Z3SQRT_SOURCE = """
z3sqrt(x) {
    a := 0;
    s := 1;
    t := 1;
    h := 0;
    e := x;
    while s <= x do
        a := a + 1;
        t := t + 2;
        s := s + t;
        h := a*a;
        e := x - h
    od;
    return a
}
"""

FREIRE1_SOURCE = """
freire1(a) {
    x := 0.5*a;
    r := 0;
    while x > r do
        x := x - r;
        r := r + 1
    od;
    return r
}
"""

FREIRE2_SOURCE = """
freire2(a) {
    x := a;
    r := 1;
    s := 3.25;
    while x - s > 0 do
        x := x - s;
        s := s + 6*r + 3;
        r := r + 1
    od;
    return r
}
"""

EUCLIDEX1_SOURCE = """
euclidex1(x, y) {
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    c := 0;
    k := 0;
    v := 0;
    while a > b or b > a do
        c := c + 1;
        if a > b then
            a := a - b;
            p := p - q;
            r := r - s;
            k := k + 1
        else
            b := b - a;
            q := q - p;
            s := s - r;
            v := v + 1
        fi
    od;
    return a
}
"""

EUCLIDEX2_SOURCE = """
euclidex2(x, y) {
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    while a > b or b > a do
        if a > b then
            a := a - b;
            p := p - q;
            r := r - s
        else
            b := b - a;
            q := q - p;
            s := s - r
        fi
    od;
    return a
}
"""

EUCLIDEX3_SOURCE = """
euclidex3(x, y) {
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    c := 0;
    k := 0;
    v := 0;
    d := 0;
    e := 0;
    while a > b or b > a do
        c := c + 1;
        d := p*x;
        e := s*y;
        if a > b then
            a := a - b;
            p := p - q;
            r := r - s;
            k := k + 1
        else
            b := b - a;
            q := q - p;
            s := s - r;
            v := v + 1
        fi
    od;
    return a
}
"""

LCM1_SOURCE = """
lcm1(x, y) {
    a := x;
    b := y;
    u := y;
    v := 0;
    while a > b or b > a do
        while a > b do
            a := a - b;
            v := v + u
        od;
        while b > a do
            b := b - a;
            u := u + v
        od
    od;
    return a
}
"""

LCM2_SOURCE = """
lcm2(x, y) {
    a := x;
    b := y;
    u := y;
    v := 0;
    while a > b or b > a do
        if a > b then
            a := a - b;
            v := v + u
        else
            b := b - a;
            u := u + v
        fi
    od;
    return a
}
"""

PRODBIN_SOURCE = """
prodbin(a, b) {
    x := a;
    y := b;
    z := 0;
    while y >= 1 do
        if * then
            z := z + x;
            y := 0.5*y - 0.5;
            x := 2*x
        else
            y := 0.5*y;
            x := 2*x
        fi
    od;
    return z
}
"""

PROD4BR_SOURCE = """
prod4br(x, y) {
    a := x;
    b := y;
    p := 1;
    q := 0;
    while a >= 1 and b >= 1 do
        if * then
            if * then
                a := a - 1;
                q := q + b*p
            else
                b := b - 1;
                q := q + a*p
            fi
        else
            if * then
                a := 0.5*a;
                p := 2*p
            else
                b := 0.5*b;
                p := 2*p
            fi
        fi
    od;
    return q
}
"""

COHENCU_SOURCE = """
cohencu(n) {
    a := 0;
    x := 0;
    y := 1;
    z := 6;
    while a <= n do
        x := x + y;
        y := y + z;
        z := z + 6;
        a := a + 1
    od;
    return x
}
"""

PETTER_SOURCE = """
petter(n) {
    x := 0;
    i := 0;
    while i <= n do
        x := x + i;
        i := i + 1
    od;
    return x
}
"""


NONRECURSIVE_BENCHMARKS = [
    Benchmark(
        name="cohendiv",
        category="nonrecursive",
        description="Cohen's integer division: quotient/remainder by repeated doubling.",
        source=COHENDIV_SOURCE,
        precondition={"cohendiv": {1: "x >= 0 and y >= 1"}},
        degree=1,
        conjuncts=1,
        upsilon=1,
        paper=PaperReference(conjuncts=1, degree=1, variables=6, system_size=622, runtime_seconds=15.236),
        notes="Desired invariant of the collection: x = q*y + r and b = y*a inside the inner loop.",
    ),
    Benchmark(
        name="divbin",
        category="nonrecursive",
        description="Binary division: divide by scaling the divisor up and halving it back down.",
        source=DIVBIN_SOURCE,
        precondition={"divbin": {1: "x >= 0 and y >= 1"}},
        degree=1,
        conjuncts=1,
        upsilon=1,
        paper=PaperReference(conjuncts=1, degree=1, variables=5, system_size=738, runtime_seconds=5.399),
        notes="Loop exit test b != y rewritten as b > y (b stays >= y); halving written as 0.5*b.",
    ),
    Benchmark(
        name="hard",
        category="nonrecursive",
        description="Hardware-style division with explicit power-of-two tracking.",
        source=HARD_SOURCE,
        precondition={"hard": {1: "A >= 0 and B >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=6, system_size=8324, runtime_seconds=27.952),
        notes="Desired invariant: A = q*B + r and d = B*p.",
    ),
    Benchmark(
        name="mannadiv",
        category="nonrecursive",
        description="Manna's integer division by repeated decrement.",
        source=MANNADIV_SOURCE,
        precondition={"mannadiv": {1: "x1 >= 0 and x2 >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=5, system_size=2561, runtime_seconds=18.222),
        notes="Equality guard y2 + 1 = x2 rewritten as the conjunction of two non-strict inequalities.",
    ),
    Benchmark(
        name="wensley",
        category="nonrecursive",
        description="Wensley's real division by interval bisection.",
        source=WENSLEY_SOURCE,
        precondition={"wensley": {1: "P >= 0 and Q - P >= 0 and E >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=7, system_size=9422, runtime_seconds=20.051),
        notes="Desired invariant: a = 2*b*y / d relationships, i.e. a*d = 2*b*y and b*... (degree 2).",
    ),
    Benchmark(
        name="sqrt",
        category="nonrecursive",
        description="Integer square root by odd-number summation.",
        source=SQRT_SOURCE,
        precondition={"sqrt": {1: "n >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=4, system_size=2030, runtime_seconds=5.808),
        notes="Desired invariant: t = 2*a + 1 and s = (a + 1)^2.",
    ),
    Benchmark(
        name="dijkstra",
        category="nonrecursive",
        description="Dijkstra's integer square root by scaling powers of four.",
        source=DIJKSTRA_SOURCE,
        precondition={"dijkstra": {1: "n >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=5, system_size=5072, runtime_seconds=12.776),
        notes="Loop exit test q != 1 rewritten as q > 1; quartering/halving written with 0.25 and 0.5.",
    ),
    Benchmark(
        name="z3sqrt",
        category="nonrecursive",
        description="Integer square root with an explicit error term (reconstructed source).",
        source=Z3SQRT_SOURCE,
        precondition={"z3sqrt": {1: "x >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=6, system_size=4692, runtime_seconds=12.944),
        notes=(
            "The original listing of the collection was not available offline; this is an integer "
            "square-root routine with the same variable count (6) and polynomial structure."
        ),
    ),
    Benchmark(
        name="freire1",
        category="nonrecursive",
        description="Freire's real square-root iteration.",
        source=FREIRE1_SOURCE,
        precondition={"freire1": {1: "a >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=3, system_size=1210, runtime_seconds=26.474),
        notes="Desired invariant: a = 2*x + r^2 - r.",
    ),
    Benchmark(
        name="freire2",
        category="nonrecursive",
        description="Freire's real cube-root iteration.",
        source=FREIRE2_SOURCE,
        precondition={"freire2": {1: "a >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=4, system_size=1016, runtime_seconds=10.670),
        notes="Desired invariant relates a, x, r and s through a cubic identity; degree-2 templates follow the paper.",
    ),
    Benchmark(
        name="euclidex1",
        category="nonrecursive",
        description="Extended Euclid with iteration counters (11 program variables).",
        source=EUCLIDEX1_SOURCE,
        precondition={"euclidex1": {1: "x >= 1 and y >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=11, system_size=11191, runtime_seconds=97.493),
        notes="Desired invariant: a = p*x + r*y and b = q*x + s*y (Bezout bookkeeping).",
    ),
    Benchmark(
        name="euclidex2",
        category="nonrecursive",
        description="Extended Euclid's algorithm maintaining Bezout coefficients.",
        source=EUCLIDEX2_SOURCE,
        precondition={"euclidex2": {1: "x >= 1 and y >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=8, system_size=11156, runtime_seconds=39.323),
        notes="Loop guard a != b rewritten as (a > b) or (b > a).",
    ),
    Benchmark(
        name="euclidex3",
        category="nonrecursive",
        description="Extended Euclid with additional product-tracking variables (13 program variables).",
        source=EUCLIDEX3_SOURCE,
        precondition={"euclidex3": {1: "x >= 1 and y >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=13, system_size=36228, runtime_seconds=203.110),
        notes="Largest Table-2 instance; exercises the quadratic blow-up of the reduction.",
    ),
    Benchmark(
        name="lcm1",
        category="nonrecursive",
        description="Least common multiple via nested subtractive loops.",
        source=LCM1_SOURCE,
        precondition={"lcm1": {1: "x >= 1 and y >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=6, system_size=6589, runtime_seconds=17.851),
        notes="Desired invariant: a*u + b*v = x*y.",
    ),
    Benchmark(
        name="lcm2",
        category="nonrecursive",
        description="Least common multiple, flat (un-nested) variant.",
        source=LCM2_SOURCE,
        precondition={"lcm2": {1: "x >= 1 and y >= 1"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=6, system_size=6176, runtime_seconds=18.714),
        notes="Desired invariant: a*u + b*v = x*y.",
    ),
    Benchmark(
        name="prodbin",
        category="nonrecursive",
        description="Binary (Russian-peasant) multiplication.",
        source=PRODBIN_SOURCE,
        precondition={"prodbin": {1: "a >= 0 and b >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=5, system_size=5038, runtime_seconds=12.125),
        notes=(
            "Parity test on y replaced by a non-deterministic branch; both arms preserve the "
            "desired invariant z + x*y = a*b."
        ),
    ),
    Benchmark(
        name="prod4br",
        category="nonrecursive",
        description="Product computation with four non-deterministic branches.",
        source=PROD4BR_SOURCE,
        precondition={"prod4br": {1: "x >= 0 and y >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=6, system_size=10522, runtime_seconds=43.205),
        notes="Parity tests replaced by non-determinism; desired invariant q + a*b*p = x*y.",
    ),
    Benchmark(
        name="cohencu",
        category="nonrecursive",
        description="Cohen's cube: computes n^3 with finite differences.",
        source=COHENCU_SOURCE,
        precondition={"cohencu": {1: "n >= 0"}},
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=5, system_size=3424, runtime_seconds=11.778),
        notes="Desired invariants: z = 6*a + 6, y = 3*a^2 + 3*a + 1 (degree-2 part of the cube identity).",
    ),
    Benchmark(
        name="petter",
        category="nonrecursive",
        description="Petter's running-sum loop (x accumulates 0 + 1 + ... + i).",
        source=PETTER_SOURCE,
        precondition={"petter": {1: "n >= 0"}},
        target_function="petter",
        target_label=7,
        target="0.5*n_init^2 + 0.5*n_init + 1 - ret_petter",
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=3, system_size=1080, runtime_seconds=20.390),
        notes="Desired invariant: 2*x = i^2 - i; the strict target bounds the returned sum.",
    ),
]
