"""The paper's running example: the non-deterministic summation program (Figure 2).

The goal (Example 1 / Example 9) is to prove that the return value of ``sum``
is always less than ``0.5*n^2 + 0.5*n + 1``, i.e. that
``0.5*n_init^2 + 0.5*n_init + 1 - ret_sum > 0`` holds at the endpoint label 9.
"""

from __future__ import annotations

from repro.suite.base import Benchmark

SUM_SOURCE = """
sum(n) {
    i := 1;
    s := 0;
    while i <= n do
        if * then
            s := s + i
        else
            skip
        fi;
        i := i + 1
    od;
    return s
}
"""

RUNNING_EXAMPLE = Benchmark(
    name="sum",
    category="running-example",
    description=(
        "Non-deterministic summation (Figure 2): sums an arbitrary subset of 1..n; "
        "the desired invariant bounds the return value by 0.5*n^2 + 0.5*n + 1."
    ),
    source=SUM_SOURCE,
    precondition={"sum": {1: "n >= 1"}},
    target_function="sum",
    target_label=9,
    target="0.5*n_init^2 + 0.5*n_init + 1 - ret_sum",
    degree=2,
    conjuncts=1,
    upsilon=2,
)

RUNNING_EXAMPLE_BENCHMARKS = [RUNNING_EXAMPLE]
