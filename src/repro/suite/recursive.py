"""Table 3 (classical examples): the recursive benchmarks of Appendix B.2.

The sources follow the paper's listings with two mechanical adjustments that
keep them inside the Figure-5 grammar:

* ``pw2`` returns ``2 * pw2(y)`` in the paper; calls cannot occur inside
  expressions, so the call result is first bound to a temporary.
* ``merge-sort`` uses a floor operation and comparisons over array elements;
  following the paper's own footnote the element comparisons are already
  non-deterministic, and the floor is replaced by the real midpoint shifted by
  one half (which preserves the inversion-count bound the paper proves).
"""

from __future__ import annotations

from repro.suite.base import Benchmark, PaperReference

RECURSIVE_SUM_SOURCE = """
recursive_sum(n) {
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := recursive_sum(m);
        if * then
            s := s + n
        else
            skip
        fi;
        return s
    fi
}
"""

RECURSIVE_SQUARE_SUM_SOURCE = """
recursive_square_sum(n) {
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := recursive_square_sum(m);
        if * then
            s := s + n*n
        else
            skip
        fi;
        return s
    fi
}
"""

RECURSIVE_CUBE_SUM_SOURCE = """
recursive_cube_sum(n) {
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := recursive_cube_sum(m);
        if * then
            s := s + n*n*n
        else
            skip
        fi;
        return s
    fi
}
"""

PW2_SOURCE = """
pw2(x) {
    if x >= 2 then
        y := 0.5*x;
        t := pw2(y);
        return 2*t
    else
        return 1
    fi
}
"""

MERGE_SORT_SOURCE = """
merge_sort(s, e) {
    if s >= e then
        return 0
    else
        i := 0.5*s + 0.5*e - 0.5;
        j := i;
        i := j + 1;
        r := merge_sort(s, j);
        ans := merge_sort(i, e);
        ans := ans + r;
        k := s;
        while i <= e do
            while k <= j do
                if * then
                    k := k + 1;
                    skip
                else
                    ans := ans + j - k + 1;
                    i := i + 1;
                    skip
                fi
            od;
            skip;
            i := i + 1
        od;
        while s <= e do
            skip;
            s := s + 1
        od;
        return ans
    fi
}
"""


RECURSIVE_BENCHMARKS = [
    Benchmark(
        name="recursive-sum",
        category="recursive",
        description="Recursive non-deterministic summation (Figure 4): return value < 0.5*n^2 + 0.5*n + 1.",
        source=RECURSIVE_SUM_SOURCE,
        precondition={"recursive_sum": {1: "n >= 0"}},
        target_function="recursive_sum",
        target=("0.5*n_init^2 + 0.5*n_init + 1 - ret_recursive_sum"),
        target_kind="postcondition",
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=3, system_size=1700, runtime_seconds=10.919),
    ),
    Benchmark(
        name="recursive-square-sum",
        category="recursive",
        description="Recursive sum of squares: return value < 0.34*n^3 + 0.5*n^2 + 0.17*n + 1.",
        source=RECURSIVE_SQUARE_SUM_SOURCE,
        precondition={"recursive_square_sum": {1: "n >= 0"}},
        target_function="recursive_square_sum",
        target=(
            "0.34*n_init^3 + 0.5*n_init^2 + 0.17*n_init + 1 - ret_recursive_square_sum"
        ),
        target_kind="postcondition",
        degree=3,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=3, variables=3, system_size=1121, runtime_seconds=17.438),
        notes="The paper's listing calls recursive-sum in the recursive step; the intended self-call is used here.",
    ),
    Benchmark(
        name="recursive-cube-sum",
        category="recursive",
        description="Recursive sum of cubes: return value < 0.25*n^2*(n+1)^2 + 1.",
        source=RECURSIVE_CUBE_SUM_SOURCE,
        precondition={"recursive_cube_sum": {1: "n >= 0"}},
        target_function="recursive_cube_sum",
        target=(
            "0.25*n_init^4 + 0.5*n_init^3 + 0.25*n_init^2 + 1 - ret_recursive_cube_sum"
        ),
        target_kind="postcondition",
        degree=4,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=4, variables=3, system_size=15840, runtime_seconds=221.211),
        notes="The paper's listing calls recursive-sum in the recursive step; the intended self-call is used here.",
    ),
    Benchmark(
        name="pw2",
        category="recursive",
        description="Largest power of two not exceeding x, computed recursively (two-conjunct invariant).",
        source=PW2_SOURCE,
        precondition={"pw2": {1: "x >= 1"}},
        target_function="pw2",
        target="x_init - ret_pw2 + 1",
        target_kind="postcondition",
        degree=1,
        conjuncts=2,
        upsilon=1,
        paper=PaperReference(conjuncts=2, degree=1, variables=3, system_size=430, runtime_seconds=5.438),
        notes=(
            "Desired post-condition of the paper: ret <= x and 2*ret > x.  The call inside the return "
            "expression is bound to the temporary t first (calls cannot appear inside expressions)."
        ),
    ),
    Benchmark(
        name="merge-sort",
        category="recursive",
        description="Merge sort counting inversions; return value < 0.5*(e-s)*(e-s+1) + 1.",
        source=MERGE_SORT_SOURCE,
        precondition={"merge_sort": {1: "e - s >= 0"}},
        target_function="merge_sort",
        target=(
            "0.5*e_init^2 - e_init*s_init + 0.5*s_init^2 + 0.5*e_init - 0.5*s_init + 1 - ret_merge_sort"
        ),
        target_kind="postcondition",
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=13, system_size=33002, runtime_seconds=78.093),
        notes=(
            "Array-element comparisons are non-deterministic (as in the paper); the floor of the midpoint "
            "is replaced by the shifted real midpoint, which preserves the inversion-count bound.  The "
            "paper counts 13 variables including the analysis-introduced ones; this source has 7 program "
            "variables."
        ),
    ),
]
