"""Benchmark descriptors shared by the whole suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ProgramCFG
from repro.errors import SpecificationError
from repro.invariants.synthesis import SynthesisOptions
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial
from repro.spec.objectives import (
    FeasibilityObjective,
    Objective,
    TargetInvariantObjective,
    TargetPostconditionObjective,
)


@dataclass(frozen=True)
class PaperReference:
    """The numbers the paper reports for a benchmark (for EXPERIMENTS.md comparison)."""

    conjuncts: int
    degree: int
    variables: int
    system_size: int
    runtime_seconds: float


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: a program, its pre-condition and its target invariant.

    Attributes
    ----------
    name, category, description:
        Identification; ``category`` is ``"nonrecursive"``, ``"recursive"`` or
        ``"reinforcement"``.
    source:
        Program text in the paper's guarded polynomial language.
    precondition:
        Textual pre-condition spec: ``{function: {label_index: assertion}}``.
    target_function, target_label, target:
        The label at which the paper's desired invariant should hold, and the
        polynomial ``g`` of the desired assertion ``g > 0`` (``None`` when the
        benchmark is solved for feasibility only).
    degree, conjuncts, upsilon:
        Template parameters (the paper's d, n and the multiplier degree).
    paper:
        The values reported in Table 2 / Table 3, when available.
    notes:
        Deviations from the original source (e.g. equality guards rewritten as
        conjunctions of inequalities, ``mod``/``floor`` replaced by
        non-determinism) — these are also surfaced in EXPERIMENTS.md.
    """

    name: str
    category: str
    description: str
    source: str
    precondition: Mapping[str, Mapping[int, str]] = field(default_factory=dict)
    target_function: str | None = None
    target_label: int | None = None
    target: str | None = None
    target_kind: str = "label"
    degree: int = 2
    conjuncts: int = 1
    upsilon: int = 2
    paper: PaperReference | None = None
    notes: str = ""

    # -- derived artefacts -----------------------------------------------------------

    def program(self) -> Program:
        """Parse the benchmark's source text."""
        return parse_program(self.source)

    def cfg(self) -> ProgramCFG:
        """The benchmark's control-flow graph."""
        return build_cfg(self.program())

    def target_polynomial(self) -> Polynomial | None:
        """The desired invariant polynomial, when the benchmark has one."""
        if self.target is None:
            return None
        return parse_polynomial(self.target)

    def objective(self) -> Objective:
        """The Weak-synthesis objective: match the target invariant when given."""
        polynomial = self.target_polynomial()
        if polynomial is None:
            return FeasibilityObjective()
        if self.target_function is None:
            raise SpecificationError(
                f"benchmark {self.name!r} has a target polynomial but no target function"
            )
        if self.target_kind == "postcondition":
            return TargetPostconditionObjective(function=self.target_function, target=polynomial)
        if self.target_label is None:
            raise SpecificationError(
                f"benchmark {self.name!r} has a label target but no target label index"
            )
        return TargetInvariantObjective(
            function=self.target_function,
            label_index=self.target_label,
            target=polynomial,
        )

    def options(self, **overrides) -> SynthesisOptions:
        """The synthesis options matching the paper's table row (overridable)."""
        parameters = {
            "degree": self.degree,
            "conjuncts": self.conjuncts,
            "upsilon": self.upsilon,
        }
        parameters.update(overrides)
        return SynthesisOptions(**parameters)

    def variable_count(self) -> int:
        """The paper's ``|V|`` column: number of program variables."""
        return self.cfg().variable_count()
