"""Table 3 (reinforcement learning): polynomial-dynamics stand-ins for [Zhu et al. 2019].

The original benchmarks are safety-verification programs extracted from
learned neural controllers for cyber-physical systems (Segway-style inverted
pendulum and an oscillator).  Those artifacts are not available offline, so —
following the substitution rule of DESIGN.md — each benchmark is modelled as a
bounded-horizon simulation loop with

* the same number of program variables (7) as reported in Table 3,
* polynomial dynamics of degree up to 4 (the paper notes the programs contain
  polynomial assignments and conditions of degree 4),
* a *linear* desired safety invariant, exactly the situation the paper uses
  to argue that linear invariant generation cannot handle these programs
  (the linear target is only inductive relative to non-linear facts).

The controller output is abstracted by non-determinism over a bounded action,
which over-approximates any concrete learned policy.
"""

from __future__ import annotations

from repro.suite.base import Benchmark, PaperReference

INVERTED_PENDULUM_SOURCE = """
inverted_pendulum(x, v, th, om) {
    t := 0;
    a := 0;
    e := 0;
    while t <= 100 and x*x + v*v + th*th*th*th <= 4 do
        if * then
            a := 1
        else
            a := 0 - 1
        fi;
        x := x + 0.02*v;
        v := v + 0.02*a;
        th := th + 0.02*om;
        om := om + 0.02*th - 0.003*th*th*th + 0.02*a;
        e := th*th + 0.1*om*om;
        t := t + 1
    od;
    return x
}
"""

STRICT_INVERTED_PENDULUM_SOURCE = """
strict_inverted_pendulum(x, v, th, om) {
    t := 0;
    a := 0;
    e := 0;
    while t <= 100 do
        if * then
            a := 0.5
        else
            a := 0 - 0.5
        fi;
        x := x + 0.01*v;
        v := v + 0.01*a - 0.001*v*v*v;
        th := th + 0.01*om;
        om := om + 0.01*th - 0.0016*th*th*th + 0.01*a;
        e := x*x + v*v + th*th + om*om;
        t := t + 1
    od;
    return e
}
"""

OSCILLATOR_SOURCE = """
oscillator(x, y) {
    t := 0;
    a := 0;
    e := 0;
    vx := 0;
    vy := 0;
    while t <= 100 do
        if * then
            a := 0.1
        else
            a := 0 - 0.1
        fi;
        vx := y;
        vy := 0 - x + y - x*x*y + a;
        x := x + 0.05*vx;
        y := y + 0.05*vy;
        e := x*x + y*y;
        t := t + 1
    od;
    return e
}
"""


REINFORCEMENT_BENCHMARKS = [
    Benchmark(
        name="inverted-pendulum",
        category="reinforcement",
        description="Inverted pendulum with a non-deterministic bang-bang controller (degree-4 guard).",
        source=INVERTED_PENDULUM_SOURCE,
        precondition={
            "inverted_pendulum": {
                1: "x >= 0 - 1 and 1 - x >= 0 and v >= 0 - 1 and 1 - v >= 0 and "
                   "th >= 0 - 1 and 1 - th >= 0 and om >= 0 - 1 and 1 - om >= 0"
            }
        },
        target_function="inverted_pendulum",
        target_label=4,
        target="9 - x",
        degree=3,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=3, variables=7, system_size=9951, runtime_seconds=496.093),
        notes="Substituted model: same variable count and degree structure as [Zhu et al. 2019]; linear safety target 9 - x > 0 at the loop head.",
    ),
    Benchmark(
        name="strict-inverted-pendulum",
        category="reinforcement",
        description="Inverted pendulum with a four-conjunct invariant template (strict safety envelope).",
        source=STRICT_INVERTED_PENDULUM_SOURCE,
        precondition={
            "strict_inverted_pendulum": {
                1: "x >= 0 - 1 and 1 - x >= 0 and v >= 0 - 1 and 1 - v >= 0 and "
                   "th >= 0 - 1 and 1 - th >= 0 and om >= 0 - 1 and 1 - om >= 0"
            }
        },
        target_function="strict_inverted_pendulum",
        target_label=4,
        target="25 - x",
        degree=2,
        conjuncts=4,
        upsilon=2,
        paper=PaperReference(conjuncts=4, degree=2, variables=7, system_size=14390, runtime_seconds=587.783),
        notes="Substituted model; the four conjuncts mirror the paper's n = 4 row.",
    ),
    Benchmark(
        name="oscillator",
        category="reinforcement",
        description="Van-der-Pol-style oscillator with a non-deterministic disturbance.",
        source=OSCILLATOR_SOURCE,
        precondition={
            "oscillator": {
                1: "x >= 0 - 1 and 1 - x >= 0 and y >= 0 - 1 and 1 - y >= 0"
            }
        },
        target_function="oscillator",
        target_label=6,
        target="100 - x",
        degree=2,
        conjuncts=1,
        upsilon=2,
        paper=PaperReference(conjuncts=1, degree=2, variables=7, system_size=3552, runtime_seconds=39.749),
        notes="Substituted model with cubic dynamics (x*x*y term) and a linear safety target.",
    ),
]
