"""Sum-of-squares (SOS) machinery: Gram matrices and Cholesky encodings.

The paper (Section 3.1, Theorems 3.4 and 3.5) reduces "``h`` is a sum of
squares" to the existence of a symmetric positive-semidefinite Gram matrix
``Q`` with ``h = y^T Q y``, and then to the existence of a lower-triangular
``L`` with non-negative diagonal such that ``Q = L L^T``.  This module builds
that encoding symbolically (with fresh *l-variables*) and provides the inverse
direction: reconstructing an explicit SOS decomposition from a numeric Gram
matrix, which the certificate checker uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import monomials_up_to_degree
from repro.polynomial.polynomial import Polynomial


@dataclass(frozen=True)
class GramEncoding:
    """Symbolic encoding of "``h`` is a sum of squares of degree <= 2*half_degree".

    Attributes
    ----------
    basis:
        The vector ``y`` of monomials of degree at most ``half_degree``.
    l_variable_names:
        Names of the fresh entries of the lower-triangular matrix ``L``,
        indexed ``[row][col]`` for ``col <= row``.
    diagonal_names:
        The names on the diagonal of ``L``; these must be constrained to be
        non-negative (Theorem 3.5).
    polynomial:
        The expansion of ``y^T L L^T y`` as a :class:`Polynomial` over the
        original variables *and* the l-variables.  It is quadratic in the
        l-variables.
    """

    basis: tuple[Monomial, ...]
    l_variable_names: tuple[tuple[str, ...], ...]
    diagonal_names: tuple[str, ...]
    polynomial: Polynomial = field(repr=False)

    @property
    def dimension(self) -> int:
        """Size of the Gram matrix (length of the monomial basis)."""
        return len(self.basis)

    def all_l_names(self) -> list[str]:
        """All l-variable names, row by row."""
        return [name for row in self.l_variable_names for name in row]


def sos_basis(variables: Sequence[str], max_degree: int) -> list[Monomial]:
    """The monomial basis used for SOS polynomials of degree at most ``max_degree``.

    A sum of squares has even degree; the basis therefore contains all
    monomials of degree at most ``max_degree // 2``.
    """
    if max_degree < 0:
        raise PolynomialError(f"SOS degree bound must be non-negative, got {max_degree}")
    return monomials_up_to_degree(variables, max_degree // 2)


def gram_matrix_encoding(
    variables: Sequence[str], max_degree: int, prefix: str
) -> GramEncoding:
    """Build the Cholesky encoding of an unknown SOS polynomial.

    Parameters
    ----------
    variables:
        Program variables the SOS polynomial ranges over.
    max_degree:
        Upper bound on the degree of the SOS polynomial (the paper's
        technical parameter Upsilon for the multiplier polynomials).
    prefix:
        Prefix used for the fresh l-variable names, e.g. ``"l_c3_h2"``.

    Returns
    -------
    GramEncoding
        The basis, the fresh variable names and the symbolic expansion of
        ``y^T L L^T y``.
    """
    basis = sos_basis(variables, max_degree)
    dimension = len(basis)
    names: list[tuple[str, ...]] = []
    for row in range(dimension):
        row_names = tuple(f"{prefix}_{row}_{col}" for col in range(row + 1))
        names.append(row_names)
    diagonal = tuple(names[row][row] for row in range(dimension))

    # Expand y^T L L^T y = sum_{j} (sum_{i >= j} l_{i,j} * y_i)^2 column by column,
    # which keeps the intermediate polynomials small.
    expansion = Polynomial.zero()
    for col in range(dimension):
        column_form = Polynomial.zero()
        for row in range(col, dimension):
            term = Polynomial.variable(names[row][col]) * Polynomial.from_monomial(basis[row])
            column_form = column_form + term
        expansion = expansion + column_form * column_form

    return GramEncoding(
        basis=tuple(basis),
        l_variable_names=tuple(names),
        diagonal_names=diagonal,
        polynomial=expansion,
    )


def gram_polynomial(basis: Sequence[Monomial], gram: np.ndarray) -> Polynomial:
    """The polynomial ``y^T Q y`` for a numeric symmetric matrix ``Q``."""
    dimension = len(basis)
    if gram.shape != (dimension, dimension):
        raise PolynomialError(
            f"Gram matrix shape {gram.shape} does not match basis of size {dimension}"
        )
    result = Polynomial.zero()
    for i in range(dimension):
        for j in range(dimension):
            value = Fraction(float(gram[i, j])).limit_denominator(10**9)
            if value:
                result = result + Polynomial.from_monomial(basis[i] * basis[j], value)
    return result


def is_numerically_psd(matrix: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Whether a symmetric matrix is positive semidefinite up to ``tolerance``."""
    if matrix.size == 0:
        return True
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues = np.linalg.eigvalsh(symmetric)
    return bool(eigenvalues.min() >= -tolerance)


def project_to_psd(matrix: np.ndarray) -> np.ndarray:
    """The nearest (Frobenius) positive-semidefinite matrix to ``matrix``."""
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    clipped = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def sos_from_gram(
    basis: Sequence[Monomial], gram: np.ndarray, tolerance: float = 1e-8
) -> list[Polynomial]:
    """Extract an explicit SOS decomposition from a numeric Gram matrix.

    Returns polynomials ``f_1 .. f_k`` (with float-derived rational
    coefficients) such that ``sum f_j**2`` approximately equals
    ``y^T Q y``.  Raises :class:`PolynomialError` when the matrix is not PSD
    within ``tolerance``.
    """
    symmetric = (gram + gram.T) / 2.0
    if symmetric.size == 0:
        return []
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    if eigenvalues.min() < -tolerance:
        raise PolynomialError(
            f"Gram matrix is not positive semidefinite (min eigenvalue {eigenvalues.min():.3e})"
        )
    squares: list[Polynomial] = []
    for value, vector in zip(eigenvalues, eigenvectors.T):
        if value <= tolerance:
            continue
        scale = float(np.sqrt(value))
        combination = Polynomial.zero()
        for coefficient, monomial in zip(vector, basis):
            weight = Fraction(scale * float(coefficient)).limit_denominator(10**9)
            if weight:
                combination = combination + Polynomial.from_monomial(monomial, weight)
        if not combination.is_zero():
            squares.append(combination)
    return squares


def evaluate_encoding(
    encoding: GramEncoding, l_values: Mapping[str, float]
) -> np.ndarray:
    """Build the numeric Gram matrix ``L L^T`` from values of the l-variables."""
    dimension = encoding.dimension
    lower = np.zeros((dimension, dimension))
    for row in range(dimension):
        for col in range(row + 1):
            lower[row, col] = float(l_values.get(encoding.l_variable_names[row][col], 0.0))
    return lower @ lower.T
