"""A small recursive-descent parser for polynomial arithmetic expressions.

This parser is intentionally independent of the full program parser in
:mod:`repro.lang`: it is used wherever a bare polynomial (not a program) is
convenient to write as text — pre-conditions, target invariants in the
benchmark suite, and tests.

Supported syntax::

    expr    := term (('+' | '-') term)*
    term    := factor (('*' factor) | factor_implicit)*
    factor  := base ('^' INT | '**' INT)?
    base    := NUMBER | IDENT | '(' expr ')' | '-' factor

Numbers may be integers, decimals (``0.5``) or fractions (``1/2`` is parsed as
division of constants).  Identifiers may contain letters, digits, ``_`` and a
trailing ``'`` (primes are used for post-state variables in some call sites).
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParseError
from repro.polynomial.polynomial import Polynomial

_OPERATORS = {"+", "-", "*", "/", "^", "(", ")"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char in "+-*/^()":
            if char == "*" and i + 1 < length and text[i + 1] == "*":
                tokens.append("^")
                i += 2
            else:
                tokens.append(char)
                i += 1
            continue
        if char.isdigit() or char == ".":
            j = i
            while j < length and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        if char.isalpha() or char in "_$":
            # '$' admits the library's internal unknown names (e.g. "$s_f_1_0_0"),
            # which is convenient in tests and diagnostics.
            j = i
            while j < length and (text[j].isalnum() or text[j] in "_'$"):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        raise ParseError(f"unexpected character {char!r} in polynomial expression", column=i + 1)
    return tokens


class _ExpressionParser:
    def __init__(self, tokens: list[str], source: str):
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of polynomial expression: {self._source!r}")
        self._position += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._advance()
        if token != expected:
            raise ParseError(f"expected {expected!r} but found {token!r} in {self._source!r}")

    def parse(self) -> Polynomial:
        result = self._parse_expression()
        if self._peek() is not None:
            raise ParseError(f"trailing tokens after polynomial expression: {self._source!r}")
        return result

    def _parse_expression(self) -> Polynomial:
        result = self._parse_term()
        while self._peek() in {"+", "-"}:
            operator = self._advance()
            rhs = self._parse_term()
            result = result + rhs if operator == "+" else result - rhs
        return result

    def _parse_term(self) -> Polynomial:
        result = self._parse_factor()
        while True:
            token = self._peek()
            if token == "*":
                self._advance()
                result = result * self._parse_factor()
            elif token == "/":
                self._advance()
                divisor = self._parse_factor()
                if not divisor.is_constant():
                    raise ParseError(f"division by non-constant in {self._source!r}")
                result = result / divisor.constant_value()
            elif token is not None and token not in _OPERATORS:
                # Implicit multiplication such as "2x" or ") (".
                result = result * self._parse_factor()
            elif token == "(":
                result = result * self._parse_factor()
            else:
                return result

    def _parse_factor(self) -> Polynomial:
        base = self._parse_base()
        if self._peek() == "^":
            self._advance()
            exponent_token = self._advance()
            try:
                exponent = int(exponent_token)
            except ValueError as exc:
                raise ParseError(f"exponent must be an integer, got {exponent_token!r}") from exc
            base = base**exponent
        return base

    def _parse_base(self) -> Polynomial:
        token = self._advance()
        if token == "(":
            inner = self._parse_expression()
            self._expect(")")
            return inner
        if token == "-":
            return -self._parse_factor()
        if token == "+":
            return self._parse_factor()
        if token[0].isdigit() or token[0] == ".":
            try:
                value = Fraction(token)
            except ValueError as exc:
                raise ParseError(f"invalid numeric literal {token!r}") from exc
            return Polynomial.constant(value)
        return Polynomial.variable(token)


def parse_polynomial(text: str) -> Polynomial:
    """Parse ``text`` into a :class:`~repro.polynomial.polynomial.Polynomial`."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty polynomial expression")
    return _ExpressionParser(tokens, text).parse()
