"""Sparse multivariate polynomials with exact rational coefficients.

The validating :class:`Polynomial` constructor is the boundary for untrusted
input; all internal arithmetic goes through the trusted
:meth:`Polynomial._from_validated` raw constructor, which takes ownership of
an already-clean ``{Monomial: non-zero Fraction}`` map and skips coefficient
re-coercion entirely.  Together with monomial interning this makes the hot
add/mul/substitute paths allocation- and validation-free.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from numbers import Rational
from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import MonomialOrder, order_key

Scalar = Union[int, float, Fraction]
PolynomialLike = Union["Polynomial", Monomial, Scalar]

_ZERO_FRACTION = Fraction(0)


def _common_denominator(terms: Mapping[Monomial, Fraction]) -> int:
    """Least common multiple of all coefficient denominators."""
    lcm = 1
    for coefficient in terms.values():
        denominator = coefficient.denominator
        if denominator != 1:
            lcm = lcm * denominator // gcd(lcm, denominator)
    return lcm


def _to_fraction(value: Scalar) -> Fraction:
    # Reject booleans before any numeric coercion: bool is a subclass of int
    # (and of numbers.Rational), so it would otherwise silently coerce to 0/1.
    if isinstance(value, bool):
        raise PolynomialError("booleans are not valid polynomial coefficients")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise PolynomialError(f"cannot interpret {value!r} as a rational coefficient")


class Polynomial:
    """A multivariate polynomial with :class:`fractions.Fraction` coefficients.

    Instances are immutable.  The representation is a sparse mapping from
    :class:`~repro.polynomial.monomial.Monomial` to non-zero coefficients.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Scalar] | Iterable[tuple[Monomial, Scalar]] = ()):
        cleaned: dict[Monomial, Fraction] = {}
        for monomial, coefficient in dict(terms).items():
            if not isinstance(monomial, Monomial):
                raise PolynomialError(f"term keys must be Monomial, got {monomial!r}")
            value = _to_fraction(coefficient)
            if value:
                cleaned[monomial] = value
        self._terms = cleaned
        self._hash: int | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def _from_validated(cls, terms: dict[Monomial, Fraction]) -> "Polynomial":
        """Trusted raw constructor used by all internal arithmetic.

        ``terms`` must already be clean — every key an (interned)
        :class:`Monomial`, every value a non-zero :class:`Fraction` — and
        ownership of the dict transfers to the new polynomial.
        """
        self = object.__new__(cls)
        self._terms = terms
        self._hash = None
        return self

    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return _ZERO

    @staticmethod
    def one() -> "Polynomial":
        """The constant polynomial 1."""
        return _ONE

    @staticmethod
    def constant(value: Scalar) -> "Polynomial":
        """The constant polynomial with the given value."""
        return Polynomial({Monomial.one(): value})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        return Polynomial({Monomial.of(name): 1})

    @staticmethod
    def from_monomial(monomial: Monomial, coefficient: Scalar = 1) -> "Polynomial":
        """The polynomial ``coefficient * monomial``."""
        return Polynomial({monomial: coefficient})

    @staticmethod
    def coerce(value: PolynomialLike) -> "Polynomial":
        """Coerce a scalar, monomial or polynomial into a :class:`Polynomial`."""
        if isinstance(value, Polynomial):
            return value
        if isinstance(value, Monomial):
            return Polynomial({value: 1})
        return Polynomial.constant(value)

    def __reduce__(self):
        return (_restore_polynomial, (tuple(self._terms.items()),))

    # -- basic protocol ------------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __len__(self) -> int:
        """Number of (non-zero) terms."""
        return len(self._terms)

    # -- accessors -----------------------------------------------------------

    @property
    def terms(self) -> dict[Monomial, Fraction]:
        """A copy of the monomial-to-coefficient map."""
        return dict(self._terms)

    def items(self) -> Iterator[tuple[Monomial, Fraction]]:
        """Iterate over ``(monomial, coefficient)`` pairs without copying."""
        return iter(self._terms.items())

    def coefficient(self, monomial: Monomial) -> Fraction:
        """The coefficient of ``monomial`` (0 when absent)."""
        return self._terms.get(monomial, _ZERO_FRACTION)

    def monomials(self) -> list[Monomial]:
        """All monomials with a non-zero coefficient, sorted deterministically."""
        return sorted(self._terms, key=Monomial.sort_key)

    def variables(self) -> frozenset[str]:
        """All variables occurring in the polynomial."""
        names: set[str] = set()
        for monomial in self._terms:
            names.update(monomial.variables())
        return frozenset(names)

    def degree(self) -> int:
        """Total degree (0 for constants; -1 for the zero polynomial by convention)."""
        if not self._terms:
            return -1
        return max(monomial.degree() for monomial in self._terms)

    def degree_in(self, var: str) -> int:
        """Maximum exponent of ``var`` across all terms."""
        if not self._terms:
            return -1
        return max(monomial.exponent(var) for monomial in self._terms)

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """Whether this polynomial has no variables."""
        return all(monomial.is_constant() for monomial in self._terms)

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial; raises for non-constant ones."""
        if not self.is_constant():
            raise PolynomialError(f"{self} is not a constant polynomial")
        return self.coefficient(Monomial.one())

    def constant_term(self) -> Fraction:
        """The coefficient of the constant monomial."""
        return self.coefficient(Monomial.one())

    def is_linear(self) -> bool:
        """Whether the total degree is at most 1."""
        return self.degree() <= 1

    def is_quadratic(self) -> bool:
        """Whether the total degree is at most 2."""
        return self.degree() <= 2

    def leading_term(
        self, variables: Sequence[str] | None = None, order: MonomialOrder = MonomialOrder.GRLEX
    ) -> tuple[Monomial, Fraction]:
        """The leading (monomial, coefficient) pair under the given order."""
        if not self._terms:
            raise PolynomialError("the zero polynomial has no leading term")
        ordered_vars = list(variables) if variables is not None else sorted(self.variables())
        leading = max(self._terms, key=lambda m: order_key(order, m, ordered_vars))
        return leading, self._terms[leading]

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: PolynomialLike) -> "Polynomial":
        other_poly = Polynomial.coerce(other)
        if not other_poly._terms:
            return self
        if not self._terms:
            return other_poly
        merged = dict(self._terms)
        for monomial, coefficient in other_poly._terms.items():
            existing = merged.get(monomial)
            if existing is None:
                merged[monomial] = coefficient
            else:
                total = existing + coefficient
                if total:
                    merged[monomial] = total
                else:
                    del merged[monomial]
        return Polynomial._from_validated(merged)

    def __radd__(self, other: PolynomialLike) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial._from_validated(
            {monomial: -coefficient for monomial, coefficient in self._terms.items()}
        )

    def __sub__(self, other: PolynomialLike) -> "Polynomial":
        return self.__add__(-Polynomial.coerce(other))

    def __rsub__(self, other: PolynomialLike) -> "Polynomial":
        return Polynomial.coerce(other).__sub__(self)

    def __mul__(self, other: PolynomialLike) -> "Polynomial":
        other_poly = Polynomial.coerce(other)
        if not self._terms or not other_poly._terms:
            return _ZERO
        # Clear denominators so the O(n*m) accumulation runs on plain ints;
        # Fraction normalisation (a gcd per operation) then only happens once
        # per *output* term instead of once per term pair.
        den_a = _common_denominator(self._terms)
        den_b = _common_denominator(other_poly._terms)
        ints_a = [
            (mono, coeff.numerator * (den_a // coeff.denominator))
            for mono, coeff in self._terms.items()
        ]
        ints_b = [
            (mono, coeff.numerator * (den_b // coeff.denominator))
            for mono, coeff in other_poly._terms.items()
        ]
        product: dict[Monomial, int] = {}
        get = product.get
        for mono_a, val_a in ints_a:
            for mono_b, val_b in ints_b:
                key = mono_a * mono_b
                existing = get(key)
                contribution = val_a * val_b
                product[key] = contribution if existing is None else existing + contribution
        denominator = den_a * den_b
        if denominator == 1:
            cleaned = {mono: Fraction(value) for mono, value in product.items() if value}
        else:
            cleaned = {mono: Fraction(value, denominator) for mono, value in product.items() if value}
        return Polynomial._from_validated(cleaned)

    def __rmul__(self, other: PolynomialLike) -> "Polynomial":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise PolynomialError(f"polynomial exponent must be a non-negative int, got {exponent!r}")
        result = _ONE
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    def __truediv__(self, other: Scalar) -> "Polynomial":
        divisor = _to_fraction(other)
        if divisor == 0:
            raise PolynomialError("division of a polynomial by zero")
        return Polynomial._from_validated({m: c / divisor for m, c in self._terms.items()})

    def scale(self, factor: Scalar) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        value = _to_fraction(factor)
        if not value:
            return _ZERO
        return Polynomial._from_validated({m: c * value for m, c in self._terms.items()})

    # -- evaluation and substitution ------------------------------------------

    def evaluate(self, valuation: Mapping[str, Scalar]) -> Fraction:
        """Exact value under a valuation; missing variables raise an error."""
        total = _ZERO_FRACTION
        for monomial, coefficient in self._terms.items():
            term = coefficient
            for var, exp in monomial.items:
                if var not in valuation:
                    raise PolynomialError(f"valuation is missing variable {var!r}")
                term *= _to_fraction(valuation[var]) ** exp
            total += term
        return total

    def evaluate_float(self, valuation: Mapping[str, float]) -> float:
        """Floating-point value under a valuation (fast path for solvers)."""
        total = 0.0
        for monomial, coefficient in self._terms.items():
            term = float(coefficient)
            for var, exp in monomial.items:
                term *= float(valuation[var]) ** exp
            total += term
        return total

    def substitute(self, mapping: Mapping[str, PolynomialLike]) -> "Polynomial":
        """Simultaneously substitute polynomials for variables.

        Variables not listed in ``mapping`` are left untouched.  This is used
        both for the paper's update-function composition (``g o alpha``) and
        for the textual substitutions ``phi[x <- y]`` of Section 4.
        """
        if not mapping:
            return self
        replacements = {name: Polynomial.coerce(value) for name, value in mapping.items()}
        accumulated: dict[Monomial, Fraction] = {}
        power_cache: dict[tuple[str, int], Polynomial] = {}
        for monomial, coefficient in self._terms.items():
            term = Polynomial._from_validated({_ONE_MONOMIAL: coefficient})
            for var, exp in monomial.items:
                replacement = replacements.get(var)
                if replacement is None:
                    factor_terms = {Monomial.of(var, exp): _ONE_FRACTION}
                    term = term * Polynomial._from_validated(factor_terms)
                    continue
                cached = power_cache.get((var, exp))
                if cached is None:
                    cached = replacement**exp
                    power_cache[(var, exp)] = cached
                term = term * cached
            for key, value in term._terms.items():
                existing = accumulated.get(key)
                if existing is None:
                    accumulated[key] = value
                else:
                    total = existing + value
                    if total:
                        accumulated[key] = total
                    else:
                        del accumulated[key]
        return Polynomial._from_validated(accumulated)

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables (a special case of :meth:`substitute` that stays sparse)."""
        renamed: dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._terms.items():
            key = monomial.rename(mapping)
            existing = renamed.get(key)
            if existing is None:
                renamed[key] = coefficient
            else:
                total = existing + coefficient
                if total:
                    renamed[key] = total
                else:
                    del renamed[key]
        return Polynomial._from_validated(renamed)

    def collect(self, variables: Iterable[str]) -> dict[Monomial, "Polynomial"]:
        """Group terms by their monomial over ``variables``.

        Returns a map from monomials over ``variables`` to polynomials over
        the *remaining* variables, such that
        ``self == sum(mono * poly for mono, poly in result.items())``.
        This is the "equate coefficients of corresponding monomials" operation
        of Step 3 in the paper.
        """
        keep = set(variables)
        grouped: dict[Monomial, dict[Monomial, Fraction]] = {}
        for monomial, coefficient in self._terms.items():
            outer = monomial.restrict(keep)
            inner = monomial.exclude(keep)
            bucket = grouped.setdefault(outer, {})
            existing = bucket.get(inner)
            bucket[inner] = coefficient if existing is None else existing + coefficient
        return {
            outer: Polynomial._from_validated({m: c for m, c in bucket.items() if c})
            for outer, bucket in grouped.items()
        }

    def partial_derivative(self, var: str) -> "Polynomial":
        """Formal partial derivative with respect to ``var``."""
        derived: dict[Monomial, Fraction] = {}
        single = Monomial.of(var)
        for monomial, coefficient in self._terms.items():
            exp = monomial.exponent(var)
            if exp == 0:
                continue
            lowered = monomial.divide(single)
            existing = derived.get(lowered)
            value = coefficient * exp
            derived[lowered] = value if existing is None else existing + value
        return Polynomial._from_validated({m: c for m, c in derived.items() if c})

    def restrict_to(self, variables: Iterable[str]) -> "Polynomial":
        """Terms involving only ``variables`` (other terms are dropped)."""
        keep = set(variables)
        return Polynomial._from_validated(
            {m: c for m, c in self._terms.items() if m.variables() <= keep}
        )

    # -- display --------------------------------------------------------------

    def _format_coefficient(self, coefficient: Fraction) -> str:
        if coefficient.denominator == 1:
            return str(coefficient.numerator)
        return f"{coefficient.numerator}/{coefficient.denominator}"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for monomial in sorted(self._terms, key=Monomial.sort_key, reverse=True):
            coefficient = self._terms[monomial]
            sign = "-" if coefficient < 0 else "+"
            magnitude = abs(coefficient)
            if monomial.is_constant():
                body = self._format_coefficient(magnitude)
            elif magnitude == 1:
                body = str(monomial)
            else:
                body = f"{self._format_coefficient(magnitude)}*{monomial}"
            parts.append((sign, body))
        first_sign, first_body = parts[0]
        rendered = first_body if first_sign == "+" else f"-{first_body}"
        for sign, body in parts[1:]:
            rendered += f" {sign} {body}"
        return rendered

    def __repr__(self) -> str:
        return f"Polynomial({str(self)})"


def _restore_polynomial(items: tuple[tuple[Monomial, Fraction], ...]) -> Polynomial:
    """Pickle helper: rebuild from (monomial, coefficient) pairs via the fast path."""
    return Polynomial._from_validated(dict(items))


_ZERO = Polynomial()
_ONE_MONOMIAL = Monomial.one()
_ONE_FRACTION = Fraction(1)
_ONE = Polynomial._from_validated({_ONE_MONOMIAL: _ONE_FRACTION})
