"""Monomial orders and monomial enumeration.

The paper's Step 1 and Step 3 both need "the set of all monomials of degree at
most d over a variable set"; :func:`monomials_up_to_degree` provides that in a
deterministic order.  The order functions are standard term orders used for
deterministic printing and for the Groebner-free normal forms in tests.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.polynomial.monomial import Monomial


class MonomialOrder(str, Enum):
    """Supported term orders."""

    LEX = "lex"
    GRLEX = "grlex"
    GREVLEX = "grevlex"


def _exponent_vector(monomial: Monomial, variables: Sequence[str]) -> tuple[int, ...]:
    return tuple(monomial.exponent(var) for var in variables)


def lex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Lexicographic key with respect to the given variable order."""
    return _exponent_vector(monomial, variables)


def grlex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Graded lexicographic key: total degree first, then lex."""
    return (monomial.degree(), _exponent_vector(monomial, variables))


def grevlex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Graded reverse lexicographic key."""
    exponents = _exponent_vector(monomial, variables)
    return (monomial.degree(), tuple(-e for e in reversed(exponents)))


_KEY_FUNCTIONS = {
    MonomialOrder.LEX: lex_key,
    MonomialOrder.GRLEX: grlex_key,
    MonomialOrder.GREVLEX: grevlex_key,
}


def order_key(order: MonomialOrder, monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Key of ``monomial`` under ``order`` with the given variable sequence."""
    return _KEY_FUNCTIONS[order](monomial, variables)


def sort_monomials(
    monomials: Iterable[Monomial],
    variables: Sequence[str],
    order: MonomialOrder = MonomialOrder.GRLEX,
    reverse: bool = False,
) -> list[Monomial]:
    """Sort monomials under the given term order (ascending by default)."""
    return sorted(monomials, key=lambda m: order_key(order, m, variables), reverse=reverse)


def monomials_up_to_degree(variables: Sequence[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree at most ``degree``.

    The result is sorted in graded lexicographic order and always contains the
    constant monomial ``1`` first.  This is the paper's set ``M^f_d`` (Step 1)
    and ``M_Upsilon`` (Step 3).
    """
    if degree < 0:
        return []
    ordered_vars = list(variables)
    current: list[Monomial] = [Monomial.one()]
    result: list[Monomial] = [Monomial.one()]
    for _ in range(degree):
        next_layer: list[Monomial] = []
        seen: set[Monomial] = set()
        for monomial in current:
            for var in ordered_vars:
                candidate = monomial * Monomial.of(var)
                if candidate not in seen:
                    seen.add(candidate)
                    next_layer.append(candidate)
        result.extend(next_layer)
        current = next_layer
    unique = list(dict.fromkeys(result))
    return sort_monomials(unique, ordered_vars, MonomialOrder.GRLEX)


def monomials_of_degree(variables: Sequence[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree exactly ``degree``."""
    return [m for m in monomials_up_to_degree(variables, degree) if m.degree() == degree]


@lru_cache(maxsize=256)
def cached_monomial_basis(variables: tuple[str, ...], degree: int) -> tuple[Monomial, ...]:
    """Memoised :func:`monomials_up_to_degree` for repeated pair compilations.

    Translation compiles one basis per (variable order, degree) combination and
    every constraint pair of the same function shares it, so interning the
    tuple avoids re-enumerating thousands of monomials per pair.
    """
    return tuple(monomials_up_to_degree(variables, degree))


def pascal_table(max_free: int, max_sum: int) -> np.ndarray:
    """Table ``T[m, s] = C(s + m, m)``: monomials over ``m`` variables of degree <= ``s``.

    Built by the hockey-stick recurrence ``T[m, s] = sum_{t<=s} T[m-1, t]`` so a
    single cumulative sum per row fills the whole table.
    """
    table = np.ones((max_free + 1, max_sum + 1), dtype=np.int64)
    for free in range(1, max_free + 1):
        np.cumsum(table[free - 1], out=table[free])
    return table


def grlex_ranks(exponents: np.ndarray) -> np.ndarray:
    """Vectorised rank of exponent rows in the graded lexicographic order.

    ``exponents`` is an ``(n, v)`` integer matrix; the result is the position of
    each row in :func:`monomials_up_to_degree` for any degree bound covering it
    (ranks are independent of the bound because grlex enumerates degree blocks
    in increasing order).  Rank 0 is the constant monomial.

    The closed form counts, per variable position, the same-degree monomials
    that are lex-smaller: with ``s`` exponent mass remaining at position ``i``
    and ``free = v - 1 - i`` positions after it, choosing a smaller ``i``-th
    exponent ``t < e_i`` leaves ``s - t`` mass for the free positions, and the
    hockey-stick sum of those compositions telescopes to
    ``C(s + free, free) - C(s - e_i + free, free)``.
    """
    exponents = np.asarray(exponents, dtype=np.int64)
    if exponents.ndim != 2:
        raise ValueError("grlex_ranks expects an (n, v) exponent matrix")
    count, width = exponents.shape
    if count == 0 or width == 0:
        return np.zeros(count, dtype=np.int64)
    degrees = exponents.sum(axis=1)
    max_degree = int(degrees.max())
    table = pascal_table(width, max_degree)
    # Monomials of strictly smaller degree: C(d - 1 + v, v).
    ranks = np.where(degrees > 0, table[width][np.maximum(degrees - 1, 0)], 0)
    remaining = degrees.copy()
    for position in range(width - 1):
        free = width - 1 - position
        row = table[free]
        exps = exponents[:, position]
        ranks = ranks + row[remaining] - row[remaining - exps]
        remaining = remaining - exps
    return ranks


def count_monomials_up_to_degree(num_variables: int, degree: int) -> int:
    """Number of monomials of degree <= ``degree`` in ``num_variables`` variables.

    This is the binomial coefficient C(num_variables + degree, degree); the
    closed form is used by the benchmark harness to report predicted template
    sizes without materialising the monomials.
    """
    if degree < 0 or num_variables < 0:
        return 0
    numerator = 1
    denominator = 1
    for i in range(1, degree + 1):
        numerator *= num_variables + i
        denominator *= i
    return numerator // denominator
