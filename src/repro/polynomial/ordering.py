"""Monomial orders and monomial enumeration.

The paper's Step 1 and Step 3 both need "the set of all monomials of degree at
most d over a variable set"; :func:`monomials_up_to_degree` provides that in a
deterministic order.  The order functions are standard term orders used for
deterministic printing and for the Groebner-free normal forms in tests.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

from repro.polynomial.monomial import Monomial


class MonomialOrder(str, Enum):
    """Supported term orders."""

    LEX = "lex"
    GRLEX = "grlex"
    GREVLEX = "grevlex"


def _exponent_vector(monomial: Monomial, variables: Sequence[str]) -> tuple[int, ...]:
    return tuple(monomial.exponent(var) for var in variables)


def lex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Lexicographic key with respect to the given variable order."""
    return _exponent_vector(monomial, variables)


def grlex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Graded lexicographic key: total degree first, then lex."""
    return (monomial.degree(), _exponent_vector(monomial, variables))


def grevlex_key(monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Graded reverse lexicographic key."""
    exponents = _exponent_vector(monomial, variables)
    return (monomial.degree(), tuple(-e for e in reversed(exponents)))


_KEY_FUNCTIONS = {
    MonomialOrder.LEX: lex_key,
    MonomialOrder.GRLEX: grlex_key,
    MonomialOrder.GREVLEX: grevlex_key,
}


def order_key(order: MonomialOrder, monomial: Monomial, variables: Sequence[str]) -> tuple:
    """Key of ``monomial`` under ``order`` with the given variable sequence."""
    return _KEY_FUNCTIONS[order](monomial, variables)


def sort_monomials(
    monomials: Iterable[Monomial],
    variables: Sequence[str],
    order: MonomialOrder = MonomialOrder.GRLEX,
    reverse: bool = False,
) -> list[Monomial]:
    """Sort monomials under the given term order (ascending by default)."""
    return sorted(monomials, key=lambda m: order_key(order, m, variables), reverse=reverse)


def monomials_up_to_degree(variables: Sequence[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree at most ``degree``.

    The result is sorted in graded lexicographic order and always contains the
    constant monomial ``1`` first.  This is the paper's set ``M^f_d`` (Step 1)
    and ``M_Upsilon`` (Step 3).
    """
    if degree < 0:
        return []
    ordered_vars = list(variables)
    current: list[Monomial] = [Monomial.one()]
    result: list[Monomial] = [Monomial.one()]
    for _ in range(degree):
        next_layer: list[Monomial] = []
        seen: set[Monomial] = set()
        for monomial in current:
            for var in ordered_vars:
                candidate = monomial * Monomial.of(var)
                if candidate not in seen:
                    seen.add(candidate)
                    next_layer.append(candidate)
        result.extend(next_layer)
        current = next_layer
    unique = list(dict.fromkeys(result))
    return sort_monomials(unique, ordered_vars, MonomialOrder.GRLEX)


def monomials_of_degree(variables: Sequence[str], degree: int) -> list[Monomial]:
    """All monomials over ``variables`` of total degree exactly ``degree``."""
    return [m for m in monomials_up_to_degree(variables, degree) if m.degree() == degree]


def count_monomials_up_to_degree(num_variables: int, degree: int) -> int:
    """Number of monomials of degree <= ``degree`` in ``num_variables`` variables.

    This is the binomial coefficient C(num_variables + degree, degree); the
    closed form is used by the benchmark harness to report predicted template
    sizes without materialising the monomials.
    """
    if degree < 0 or num_variables < 0:
        return 0
    numerator = 1
    denominator = 1
    for i in range(1, degree + 1):
        numerator *= num_variables + i
        denominator *= i
    return numerator // denominator
