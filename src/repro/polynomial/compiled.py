"""Compiled numeric views of polynomials: flat coefficient/exponent arrays.

The exact :class:`~repro.polynomial.polynomial.Polynomial` representation is
what Steps 1-3 need, but the Step-4 numeric solvers evaluate the same
polynomials millions of times over float vectors.  This module lowers
polynomials once into numpy arrays so that every subsequent evaluation is a
handful of vectorised operations with no ``Fraction`` arithmetic at all:

* :class:`CompiledPolynomial` — one polynomial, dense exponent matrix; float
  evaluation of single points and of batches of points.
* :class:`CompiledBlock` — many polynomials sharing one variable order,
  evaluated together with a single ``bincount`` reduction (this is what the
  per-constraint loops of the solvers compile to).
* :class:`QuadraticTriplets` / :func:`lower_quadratic` — the degree-<=2
  special case used by the QCLP machinery: constants, linear triplets and
  bilinear triplets, ready to be fed into sparse matrices.
* :func:`lower_coefficient_matrix` — the dense coefficient-matching matrix of
  the SOS feasibility solver, assembled in one pass.
* :class:`CoefficientPool` / :func:`lower_mixed` / :func:`lower_gram_triples` —
  the exact Step-3 lowering: mixed template polynomials become flat exponent
  matrices plus unknown-id and coefficient-pool-id columns, and the Gram/
  Cholesky SOS expansion becomes index triples, so the translation kernel in
  :mod:`repro.invariants.translation` works on integers only while the parent
  keeps the :class:`~fractions.Fraction` coefficients exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, MutableMapping, Sequence

import numpy as np

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial


def exponent_rows(
    monomials: Iterable[Monomial], index: Mapping[str, int], width: int
) -> np.ndarray:
    """Dense ``(len(monomials), width)`` exponent matrix over a variable index."""
    rows = []
    for monomial in monomials:
        row = [0] * width
        for var, exp in monomial.items:
            try:
                row[index[var]] = exp
            except KeyError as exc:
                raise PolynomialError(
                    f"variable {var!r} is not part of the compilation variable order"
                ) from exc
        rows.append(row)
    return np.asarray(rows, dtype=np.int64).reshape(len(rows), width)


_exponent_rows = exponent_rows


# Reserved slots shared by every pool: the coefficients that translation
# synthesises itself (the -1 of the moved right-hand side and the 1/2 of the
# Gram expansion) get fixed ids so kernels can emit them without a pool lookup.
POOL_PLUS_ONE = 0
POOL_MINUS_ONE = 1
POOL_PLUS_TWO = 2
POOL_MINUS_TWO = 3
_POOL_RESERVED = (Fraction(1), Fraction(-1), Fraction(2), Fraction(-2))


class CoefficientPool:
    """Deduplicated exact coefficients addressed by integer id.

    Flat kernel arrays carry pool ids instead of numeric values, so index
    arithmetic never touches a :class:`~fractions.Fraction` while assembly can
    recover the exact coefficient of every emitted term.
    """

    __slots__ = ("_values", "_ids")

    def __init__(self) -> None:
        self._values: list[Fraction] = list(_POOL_RESERVED)
        self._ids: dict[Fraction, int] = {value: i for i, value in enumerate(self._values)}

    def add(self, value: Fraction) -> int:
        """The id of ``value``, interning it on first use."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        slot = len(self._values)
        self._values.append(value)
        self._ids[value] = slot
        return slot

    def values(self) -> tuple[Fraction, ...]:
        """The id -> coefficient table (reserved slots first)."""
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._values)


@dataclass(frozen=True)
class MixedTermArrays:
    """A Step-2 template polynomial lowered to flat per-term arrays.

    Each term of a mixed polynomial (program variables times at most one
    template unknown) becomes one row: the program-part exponent vector, the
    unknown id (``-1`` when the term is unknown-free) and the pool id of its
    exact coefficient.  ``max_degree`` is the largest program-part degree.
    """

    exponents: np.ndarray  # (terms, program_variables), int64
    unknown_ids: np.ndarray  # (terms,), int64, -1 for unknown-free terms
    coefficient_ids: np.ndarray  # (terms,), int64 into the owning CoefficientPool
    max_degree: int


def lower_mixed(
    polynomial: Polynomial,
    variables: Sequence[str],
    unknown_index: MutableMapping[str, int],
    pool: CoefficientPool,
    negate: bool = False,
) -> MixedTermArrays:
    """Lower a template polynomial that is linear in its unknowns.

    ``unknown_index`` assigns ids to unknown names on first occurrence and is
    shared across the polynomials of one constraint pair, so conclusion and
    assumptions agree on ids.  ``negate`` bakes the sign of moved right-hand
    sides into the pooled coefficients.
    """
    keep = frozenset(variables)
    index = {name: position for position, name in enumerate(variables)}
    width = len(variables)
    program_parts: list[Monomial] = []
    unknown_ids: list[int] = []
    coefficient_ids: list[int] = []
    for monomial, coefficient in polynomial.items():
        program_part = monomial.restrict(keep)
        unknown_part = monomial.exclude(keep)
        items = unknown_part.items
        if not items:
            unknown_ids.append(-1)
        elif len(items) == 1 and items[0][1] == 1:
            name = items[0][0]
            slot = unknown_index.get(name)
            if slot is None:
                slot = len(unknown_index)
                unknown_index[name] = slot
            unknown_ids.append(slot)
        else:
            raise PolynomialError(
                f"term {monomial} is not linear in the template unknowns; "
                "Step 3 requires degree <= 1 unknown parts"
            )
        program_parts.append(program_part)
        coefficient_ids.append(pool.add(-coefficient if negate else coefficient))
    exponents = exponent_rows(program_parts, index, width)
    max_degree = int(exponents.sum(axis=1).max()) if exponents.size else 0
    return MixedTermArrays(
        exponents=exponents,
        unknown_ids=np.asarray(unknown_ids, dtype=np.int64),
        coefficient_ids=np.asarray(coefficient_ids, dtype=np.int64),
        max_degree=max_degree,
    )


def lower_gram_triples(dimension: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Index triples of the Cholesky expansion ``sum_c (sum_{r>=c} l_{r,c} y_r)^2``.

    Returns ``(rows_a, rows_b, cols, doubled)`` over all ``c <= r1 <= r2 <
    dimension``: the expansion contributes ``l_{r1,c} * l_{r2,c} * y_{r1} *
    y_{r2}`` with coefficient 2 off the diagonal (``doubled`` marks ``r1 <
    r2``) and 1 on it.  Lower-triangle entries are addressed by the row-major
    triangular index ``r * (r + 1) // 2 + c`` used by the multiplier naming.
    """
    rows_a: list[int] = []
    rows_b: list[int] = []
    cols: list[int] = []
    for col in range(dimension):
        for row_a in range(col, dimension):
            for row_b in range(row_a, dimension):
                cols.append(col)
                rows_a.append(row_a)
                rows_b.append(row_b)
    rows_a_arr = np.asarray(rows_a, dtype=np.int64)
    rows_b_arr = np.asarray(rows_b, dtype=np.int64)
    return (
        rows_a_arr,
        rows_b_arr,
        np.asarray(cols, dtype=np.int64),
        (rows_a_arr != rows_b_arr),
    )


@dataclass(frozen=True)
class CompiledPolynomial:
    """One polynomial lowered to ``coefficients @ prod(point**exponents)`` form."""

    variables: tuple[str, ...]
    coefficients: np.ndarray  # shape (terms,)
    exponents: np.ndarray  # shape (terms, variables), int64

    @staticmethod
    def from_polynomial(
        polynomial: Polynomial, variables: Sequence[str] | None = None
    ) -> "CompiledPolynomial":
        order = tuple(variables) if variables is not None else tuple(sorted(polynomial.variables()))
        index = {name: position for position, name in enumerate(order)}
        monomials = list(polynomial._terms)
        coefficients = np.array(
            [float(polynomial._terms[monomial]) for monomial in monomials], dtype=np.float64
        )
        exponents = _exponent_rows(monomials, index, len(order))
        return CompiledPolynomial(variables=order, coefficients=coefficients, exponents=exponents)

    @property
    def term_count(self) -> int:
        return int(self.coefficients.shape[0])

    def evaluate(self, point: np.ndarray) -> float:
        """Value at one point (a vector in this compilation's variable order)."""
        if not self.term_count:
            return 0.0
        monomial_values = np.prod(np.asarray(point, dtype=np.float64) ** self.exponents, axis=1)
        return float(self.coefficients @ monomial_values)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Values at a batch of points, shape ``(k, variables) -> (k,)``."""
        points = np.asarray(points, dtype=np.float64)
        if not self.term_count:
            return np.zeros(points.shape[0])
        powers = points[:, None, :] ** self.exponents[None, :, :]
        return np.prod(powers, axis=2) @ self.coefficients

    def evaluate_valuation(self, valuation: Mapping[str, float]) -> float:
        """Value under a name-to-value mapping (missing names raise)."""
        try:
            point = np.array([float(valuation[name]) for name in self.variables])
        except KeyError as exc:
            raise PolynomialError(f"valuation is missing variable {exc.args[0]!r}") from exc
        return self.evaluate(point)


@dataclass(frozen=True)
class CompiledBlock:
    """Many polynomials over one shared variable order, evaluated together.

    ``rows[t]`` is the polynomial a term belongs to; evaluation computes every
    term's monomial value and reduces per row with ``bincount``.
    """

    variables: tuple[str, ...]
    row_count: int
    rows: np.ndarray  # shape (terms,), int64
    coefficients: np.ndarray  # shape (terms,)
    exponents: np.ndarray  # shape (terms, variables), int64

    def evaluate_all(self, point: np.ndarray) -> np.ndarray:
        """The value of every polynomial at ``point`` (shape ``(row_count,)``)."""
        if not self.rows.size:
            return np.zeros(self.row_count)
        monomial_values = np.prod(np.asarray(point, dtype=np.float64) ** self.exponents, axis=1)
        return np.bincount(
            self.rows, weights=self.coefficients * monomial_values, minlength=self.row_count
        )

    def evaluate_assignment(self, assignment: Mapping[str, float]) -> np.ndarray:
        """The value of every polynomial under a name-to-value mapping."""
        point = np.array([float(assignment.get(name, 0.0)) for name in self.variables])
        return self.evaluate_all(point)


def lower_block(
    polynomials: Sequence[Polynomial], variables: Sequence[str] | None = None
) -> CompiledBlock:
    """Compile many polynomials into one :class:`CompiledBlock`."""
    if variables is None:
        names: set[str] = set()
        for polynomial in polynomials:
            names.update(polynomial.variables())
        variables = sorted(names)
    order = tuple(variables)
    index = {name: position for position, name in enumerate(order)}
    rows: list[int] = []
    coefficients: list[float] = []
    monomials: list[Monomial] = []
    for row, polynomial in enumerate(polynomials):
        for monomial, coefficient in polynomial.items():
            rows.append(row)
            coefficients.append(float(coefficient))
            monomials.append(monomial)
    return CompiledBlock(
        variables=order,
        row_count=len(polynomials),
        rows=np.asarray(rows, dtype=np.int64),
        coefficients=np.asarray(coefficients, dtype=np.float64),
        exponents=_exponent_rows(monomials, index, len(order)),
    )


@dataclass(frozen=True)
class QuadraticTriplets:
    """Degree-<=2 polynomials split into constant, linear and bilinear parts.

    The linear part is ``(rows, cols, values)`` triplets (one per degree-1
    term) and the quadratic part ``(rows, left, right, values)`` triplets (one
    per degree-2 term, with ``left == right`` for squares) — exactly the form
    the sparse-matrix QCLP machinery consumes.
    """

    row_count: int
    constants: np.ndarray
    linear_rows: np.ndarray
    linear_cols: np.ndarray
    linear_values: np.ndarray
    quad_rows: np.ndarray
    quad_left: np.ndarray
    quad_right: np.ndarray
    quad_values: np.ndarray


def lower_quadratic(
    polynomials: Sequence[Polynomial], index: Mapping[str, int]
) -> QuadraticTriplets:
    """Split degree-<=2 polynomials into flat triplet arrays over ``index``."""
    constants = np.zeros(len(polynomials))
    linear_rows: list[int] = []
    linear_cols: list[int] = []
    linear_values: list[float] = []
    quad_rows: list[int] = []
    quad_left: list[int] = []
    quad_right: list[int] = []
    quad_values: list[float] = []

    for row, polynomial in enumerate(polynomials):
        for monomial, coefficient in polynomial.items():
            value = float(coefficient)
            items = monomial.items
            degree = monomial.degree()
            if degree == 0:
                constants[row] += value
            elif degree == 1:
                linear_rows.append(row)
                linear_cols.append(index[items[0][0]])
                linear_values.append(value)
            elif degree == 2:
                quad_rows.append(row)
                if len(items) == 1:
                    column = index[items[0][0]]
                    quad_left.append(column)
                    quad_right.append(column)
                else:
                    quad_left.append(index[items[0][0]])
                    quad_right.append(index[items[1][0]])
                quad_values.append(value)
            else:
                raise PolynomialError(f"polynomial of degree {degree} is not quadratic")

    return QuadraticTriplets(
        row_count=len(polynomials),
        constants=constants,
        linear_rows=np.asarray(linear_rows, dtype=np.int64),
        linear_cols=np.asarray(linear_cols, dtype=np.int64),
        linear_values=np.asarray(linear_values, dtype=np.float64),
        quad_rows=np.asarray(quad_rows, dtype=np.int64),
        quad_left=np.asarray(quad_left, dtype=np.int64),
        quad_right=np.asarray(quad_right, dtype=np.int64),
        quad_values=np.asarray(quad_values, dtype=np.float64),
    )


def monomial_index(polynomials: Iterable[Polynomial]) -> dict[Monomial, int]:
    """A deterministic index of every monomial occurring in ``polynomials``.

    Iteration order of the inputs decides the index (first occurrence wins),
    matching the historical behaviour of the SOS coefficient-matching setup.
    """
    index: dict[Monomial, int] = {}
    for polynomial in polynomials:
        for monomial in polynomial._terms:
            if monomial not in index:
                index[monomial] = len(index)
    return index


def lower_coefficient_matrix(
    polynomials: Sequence[Polynomial], index: Mapping[Monomial, int]
) -> np.ndarray:
    """Dense ``(monomials, polynomials)`` coefficient matrix over ``index``.

    Column ``j`` holds the coefficients of ``polynomials[j]`` with respect to
    the monomial basis fixed by ``index`` — the linear coefficient-matching
    system ``A x = b`` of the SOS feasibility solver.
    """
    matrix = np.zeros((len(index), len(polynomials)))
    for column, polynomial in enumerate(polynomials):
        for monomial, coefficient in polynomial.items():
            matrix[index[monomial], column] += float(coefficient)
    return matrix


def coefficient_vector(polynomial: Polynomial, index: Mapping[Monomial, int]) -> np.ndarray:
    """Dense coefficient vector of one polynomial over a monomial index."""
    vector = np.zeros(len(index))
    for monomial, coefficient in polynomial.items():
        vector[index[monomial]] = float(coefficient)
    return vector
