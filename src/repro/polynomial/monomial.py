"""Immutable, interned power-product monomials.

A :class:`Monomial` is a finite map from variable names to positive integer
exponents, e.g. ``x**2 * y``.  The empty map is the constant monomial ``1``.

Monomials are *flyweights*: every construction path canonicalises the power
map to a sorted ``(variable, exponent)`` tuple and returns the unique interned
instance for that tuple, so equality is identity, the hash is precomputed and
the graded-lexicographic sort key is cached.  The validating public
constructor :class:`Monomial` remains the boundary for untrusted input; all
internal arithmetic goes through the trusted :meth:`Monomial._from_tuple`
fast path, which skips re-validation entirely.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import PolynomialError

_Items = "tuple[tuple[str, int], ...]"


def _restore_interned(items: tuple[tuple[str, int], ...]) -> "Monomial":
    """Pickle/copy helper: re-intern a monomial from its canonical tuple."""
    return Monomial._from_tuple(items)


class Monomial:
    """A power product of variables, such as ``x**2 * y``.

    Instances are immutable and interned: two monomials with the same power
    map are always the *same object*, so ``==`` is identity-speed and
    dictionary lookups never re-hash the power map.
    """

    __slots__ = ("_items", "_powers", "_hash", "_key")

    #: Global flyweight table, keyed by the canonical sorted item tuple.
    _interned: dict[tuple[tuple[str, int], ...], "Monomial"] = {}

    def __new__(cls, powers: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        cleaned: dict[str, int] = {}
        for var, exp in dict(powers).items():
            if not isinstance(var, str) or not var:
                raise PolynomialError(f"variable names must be non-empty strings, got {var!r}")
            if not isinstance(exp, int) or isinstance(exp, bool):
                raise PolynomialError(f"exponent of {var!r} must be an int, got {exp!r}")
            if exp < 0:
                raise PolynomialError(f"negative exponent {exp} for variable {var!r}")
            if exp > 0:
                cleaned[var] = exp
        return cls._from_tuple(tuple(sorted(cleaned.items())))

    # -- constructors -------------------------------------------------------

    @classmethod
    def _from_tuple(cls, items: tuple[tuple[str, int], ...]) -> "Monomial":
        """Trusted raw constructor used by all internal arithmetic.

        ``items`` must already be canonical: sorted by variable name, with
        every exponent a positive ``int``.  No validation is performed.
        """
        table = cls._interned
        cached = table.get(items)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self._items = items
        self._powers = dict(items)
        self._hash = hash(items)
        degree = 0
        for _, exp in items:
            degree += exp
        self._key = (degree, items)
        table[items] = self
        return self

    @staticmethod
    def one() -> "Monomial":
        """The constant monomial ``1``."""
        return _ONE

    @staticmethod
    def of(var: str, exponent: int = 1) -> "Monomial":
        """The monomial ``var**exponent``."""
        return Monomial({var: exponent})

    @classmethod
    def interned_count(cls) -> int:
        """Number of distinct monomials currently in the flyweight table."""
        return len(cls._interned)

    # -- basic protocol ------------------------------------------------------

    def __reduce__(self):
        return (_restore_interned, (self._items,))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Monomial):
            # Interning makes distinct instances unequal by construction.
            return self._items == other._items
        return NotImplemented

    def __lt__(self, other: "Monomial") -> bool:
        return self._key < other._key

    def __le__(self, other: "Monomial") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "Monomial") -> bool:
        return self._key > other._key

    def __ge__(self, other: "Monomial") -> bool:
        return self._key >= other._key

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._items)

    def __contains__(self, var: str) -> bool:
        return var in self._powers

    def __bool__(self) -> bool:
        """True for every monomial except the constant ``1``."""
        return bool(self._items)

    # -- accessors -----------------------------------------------------------

    @property
    def powers(self) -> dict[str, int]:
        """A copy of the variable-to-exponent map."""
        return dict(self._powers)

    @property
    def items(self) -> tuple[tuple[str, int], ...]:
        """The canonical sorted ``(variable, exponent)`` tuple (no copy)."""
        return self._items

    def exponent(self, var: str) -> int:
        """The exponent of ``var`` in this monomial (0 when absent)."""
        return self._powers.get(var, 0)

    def degree(self) -> int:
        """Total degree, i.e. the sum of all exponents."""
        return self._key[0]

    def variables(self) -> frozenset[str]:
        """The set of variables occurring with a positive exponent."""
        return frozenset(self._powers)

    def is_constant(self) -> bool:
        """Whether this is the constant monomial ``1``."""
        return not self._items

    def is_univariate(self) -> bool:
        """Whether at most one variable occurs."""
        return len(self._items) <= 1

    def sort_key(self) -> tuple:
        """Graded-lexicographic key: first by total degree, then lexicographically."""
        return self._key

    # -- algebra -------------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        a = self._items
        b = other._items
        if not b:
            return self
        if not a:
            return other
        # Both sides are canonical sorted tuples, so the product is a merge.
        merged: list[tuple[str, int]] = []
        i = j = 0
        len_a = len(a)
        len_b = len(b)
        while i < len_a and j < len_b:
            var_a, exp_a = a[i]
            var_b, exp_b = b[j]
            if var_a == var_b:
                merged.append((var_a, exp_a + exp_b))
                i += 1
                j += 1
            elif var_a < var_b:
                merged.append(a[i])
                i += 1
            else:
                merged.append(b[j])
                j += 1
        if i < len_a:
            merged.extend(a[i:])
        elif j < len_b:
            merged.extend(b[j:])
        return Monomial._from_tuple(tuple(merged))

    def __pow__(self, exponent: int) -> "Monomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise PolynomialError(f"monomial exponent must be a non-negative int, got {exponent!r}")
        if exponent == 0:
            return _ONE
        if exponent == 1:
            return self
        return Monomial._from_tuple(tuple((var, exp * exponent) for var, exp in self._items))

    def divides(self, other: "Monomial") -> bool:
        """Whether this monomial divides ``other`` exactly."""
        other_powers = other._powers
        return all(other_powers.get(var, 0) >= exp for var, exp in self._items)

    def divide(self, other: "Monomial") -> "Monomial":
        """Exact division ``self / other``; raises if not divisible."""
        if not other.divides(self):
            raise PolynomialError(f"{other} does not divide {self}")
        quotient = dict(self._powers)
        for var, exp in other._items:
            remaining = quotient[var] - exp
            if remaining:
                quotient[var] = remaining
            else:
                del quotient[var]
        return Monomial._from_tuple(tuple(sorted(quotient.items())))

    def gcd(self, other: "Monomial") -> "Monomial":
        """Greatest common divisor (variable-wise minimum of exponents)."""
        other_powers = other._powers
        shared = tuple(
            (var, min(exp, other_powers[var]))
            for var, exp in self._items
            if var in other_powers
        )
        return Monomial._from_tuple(shared)

    def lcm(self, other: "Monomial") -> "Monomial":
        """Least common multiple (variable-wise maximum of exponents)."""
        merged = dict(self._powers)
        for var, exp in other._items:
            existing = merged.get(var)
            merged[var] = exp if existing is None else max(existing, exp)
        return Monomial._from_tuple(tuple(sorted(merged.items())))

    def restrict(self, variables: Iterable[str]) -> "Monomial":
        """The part of this monomial involving only ``variables``."""
        keep = set(variables)
        return Monomial._from_tuple(tuple(item for item in self._items if item[0] in keep))

    def exclude(self, variables: Iterable[str]) -> "Monomial":
        """The part of this monomial involving none of ``variables``."""
        drop = set(variables)
        return Monomial._from_tuple(tuple(item for item in self._items if item[0] not in drop))

    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """Numeric value of the monomial under a (complete) valuation."""
        result = 1.0
        for var, exp in self._items:
            try:
                base = valuation[var]
            except KeyError as exc:
                raise PolynomialError(f"valuation is missing variable {var!r}") from exc
            result *= base**exp
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Monomial":
        """Rename variables according to ``mapping`` (unlisted variables are kept)."""
        renamed: dict[str, int] = {}
        for var, exp in self._items:
            target = mapping.get(var, var)
            existing = renamed.get(target)
            renamed[target] = exp if existing is None else existing + exp
        return Monomial._from_tuple(tuple(sorted(renamed.items())))

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        if not self._items:
            return "1"
        parts = []
        for var, exp in self._items:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({self._powers!r})"


_ONE = Monomial()
