"""Immutable power-product monomials.

A :class:`Monomial` is a finite map from variable names to positive integer
exponents, e.g. ``x**2 * y``.  The empty map is the constant monomial ``1``.
Monomials are hashable and totally ordered (graded lexicographic by default)
so they can be used as dictionary keys inside :class:`~repro.polynomial.polynomial.Polynomial`
and sorted deterministically when printing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import PolynomialError


class Monomial:
    """A power product of variables, such as ``x**2 * y``.

    Instances are immutable; all operations return new monomials.
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = dict(powers)
        cleaned: dict[str, int] = {}
        for var, exp in items.items():
            if not isinstance(var, str) or not var:
                raise PolynomialError(f"variable names must be non-empty strings, got {var!r}")
            if not isinstance(exp, int):
                raise PolynomialError(f"exponent of {var!r} must be an int, got {exp!r}")
            if exp < 0:
                raise PolynomialError(f"negative exponent {exp} for variable {var!r}")
            if exp > 0:
                cleaned[var] = exp
        self._powers: dict[str, int] = cleaned
        self._hash = hash(frozenset(cleaned.items()))

    # -- constructors -------------------------------------------------------

    @staticmethod
    def one() -> "Monomial":
        """The constant monomial ``1``."""
        return _ONE

    @staticmethod
    def of(var: str, exponent: int = 1) -> "Monomial":
        """The monomial ``var**exponent``."""
        return Monomial({var: exponent})

    # -- basic protocol ------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._powers == other._powers

    def __lt__(self, other: "Monomial") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Monomial") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Monomial") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Monomial") -> bool:
        return self.sort_key() >= other.sort_key()

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._powers.items()))

    def __contains__(self, var: str) -> bool:
        return var in self._powers

    def __bool__(self) -> bool:
        """True for every monomial except the constant ``1``."""
        return bool(self._powers)

    # -- accessors -----------------------------------------------------------

    @property
    def powers(self) -> dict[str, int]:
        """A copy of the variable-to-exponent map."""
        return dict(self._powers)

    def exponent(self, var: str) -> int:
        """The exponent of ``var`` in this monomial (0 when absent)."""
        return self._powers.get(var, 0)

    def degree(self) -> int:
        """Total degree, i.e. the sum of all exponents."""
        return sum(self._powers.values())

    def variables(self) -> frozenset[str]:
        """The set of variables occurring with a positive exponent."""
        return frozenset(self._powers)

    def is_constant(self) -> bool:
        """Whether this is the constant monomial ``1``."""
        return not self._powers

    def is_univariate(self) -> bool:
        """Whether at most one variable occurs."""
        return len(self._powers) <= 1

    def sort_key(self) -> tuple:
        """Graded-lexicographic key: first by total degree, then lexicographically."""
        return (self.degree(), tuple(sorted(self._powers.items())))

    # -- algebra -------------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        merged = dict(self._powers)
        for var, exp in other._powers.items():
            merged[var] = merged.get(var, 0) + exp
        return Monomial(merged)

    def __pow__(self, exponent: int) -> "Monomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise PolynomialError(f"monomial exponent must be a non-negative int, got {exponent!r}")
        if exponent == 0:
            return _ONE
        return Monomial({var: exp * exponent for var, exp in self._powers.items()})

    def divides(self, other: "Monomial") -> bool:
        """Whether this monomial divides ``other`` exactly."""
        return all(other.exponent(var) >= exp for var, exp in self._powers.items())

    def divide(self, other: "Monomial") -> "Monomial":
        """Exact division ``self / other``; raises if not divisible."""
        if not other.divides(self):
            raise PolynomialError(f"{other} does not divide {self}")
        quotient = dict(self._powers)
        for var, exp in other._powers.items():
            remaining = quotient[var] - exp
            if remaining:
                quotient[var] = remaining
            else:
                del quotient[var]
        return Monomial(quotient)

    def gcd(self, other: "Monomial") -> "Monomial":
        """Greatest common divisor (variable-wise minimum of exponents)."""
        shared = {
            var: min(exp, other.exponent(var))
            for var, exp in self._powers.items()
            if var in other
        }
        return Monomial(shared)

    def lcm(self, other: "Monomial") -> "Monomial":
        """Least common multiple (variable-wise maximum of exponents)."""
        merged = dict(self._powers)
        for var, exp in other._powers.items():
            merged[var] = max(merged.get(var, 0), exp)
        return Monomial(merged)

    def restrict(self, variables: Iterable[str]) -> "Monomial":
        """The part of this monomial involving only ``variables``."""
        keep = set(variables)
        return Monomial({var: exp for var, exp in self._powers.items() if var in keep})

    def exclude(self, variables: Iterable[str]) -> "Monomial":
        """The part of this monomial involving none of ``variables``."""
        drop = set(variables)
        return Monomial({var: exp for var, exp in self._powers.items() if var not in drop})

    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """Numeric value of the monomial under a (complete) valuation."""
        result = 1.0
        for var, exp in self._powers.items():
            try:
                base = valuation[var]
            except KeyError as exc:
                raise PolynomialError(f"valuation is missing variable {var!r}") from exc
            result *= base**exp
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Monomial":
        """Rename variables according to ``mapping`` (unlisted variables are kept)."""
        renamed: dict[str, int] = {}
        for var, exp in self._powers.items():
            target = mapping.get(var, var)
            renamed[target] = renamed.get(target, 0) + exp
        return Monomial(renamed)

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for var, exp in sorted(self._powers.items()):
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({self._powers!r})"


_ONE = Monomial()
