"""Exact multivariate polynomial arithmetic over the rationals.

This package is the algebraic substrate of the whole library: program
assignments, guards, pre/post-conditions, invariant templates and the
Positivstellensatz certificates are all represented as
:class:`~repro.polynomial.polynomial.Polynomial` values.

Design notes
------------
* Coefficients are :class:`fractions.Fraction` so the whole Steps 1-3
  reduction of the paper is exact; floats only appear inside the numeric
  Step-4 solvers.
* Template unknowns (the paper's *s-*, *t-*, *l-* and *eps-variables*) are
  ordinary variables living in the same ring as program variables.  The
  :func:`~repro.polynomial.polynomial.Polynomial.collect` operation splits a
  polynomial by the monomials over a chosen variable subset, which is exactly
  the "equate coefficients of corresponding monomials" step of the paper.
"""

from repro.polynomial.compiled import (
    CompiledBlock,
    CompiledPolynomial,
    QuadraticTriplets,
    coefficient_vector,
    lower_block,
    lower_coefficient_matrix,
    lower_quadratic,
    monomial_index,
)
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import (
    MonomialOrder,
    count_monomials_up_to_degree,
    grevlex_key,
    grlex_key,
    lex_key,
    monomials_of_degree,
    monomials_up_to_degree,
)
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial
from repro.polynomial.sos import (
    GramEncoding,
    gram_matrix_encoding,
    is_numerically_psd,
    project_to_psd,
    sos_basis,
    sos_from_gram,
)

__all__ = [
    "CompiledBlock",
    "CompiledPolynomial",
    "Monomial",
    "MonomialOrder",
    "Polynomial",
    "QuadraticTriplets",
    "coefficient_vector",
    "lower_block",
    "lower_coefficient_matrix",
    "lower_quadratic",
    "monomial_index",
    "GramEncoding",
    "gram_matrix_encoding",
    "sos_basis",
    "sos_from_gram",
    "is_numerically_psd",
    "project_to_psd",
    "parse_polynomial",
    "lex_key",
    "grlex_key",
    "grevlex_key",
    "monomials_up_to_degree",
    "monomials_of_degree",
    "count_monomials_up_to_degree",
]
