"""Unit tests for repro.lang.validate."""

import pytest

from repro.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import ensure_trailing_return, frozen_parameter, return_variable, validate_program


def test_return_variable_and_frozen_parameter_names():
    assert return_variable("sum") == "ret_sum"
    assert frozen_parameter("n") == "n_init"


def test_duplicate_function_rejected():
    with pytest.raises(ValidationError):
        parse_program("f(x) { return x } f(y) { return y }")


def test_duplicate_parameters_rejected():
    with pytest.raises(ValidationError):
        parse_program("f(x, x) { return x }")


def test_undefined_callee_rejected():
    with pytest.raises(ValidationError):
        parse_program("f(x) { y := g(x); return y }")


def test_arity_mismatch_rejected():
    source = "g(a) { return a } f(x, y) { z := g(x, y); return z }"
    with pytest.raises(ValidationError):
        parse_program(source)


def test_variable_on_both_sides_of_call_rejected():
    source = "g(a) { return a } f(x) { x := g(x); return x }"
    with pytest.raises(ValidationError):
        parse_program(source)


def test_reserved_return_prefix_rejected():
    with pytest.raises(ValidationError):
        parse_program("f(x) { ret_f := 1; return ret_f }")


def test_reserved_frozen_suffix_rejected():
    with pytest.raises(ValidationError):
        parse_program("f(x) { y_init := 1; return y_init }")


def test_missing_main_rejected():
    program = parse_program("f(x) { return x }")
    broken = type(program)(functions=program.functions, main="nope")
    with pytest.raises(ValidationError):
        validate_program(broken)


def test_ensure_trailing_return():
    with_return = parse_program("f(x) { return x }")
    assert ensure_trailing_return(with_return.function("f"))
    without_return = parse_program("f(x) { y := 1 }")
    assert not ensure_trailing_return(without_return.function("f"))


def test_valid_recursive_program_passes():
    source = """
    fact(n) {
        if n <= 1 then
            return 1
        else
            m := n - 1;
            r := fact(m);
            return n*r
        fi
    }
    """
    program = parse_program(source)
    validate_program(program)  # should not raise
    assert program.is_recursive()
