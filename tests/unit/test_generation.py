"""Unit tests for repro.invariants.generation (Step 2 / 2.a / 2.b) and constraints."""

import pytest

from repro.invariants.constraints import ConstraintPair
from repro.invariants.generation import constraint_pair_statistics, generate_constraint_pairs
from repro.invariants.template import TemplateSet
from repro.polynomial.parse import parse_polynomial
from repro.spec.preconditions import Precondition, augment_entry_preconditions


@pytest.fixture()
def sum_pairs(sum_cfg, sum_precondition):
    templates = TemplateSet.build(sum_cfg, degree=2)
    precondition = augment_entry_preconditions(sum_cfg, sum_precondition)
    return generate_constraint_pairs(sum_cfg, precondition, templates)


def test_one_initiation_pair_per_function(sum_pairs):
    initiation = [pair for pair in sum_pairs if pair.name.startswith("init:")]
    assert len(initiation) == 1


def test_one_pair_per_transition_and_clause(sum_cfg, sum_pairs):
    # 10 transitions, single-clause guards, 1 conjunct: 10 consecution pairs + 1 initiation.
    assert len(sum_pairs) == 11


def test_guard_pairs_include_guard_polynomial(sum_pairs):
    guard_pairs = [pair for pair in sum_pairs if pair.name.startswith("guard:sum:3")]
    assert len(guard_pairs) == 2
    taken = next(pair for pair in guard_pairs if "->sum:4" in pair.name)
    assert any(p == parse_polynomial("n - i") for p in taken.assumptions)
    not_taken = next(pair for pair in guard_pairs if "->sum:8" in pair.name)
    assert any(p == parse_polynomial("i - n") for p in not_taken.assumptions)


def test_assignment_pair_composes_update(sum_cfg, sum_precondition):
    templates = TemplateSet.build(sum_cfg, degree=1)
    pairs = generate_constraint_pairs(sum_cfg, sum_precondition, templates)
    step_1_2 = next(pair for pair in pairs if pair.name.startswith("step:sum:1"))
    # The conclusion is eta(2) composed with [i <- 1]: no i monomial left.
    assert "i" not in {v for v in step_1_2.conclusion.variables() if not v.startswith("$")}


def test_nondet_pairs_present(sum_pairs):
    nondet = [pair for pair in sum_pairs if pair.name.startswith("nondet:")]
    assert len(nondet) == 2


def test_conjuncts_multiply_conclusions(sum_cfg, sum_precondition):
    templates = TemplateSet.build(sum_cfg, degree=1, conjuncts=2)
    pairs = generate_constraint_pairs(sum_cfg, sum_precondition, templates)
    # Every consecution/initiation location now produces two pairs (one per conjunct).
    assert len(pairs) == 22


def test_recursive_program_has_call_and_post_pairs(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    precondition = augment_entry_preconditions(
        recursive_sum_cfg,
        Precondition.from_spec(recursive_sum_cfg, {"recursive_sum": {1: "n >= 0"}}),
    )
    pairs = generate_constraint_pairs(recursive_sum_cfg, precondition, templates)
    kinds = {pair.name.split(":", 1)[0] for pair in pairs}
    assert {"init", "step", "guard", "nondet", "call", "post"} <= kinds


def test_call_pair_introduces_fresh_return_variable(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    precondition = Precondition.from_spec(recursive_sum_cfg, {"recursive_sum": {1: "n >= 0"}})
    pairs = generate_constraint_pairs(recursive_sum_cfg, precondition, templates)
    call_pair = next(pair for pair in pairs if pair.name.startswith("call:"))
    fresh = [name for name in call_pair.program_variables if "__ret" in name]
    assert len(fresh) == 1
    # The fresh variable appears in the conclusion (eta(l')[v0 <- v0*]).
    assert fresh[0] in call_pair.conclusion.variables()


def test_post_pairs_target_postcondition_template(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    precondition = Precondition.trivial()
    pairs = generate_constraint_pairs(recursive_sum_cfg, precondition, templates)
    post_pairs = [pair for pair in pairs if pair.name.startswith("post:")]
    # Two explicit return statements of Figure 4 plus the implicit trailing "return 0"
    # added by the Return Assumption.
    assert len(post_pairs) == 3
    for pair in post_pairs:
        unknowns = pair.conclusion.variables()
        assert any("post_recursive_sum" in name for name in unknowns)


def test_statistics(sum_pairs):
    stats = constraint_pair_statistics(sum_pairs)
    assert stats["total"] == len(sum_pairs)
    assert stats["kind_init"] == 1
    assert stats["max_assumptions"] >= 2


# -- ConstraintPair behaviour ---------------------------------------------------------


def test_relevant_program_variables_filters_unused():
    pair = ConstraintPair(
        name="t",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("x + 1"),
        program_variables=("x", "y", "z"),
    )
    assert pair.relevant_program_variables() == ("x",)


def test_holds_numerically_vacuous_and_direct():
    pair = ConstraintPair(
        name="t",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("x + 1"),
        program_variables=("x",),
    )
    assert pair.holds_numerically({"x": 2.0})      # 2 >= 0 and 3 > 0
    assert pair.holds_numerically({"x": -5.0})     # vacuous: assumption fails
    failing = ConstraintPair(
        name="t2",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("x - 1"),
        program_variables=("x",),
    )
    assert not failing.holds_numerically({"x": 0.5})


def test_instantiate_replaces_unknowns():
    pair = ConstraintPair(
        name="t",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("x") * parse_polynomial("$s_f_1_0_0") + 1,
        program_variables=("x",),
    )
    concrete = pair.instantiate({"$s_f_1_0_0": 2.0})
    assert concrete.conclusion == parse_polynomial("2*x + 1")
    assert not concrete.unknowns()


def test_max_degree_counts_program_variables_only():
    pair = ConstraintPair(
        name="t",
        assumptions=(parse_polynomial("x*x"),),
        conclusion=parse_polynomial("$s_f_1_0_0") * parse_polynomial("x"),
        program_variables=("x",),
    )
    assert pair.max_degree() == 2
