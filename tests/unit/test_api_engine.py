"""Tests of the service engine (repro.api.engine)."""

import pytest

from repro.api import (
    Engine,
    EngineClosedError,
    RequestValidationError,
    SynthesisRequest,
    SynthesisResponse,
)
from repro.invariants.synthesis import build_task
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.registry import get_benchmark

QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=60)


def request_for(name: str, **overrides) -> SynthesisRequest:
    benchmark = get_benchmark(name)
    fields = dict(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1),
        request_id=name,
    )
    fields.update(overrides)
    return SynthesisRequest(**fields)


@pytest.fixture(scope="module")
def engine():
    with Engine(solver_options=QUICK_SOLVE) as shared:
        yield shared


# -- synthesize --------------------------------------------------------------------


def test_synthesize_returns_ok_response(engine):
    response = engine.synthesize(request_for("sum"))
    assert response.ok and response.status == "ok"
    assert response.result is not None and response.result.success
    assert response.invariants and response.assignment
    assert response.system_size == response.result.system_size
    assert response.timings["total_seconds"] > 0
    # Invariants are rendered both pretty and machine-readable.
    entry = response.invariants[0]["assertions"][0]
    assert {"function", "index", "kind", "text", "atoms"} <= set(entry)


def test_synthesize_matches_direct_solver_run(engine):
    benchmark = get_benchmark("freire1")
    response = engine.synthesize(request_for("freire1"))
    task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), benchmark.options(upsilon=1))
    direct = PenaltyQCLPSolver(QUICK_SOLVE).solve(task.system)
    assert response.assignment == dict(direct.assignment)


def test_identical_requests_share_reduction_and_solve(engine):
    first = engine.synthesize(request_for("cohendiv"))
    second = engine.synthesize(request_for("cohendiv"))
    assert second.from_cache and second.shared_solve
    assert not first.shared_solve
    assert first == second  # fingerprint equality ignores cache flags


def test_strong_mode_returns_representatives(engine):
    from repro.solvers.strong import RepresentativeEnumerator

    benchmark = get_benchmark("freire1")
    request = SynthesisRequest(
        program=benchmark.source,
        mode="strong",
        precondition=benchmark.precondition,
        options=benchmark.options(upsilon=1, with_witness=False),
    )
    enumerator = RepresentativeEnumerator(attempts=3, options=QUICK_SOLVE)
    response = engine.synthesize(request, enumerator=enumerator)
    assert response.ok
    assert "representatives" in response.solver_status


def test_reduce_only_requests_report_structure(engine):
    response = engine.synthesize(request_for("sum", reduce_only=True))
    assert response.status == "reduced"
    assert response.result is None and response.task is not None
    assert response.system_size == response.task.system.size


def test_error_requests_never_raise(engine):
    response = engine.synthesize(request_for("sum", program="this is not a program"))
    assert not response.ok and response.status == "error"
    assert response.error is not None and response.error.type == "ParseError"
    assert "Traceback" in response.error.traceback


# -- submit / map ------------------------------------------------------------------


def test_submit_returns_completed_handle_on_sequential_engine(engine):
    handle = engine.submit(request_for("sum"))
    assert handle.done()
    assert handle.result().status == "ok"
    assert handle.submission_id >= 0


def test_map_streams_with_submission_ids_and_isolates_failures(engine):
    requests = [
        request_for("sum"),
        request_for("sum", program="not a program at all", request_id="broken"),
        request_for("freire1"),
    ]
    responses = list(engine.map(requests))
    assert len(responses) == 3
    by_id = {response.submission_id: response for response in responses}
    assert len(by_id) == 3  # every response has a distinct submission id
    statuses = [response.status for response in responses]
    assert statuses.count("error") == 1
    assert all(isinstance(response, SynthesisResponse) for response in responses)


def test_map_out_of_order_streaming_with_workers():
    # A slow first request must not block the fast second one from arriving first.
    slow = request_for("sum", request_id="slow")
    fast = request_for("sum", program="broken on purpose", request_id="fast")
    with Engine(workers=2, solver_options=QUICK_SOLVE) as engine:
        responses = list(engine.map([slow, fast]))
        assert {response.request_id for response in responses} == {"slow", "fast"}
        # Out-of-order mode yields the parse failure (milliseconds) before the solve.
        assert responses[0].request_id == "fast"
        # Ordered mode restores submission order.
        ordered = list(engine.map([slow, fast], ordered=True))
        assert [response.request_id for response in ordered] == ["slow", "fast"]


def test_threaded_engine_matches_sequential():
    requests = [request_for("freire1"), request_for("cohendiv")]
    with Engine(solver_options=QUICK_SOLVE) as sequential:
        baseline = [sequential.synthesize(request) for request in requests]
    with Engine(workers=2, solver_options=QUICK_SOLVE) as threaded:
        pooled = sorted(threaded.map(requests), key=lambda response: response.submission_id)
    assert baseline == pooled


# -- deadlines and options ---------------------------------------------------------


def test_deadline_tightens_solver_time_limit():
    engine = Engine(solver_options=SolverOptions(time_limit=60.0))
    effective = engine._effective_solver_options(request_for("sum", deadline=5.0))
    assert effective.time_limit == 5.0
    # A looser deadline never relaxes an existing limit.
    effective = engine._effective_solver_options(request_for("sum", deadline=600.0))
    assert effective.time_limit == 60.0
    # With no engine default, the deadline alone becomes the limit.
    bare = Engine()
    effective = bare._effective_solver_options(request_for("sum", deadline=2.5))
    assert effective.time_limit == 2.5


def test_request_solver_options_override_engine_default(engine):
    request = request_for("sum", solver_options=SolverOptions(restarts=2, max_iterations=40))
    assert engine._effective_solver_options(request).restarts == 2


def test_deadline_bounds_an_explicit_solver_without_mutating_it():
    # "sum" normally needs several seconds at this budget; a tiny deadline
    # must cut the explicit solver short even though its own time_limit is None.
    solver = PenaltyQCLPSolver(SolverOptions(restarts=1, max_iterations=4000, time_limit=None))
    with Engine() as engine:
        response = engine.synthesize(request_for("sum", deadline=0.25), solver=solver)
    assert response.timings["solve_seconds"] < 2.0
    # The caller's solver instance was not mutated.
    assert solver.options.time_limit is None


def test_solve_dedup_table_is_bounded():
    with Engine(solver_options=QUICK_SOLVE, max_cached_solves=1) as engine:
        engine.synthesize(request_for("freire1"))
        engine.synthesize(request_for("cohendiv"))  # evicts the freire1 entry
        third = engine.synthesize(request_for("freire1"))
        assert not third.shared_solve  # re-solved after eviction
        assert engine.stats()["solves_cached"] == 1.0


def test_task_cache_is_boundable():
    from repro.pipeline.cache import TaskCache

    with Engine(cache=TaskCache(max_entries=1), solver_options=QUICK_SOLVE) as engine:
        engine.synthesize(request_for("freire1", reduce_only=True))
        engine.synthesize(request_for("cohendiv", reduce_only=True))
        assert len(engine.cache) == 1
        again = engine.synthesize(request_for("freire1", reduce_only=True))
        assert not again.from_cache  # rebuilt after eviction


# -- lifecycle ---------------------------------------------------------------------


def test_closed_engine_rejects_submissions():
    engine = Engine()
    engine.close()
    with pytest.raises(EngineClosedError):
        engine.submit(request_for("sum"))


def test_submit_rejects_non_requests(engine):
    with pytest.raises(RequestValidationError):
        engine.submit({"program": "sum(n) { return n }"})


def test_stats_expose_cache_counters(engine):
    stats = engine.stats()
    assert stats["submissions"] > 0
    assert "entries" in stats and "solves_cached" in stats


def test_stats_accumulate_solver_kernel_counters():
    with Engine(solver_options=QUICK_SOLVE) as engine:
        engine.synthesize(request_for("sum"))
        stats = engine.stats()
    assert stats["solver_residual_evaluations"] > 0
    assert stats["solver_jacobian_evaluations"] > 0
    assert stats["solver_batch_width_max"] >= 1


# -- JSON round-trip of the whole loop ---------------------------------------------


@pytest.mark.parametrize("name", ["freire1", "cohendiv"])
def test_request_json_round_trip_resynthesizes_to_equal_response(name):
    """Acceptance: serialise → deserialise → re-synthesize gives an equal response."""
    request = request_for(name, solver_options=SolverOptions(restarts=1, max_iterations=60))
    with Engine() as first_engine:
        original = first_engine.synthesize(request)
    revived = SynthesisRequest.from_json(request.to_json())
    with Engine() as second_engine:
        again = second_engine.synthesize(revived)
    assert again == original
    # And the response envelope itself survives JSON.
    assert SynthesisResponse.from_json(original.to_json()) == original


def test_empty_assignment_survives_json_round_trip():
    response = SynthesisResponse(mode="weak", status="ok", assignment={})
    revived = SynthesisResponse.from_json(response.to_json())
    assert revived.assignment == {} and revived == response


def test_equal_responses_hash_equal():
    first = SynthesisResponse(mode="weak", status="ok", assignment={"x": 1.0})
    second = SynthesisResponse(mode="weak", status="ok", assignment={"x": 1.0})
    assert first == second and hash(first) == hash(second)
    assert len({first, second}) == 1


def test_response_json_carries_structured_error(engine):
    response = engine.synthesize(request_for("sum", program="nope nope"))
    revived = SynthesisResponse.from_json(response.to_json())
    assert revived.status == "error"
    assert revived.error.type == response.error.type
    assert revived == response
