"""Unit tests for the certificate subsystem (repro.certify)."""

from fractions import Fraction

import pytest

from repro.certify import (
    Certificate,
    check_certificate,
    derive_argument_sets,
    exact_violations,
    ldl_decompose,
    lift_solution,
    rationalize,
    solve_linear,
)
from repro.certify.sampling import check_invariant
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.synthesis import build_task
from repro.pipeline.jobs import job_from_benchmark
from repro.polynomial.parse import parse_polynomial
from repro.solvers.base import DEFAULT_STRICT_MARGIN, SolverOptions
from repro.solvers.portfolio import make_solver
from repro.solvers.problem import CompiledProblem, SolveControl, compile_problem
from repro.suite.running_example import RUNNING_EXAMPLE

F = Fraction


# ---------------------------------------------------------------------------
# Exact linear algebra
# ---------------------------------------------------------------------------


def test_solve_linear_prefers_the_guess_on_free_columns():
    # x0 + x1 = 3 with guess (1, 1): x1 stays free at 1, x0 becomes 2.
    solution = solve_linear([[F(1), F(1)]], [F(3)], [F(1), F(1)])
    assert solution == [F(2), F(1)]


def test_solve_linear_detects_inconsistency():
    matrix = [[F(1), F(2)], [F(2), F(4)]]
    assert solve_linear(matrix, [F(1), F(3)], [F(0), F(0)]) is None
    assert solve_linear(matrix, [F(1), F(2)], [F(0), F(0)]) is not None


def test_ldl_decides_psd_exactly():
    psd = [[F(2), F(1)], [F(1), F(2)]]
    decomposition = ldl_decompose(psd)
    assert decomposition is not None
    lower, diagonal = decomposition
    # L D L^T reproduces the matrix exactly.
    n = len(psd)
    for i in range(n):
        for j in range(n):
            value = sum(lower[i][k] * diagonal[k] * lower[j][k] for k in range(n))
            assert value == psd[i][j]
    assert ldl_decompose([[F(1), F(2)], [F(2), F(1)]]) is None  # indefinite
    # Boundary case: singular PSD passes, singular-with-coupling fails.
    assert ldl_decompose([[F(0), F(0)], [F(0), F(1)]]) is not None
    assert ldl_decompose([[F(0), F(1)], [F(1), F(0)]]) is None


# ---------------------------------------------------------------------------
# Rationalization and exact system evaluation
# ---------------------------------------------------------------------------


def test_rationalize_snaps_solver_noise_to_clean_rationals():
    snapped = rationalize({"a": 0.50000001, "b": -1e-12}, max_denominator=4)
    assert snapped == {"a": F(1, 2), "b": F(0)}


def test_exact_violations_has_no_float_tolerance():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_x_1_0_0 - 1"), origin="eq")
    system.add_positive(parse_polynomial("$s_x_1_0_1"), origin="gt")
    exact_point = {"$s_x_1_0_0": F(1), "$s_x_1_0_1": F(1, 10**9)}
    assert exact_violations(system, exact_point) == []
    # An equality off by 1e-30 is still a violation; a witness of exactly 0 fails > 0.
    off = {"$s_x_1_0_0": F(1) + F(1, 10**30), "$s_x_1_0_1": F(0)}
    kinds = {violation.kind for violation in exact_violations(system, off)}
    assert kinds == {"eq", "gt"}


# ---------------------------------------------------------------------------
# Solver-option centralisation (strict margin / tolerance)
# ---------------------------------------------------------------------------


def test_custom_strict_margin_reaches_the_residual_rewrite():
    system = QuadraticSystem()
    system.add_positive(parse_polynomial("$s_f_1_0_0"), origin="witness")
    problem = compile_problem(system, strict_margin=0.5)
    import numpy as np

    # At 0.3 the constraint value is positive but below the margin: the
    # residual rewrite (p > 0  ->  p >= margin) must flag it.
    residuals = problem.residuals(np.array([0.3]))
    assert residuals[0] == pytest.approx(0.3 - 0.5)
    # The default-margin compilation considers the same point feasible.
    default_problem = compile_problem(system)
    assert default_problem.strict_margin == DEFAULT_STRICT_MARGIN
    assert default_problem.max_violation(np.array([0.3])) == 0.0


def test_solver_options_margin_threads_through_solve():
    system = QuadraticSystem()
    system.add_positive(parse_polynomial("$s_f_1_0_0"), origin="witness")
    solver = make_solver("gauss-newton", options=SolverOptions(strict_margin=0.25, restarts=1))
    result = solver.solve(system)
    assert result.feasible
    assert result.assignment["$s_f_1_0_0"] >= 0.25 - 1e-6


def test_solve_control_default_tolerance_comes_from_the_shared_constant():
    from repro.solvers.base import DEFAULT_TOLERANCE

    assert SolveControl().tolerance == DEFAULT_TOLERANCE
    assert SolveControl(tolerance=1e-3).tolerance == 1e-3
    assert CompiledProblem(QuadraticSystem()).strict_margin == DEFAULT_STRICT_MARGIN


# ---------------------------------------------------------------------------
# Sampling tier: derived arguments and reproducible seeding
# ---------------------------------------------------------------------------


def test_derive_argument_sets_respects_the_precondition_box(sum_cfg, sum_precondition):
    argument_sets = derive_argument_sets(sum_cfg, sum_precondition, runs=6, rng_seed=1)
    assert argument_sets
    # n >= 1 at the entry: every derived argument satisfies the box.
    assert all(arguments["n"] >= 1 for arguments in argument_sets)
    # Deterministic under the same seed.
    assert argument_sets == derive_argument_sets(sum_cfg, sum_precondition, runs=6, rng_seed=1)


def test_check_invariant_simulates_without_explicit_arguments(sum_cfg, sum_precondition):
    from repro.invariants.result import Invariant
    from repro.spec.assertions import parse_assertion

    function = sum_cfg.function("sum")
    label = function.label_by_index(9)
    invariant = Invariant(assertions={label: parse_assertion("ret_sum - 1000 > 0")})
    # No argument sets: simulation arguments derive from the precondition box
    # instead of silently skipping, so the wrong invariant is caught.
    report = check_invariant(sum_cfg, sum_precondition, invariant, pair_samples=0, rng_seed=3)
    assert report.simulation_runs > 0
    assert not report.passed


def test_check_invariant_is_reproducible_per_seed(sum_cfg, sum_precondition):
    from repro.invariants.result import Invariant

    invariant = Invariant(assertions={})
    first = check_invariant(sum_cfg, sum_precondition, invariant, rng_seed=7)
    second = check_invariant(sum_cfg, sum_precondition, invariant, rng_seed=7)
    assert first.simulation_elements_checked == second.simulation_elements_checked
    assert first.pair_samples == second.pair_samples


# ---------------------------------------------------------------------------
# Lift + certificate round trip on the running example
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def certified_sum():
    benchmark = RUNNING_EXAMPLE
    job = job_from_benchmark(benchmark, quick=True)
    task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), job.options)
    solver = make_solver(
        "portfolio", options=SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)
    )
    result = solver.solve(task.system)
    assert result.feasible
    lift = lift_solution(task, result.assignment)
    assert lift.ok, lift.reason
    return task, lift


def test_lift_produces_a_checkable_certificate(certified_sum):
    task, lift = certified_sum
    check = check_certificate(lift.certificate, task=task)
    assert check.ok, check.summary()
    assert check.pairs_checked == len(task.pairs)
    # Exact values: every template coefficient is a bona fide Fraction.
    assert all(isinstance(value, Fraction) for value in lift.exact_assignment.values())


def test_certificate_round_trips_through_json(certified_sum):
    task, lift = certified_sum
    rebuilt = Certificate.from_json(lift.certificate.to_json())
    assert check_certificate(rebuilt, task=task).ok
    assert rebuilt.to_dict() == lift.certificate.to_dict()


def test_task_binding_rejects_a_foreign_assignment(certified_sum):
    task, lift = certified_sum
    tampered_assignment = dict(lift.certificate.assignment)
    name = next(iter(tampered_assignment))
    tampered_assignment[name] += 7
    tampered = Certificate(
        scheme=lift.certificate.scheme,
        assignment=tampered_assignment,
        pairs=lift.certificate.pairs,
        denominator=lift.certificate.denominator,
    )
    # Internally consistent pairs, but no longer bound to the task's reduction.
    assert not check_certificate(tampered, task=task).ok


def test_tampered_witness_is_rejected(certified_sum):
    task, lift = certified_sum
    pair = lift.certificate.pairs[0]
    assert pair.witness is not None
    from dataclasses import replace

    tampered_pair = replace(pair, witness=pair.witness + 1)
    tampered = Certificate(
        scheme=lift.certificate.scheme,
        assignment=lift.certificate.assignment,
        pairs=(tampered_pair, *lift.certificate.pairs[1:]),
        denominator=lift.certificate.denominator,
    )
    check = check_certificate(tampered)
    assert not check.ok
    assert "identity" in check.failures[0][1]
