"""Unit tests for repro.lang.parser."""

import pytest

from repro.errors import ParseError, ValidationError
from repro.lang.ast_nodes import (
    Assign,
    BinaryPredicate,
    CallAssign,
    Comparison,
    IfStatement,
    NondetIf,
    Return,
    Skip,
    While,
)
from repro.lang.parser import parse_program
from repro.polynomial.parse import parse_polynomial


def test_parse_minimal_function():
    program = parse_program("f(x) { return x }")
    assert program.main == "f"
    function = program.function("f")
    assert function.parameters == ("x",)
    assert isinstance(function.body[0], Return)


def test_parse_assignment_expression():
    program = parse_program("f(x) { y := x*x + 2*x - 1; return y }")
    assign = program.function("f").body[0]
    assert isinstance(assign, Assign)
    assert assign.expression == parse_polynomial("x^2 + 2*x - 1")


def test_parse_skip_and_sequencing():
    program = parse_program("f(x) { skip; skip; return 0 }")
    body = program.function("f").body
    assert isinstance(body[0], Skip)
    assert isinstance(body[1], Skip)
    assert len(body) == 3


def test_parse_if_with_else():
    program = parse_program("f(x) { if x >= 0 then y := 1 else y := 2 fi; return y }")
    branch = program.function("f").body[0]
    assert isinstance(branch, IfStatement)
    assert isinstance(branch.condition, Comparison)
    assert isinstance(branch.then_branch[0], Assign)
    assert isinstance(branch.else_branch[0], Assign)


def test_parse_nondeterministic_if():
    program = parse_program("f(x) { if * then y := 1 else skip fi; return y }")
    assert isinstance(program.function("f").body[0], NondetIf)


def test_parse_while_loop():
    program = parse_program("f(n) { i := 0; while i <= n do i := i + 1 od; return i }")
    loop = program.function("f").body[1]
    assert isinstance(loop, While)
    assert isinstance(loop.body[0], Assign)


def test_parse_boolean_connectives():
    program = parse_program("f(x, y) { if x >= 0 and y >= 0 or x >= y then skip else skip fi; return 0 }")
    condition = program.function("f").body[0].condition
    assert isinstance(condition, BinaryPredicate)
    assert condition.op == "or"


def test_parse_parenthesised_predicate():
    program = parse_program("f(x, y) { if (x >= 0) and (y > 1) then skip else skip fi; return 0 }")
    condition = program.function("f").body[0].condition
    assert isinstance(condition, BinaryPredicate)
    assert condition.op == "and"


def test_parse_call_assignment():
    source = """
    g(a) { return a }
    f(x) { y := g(x); return y }
    """
    program = parse_program(source)
    call = program.function("f").body[0]
    assert isinstance(call, CallAssign)
    assert call.callee == "g"
    assert call.arguments == ("x",)


def test_parse_multiple_functions_and_main():
    program = parse_program("f(x) { return x } g(y) { return y }")
    assert program.function_names() == ["f", "g"]
    assert program.main_function.name == "f"


def test_parse_power_sugar():
    program = parse_program("f(x) { y := x^3; return y }")
    assert program.function("f").body[0].expression == parse_polynomial("x*x*x")


def test_parse_constant_division_sugar():
    program = parse_program("f(x) { y := x/2; return y }")
    assert program.function("f").body[0].expression == parse_polynomial("0.5*x")


def test_trailing_semicolon_tolerated():
    program = parse_program("f(x) { y := 1; return y; }")
    assert len(program.function("f").body) == 2


def test_equality_guard_rejected():
    with pytest.raises(ParseError):
        parse_program("f(x) { if x = 0 then skip else skip fi; return 0 }")


def test_missing_fi_rejected():
    with pytest.raises(ParseError):
        parse_program("f(x) { if x >= 0 then skip else skip ; return 0 }")


def test_division_by_variable_rejected():
    with pytest.raises(ParseError):
        parse_program("f(x) { y := 1/x; return y }")


def test_garbage_statement_rejected():
    with pytest.raises(ParseError):
        parse_program("f(x) { 42; return x }")


def test_call_with_wrong_arity_rejected_by_validation():
    source = """
    g(a, b) { return a }
    f(x) { y := g(x); return y }
    """
    with pytest.raises(ValidationError):
        parse_program(source)


def test_validation_can_be_disabled():
    source = """
    f(x) { y := g(x); return y }
    """
    program = parse_program(source, validate=False)
    assert isinstance(program.function("f").body[0], CallAssign)


def test_program_is_recursive_detection():
    simple = parse_program("f(x) { return x }")
    assert not simple.is_recursive()
    recursive = parse_program("f(x) { y := f(x); return y }", validate=False)
    assert recursive.is_recursive()
    two_functions = parse_program("f(x) { return x } g(y) { return y }")
    assert two_functions.is_recursive()
