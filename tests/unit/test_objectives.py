"""Unit tests for repro.spec.objectives."""

import pytest

from repro.errors import SpecificationError
from repro.invariants.template import TemplateSet
from repro.polynomial.monomial import Monomial
from repro.polynomial.parse import parse_polynomial
from repro.spec.objectives import (
    FeasibilityObjective,
    LinearCoefficientObjective,
    TargetInvariantObjective,
    TargetPostconditionObjective,
)


def test_feasibility_objective_is_zero(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    assert FeasibilityObjective().polynomial(templates).is_zero()


def test_target_invariant_objective_quadratic_distance(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=2)
    target = parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_sum")
    objective = TargetInvariantObjective(function="sum", label_index=9, target=target)
    polynomial = objective.polynomial(templates)
    assert polynomial.degree() == 2
    # Zero exactly when every coefficient matches the target.
    entry = templates.entry_for("sum", 9)
    perfect = {}
    for monomial in entry.monomials:
        perfect[entry.coefficient_name(0, monomial)] = float(target.terms.get(monomial, 0))
    assert objective.evaluate(templates, perfect) == pytest.approx(0.0)
    assert objective.evaluate(templates, {}) > 0


def test_target_invariant_objective_rejects_unsupported_monomials(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    target = parse_polynomial("n_init^2")  # needs degree 2
    objective = TargetInvariantObjective(function="sum", label_index=9, target=target)
    with pytest.raises(SpecificationError):
        objective.polynomial(templates)


def test_target_invariant_objective_rejects_bad_conjunct(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1, conjuncts=1)
    objective = TargetInvariantObjective(
        function="sum", label_index=9, target=parse_polynomial("ret_sum"), conjunct=3
    )
    with pytest.raises(SpecificationError):
        objective.polynomial(templates)


def test_target_invariant_objective_normalisation(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    target = parse_polynomial("4*ret_sum + 2")
    normalised = TargetInvariantObjective(
        function="sum", label_index=9, target=target, normalise=True
    ).polynomial(templates)
    entry = templates.entry_for("sum", 9)
    ret_name = entry.coefficient_name(0, Monomial.of("ret_sum"))
    # After normalisation the desired ret coefficient is 1, so the minimum of the
    # (s - 1)^2 term sits at 1, not 4.
    assert normalised.substitute({ret_name: parse_polynomial("1")}).restrict_to([]) is not None


def test_target_postcondition_objective(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    target = parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_recursive_sum")
    objective = TargetPostconditionObjective(function="recursive_sum", target=target)
    polynomial = objective.polynomial(templates)
    assert polynomial.degree() == 2
    assert all(name.startswith("$s_post_") for name in polynomial.variables())


def test_target_postcondition_objective_monomial_check(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=1)
    objective = TargetPostconditionObjective(
        function="recursive_sum", target=parse_polynomial("n_init^2")
    )
    with pytest.raises(SpecificationError):
        objective.polynomial(templates)


def test_linear_coefficient_objective(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    entry = templates.entry_for("sum", 9)
    name = entry.coefficient_name(0, Monomial.of("ret_sum"))
    objective = LinearCoefficientObjective(weights={name: -1.0})
    polynomial = objective.polynomial(templates)
    assert polynomial.degree() == 1
    assert objective.evaluate(templates, {name: 2.0}) == pytest.approx(-2.0)


def test_linear_coefficient_objective_unknown_name(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    with pytest.raises(SpecificationError):
        LinearCoefficientObjective(weights={"$s_nope": 1.0}).polynomial(templates)
