"""Unit tests for repro.invariants.template (Step 1 / 1.a)."""

import pytest

from repro.errors import SynthesisError
from repro.invariants.template import TemplateSet, UNKNOWN_PREFIX
from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import count_monomials_up_to_degree


def test_template_monomial_count_matches_formula(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=2)
    entry = templates.entry_for("sum", 1)
    # V^sum has 5 variables (n, n_init, i, s, ret_sum); degree-2 monomials: C(7,2) = 21.
    assert len(entry.monomials) == count_monomials_up_to_degree(5, 2) == 21


def test_template_example_6_size(sum_cfg):
    """Example 6 of the paper: the degree-2 template at each label has 21 terms."""
    templates = TemplateSet.build(sum_cfg, degree=2, conjuncts=1)
    for entry in templates:
        assert len(entry.coefficient_names()) == 21


def test_coefficient_names_are_prefixed_and_unique(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1, conjuncts=2)
    names = templates.coefficient_names()
    assert len(names) == len(set(names))
    assert all(name.startswith(UNKNOWN_PREFIX) for name in names)
    # 9 labels x 2 conjuncts x 6 monomials (1, n, n_init, i, s, ret_sum)
    assert templates.coefficient_count() == 9 * 2 * 6


def test_conjunct_polynomial_contains_every_monomial(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    entry = templates.entry_for("sum", 3)
    polynomial = entry.conjunct_polynomial(0)
    program_monomials = {m.exclude([v for v in m.variables() if v.startswith(UNKNOWN_PREFIX)])
                         for m in polynomial.terms}
    assert Monomial.of("i") in program_monomials
    assert Monomial.one() in program_monomials


def test_instantiate_assigns_coefficients(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    entry = templates.entry_for("sum", 9)
    name = entry.coefficient_name(0, Monomial.of("ret_sum"))
    concrete = entry.instantiate(0, {name: 2.5})
    assert concrete.coefficient(Monomial.of("ret_sum")) == 2.5
    assert concrete.coefficient(Monomial.of("i")) == 0


def test_instantiate_assertion_is_strict(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    entry = templates.entry_for("sum", 9)
    assertion = entry.instantiate_assertion({})
    assert all(atom.strict for atom in assertion)


def test_unknown_monomial_rejected(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    entry = templates.entry_for("sum", 1)
    with pytest.raises(SynthesisError):
        entry.coefficient_name(0, Monomial({"i": 5}))


def test_bad_parameters_rejected(sum_cfg):
    with pytest.raises(SynthesisError):
        TemplateSet.build(sum_cfg, degree=0)
    with pytest.raises(SynthesisError):
        TemplateSet.build(sum_cfg, degree=1, conjuncts=0)


def test_conjunct_out_of_range(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1, conjuncts=1)
    entry = templates.entry_for("sum", 1)
    with pytest.raises(SynthesisError):
        entry.conjunct_polynomial(1)


def test_lookup_errors(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    with pytest.raises(SynthesisError):
        templates.entry_for("sum", 42)
    with pytest.raises(SynthesisError):
        templates.post_entry_for("sum")  # non-recursive: no post templates by default


def test_non_recursive_program_has_no_post_templates(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=2)
    assert not templates.has_postconditions()


def test_recursive_program_gets_post_templates(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    assert templates.has_postconditions()
    post = templates.post_entry_for("recursive_sum")
    # Example 11: the post-condition template ranges over n_init and ret only:
    # monomials 1, n_init, ret, n_init^2, n_init*ret, ret^2.
    assert set(post.variables) == {"n_init", "ret_recursive_sum"}
    assert len(post.monomials) == 6


def test_forced_post_templates_for_non_recursive(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1, with_postconditions=True)
    assert templates.has_postconditions()
    assert set(templates.post_entry_for("sum").variables) == {"n_init", "ret_sum"}


def test_post_entry_instantiate(recursive_sum_cfg):
    templates = TemplateSet.build(recursive_sum_cfg, degree=2)
    post = templates.post_entry_for("recursive_sum")
    name = post.coefficient_name(0, Monomial.one())
    polynomial = post.instantiate(0, {name: 3})
    assert polynomial.constant_term() == 3
    assertion = post.instantiate_assertion({name: 3})
    assert assertion.holds({"n_init": 0.0, "ret_recursive_sum": 0.0})
