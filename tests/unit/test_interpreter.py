"""Unit tests for repro.semantics.interpreter."""

from fractions import Fraction

import pytest

from repro.cfg.builder import build_cfg
from repro.errors import SemanticsError
from repro.lang.parser import parse_program
from repro.semantics.interpreter import ExecutionLimits, Interpreter
from repro.semantics.scheduler import AlternatingScheduler, RandomScheduler, ScriptedScheduler


def run_program(source, arguments, scheduler=None, limits=None):
    cfg = build_cfg(parse_program(source))
    interpreter = Interpreter(cfg, scheduler=scheduler, limits=limits)
    return interpreter.run(arguments)


def test_straight_line_program_returns_value():
    result = run_program("f(x) { y := x*x + 1; return y }", {"x": 3})
    assert result.completed
    assert result.return_value == 10


def test_missing_argument_raises():
    cfg = build_cfg(parse_program("f(x) { return x }"))
    with pytest.raises(SemanticsError):
        Interpreter(cfg).run({})


def test_loop_computes_sum(sum_cfg):
    # Always taking the 'then' branch of the nondeterministic if adds every i.
    interpreter = Interpreter(sum_cfg, scheduler=ScriptedScheduler([0] * 100))
    result = interpreter.run({"n": 5})
    assert result.completed
    assert result.return_value == 15


def test_loop_skipping_all_additions(sum_cfg):
    interpreter = Interpreter(sum_cfg, scheduler=ScriptedScheduler([1] * 100))
    result = interpreter.run({"n": 5})
    assert result.return_value == 0


def test_nondeterminism_bounded_by_full_sum(sum_cfg):
    interpreter = Interpreter(sum_cfg, scheduler=RandomScheduler(seed=7))
    for n in range(0, 8):
        result = interpreter.run({"n": n})
        assert result.completed
        assert 0 <= result.return_value <= n * (n + 1) // 2


def test_fractional_arguments_stay_exact():
    result = run_program("f(x) { y := 0.5*x; return y }", {"x": Fraction(1, 3)})
    assert result.return_value == Fraction(1, 6)


def test_if_branches():
    source = "f(x) { if x >= 0 then y := 1 else y := 0 - 1 fi; return y }"
    assert run_program(source, {"x": 5}).return_value == 1
    assert run_program(source, {"x": -5}).return_value == -1


def test_step_limit_truncates_infinite_loop():
    source = "f(x) { while x >= 0 do x := x + 1 od; return x }"
    result = run_program(source, {"x": 0}, limits=ExecutionLimits(max_steps=50))
    assert result.truncated
    assert not result.completed


def test_recursion_returns_correct_value(recursive_sum_source):
    cfg = build_cfg(parse_program(recursive_sum_source))
    interpreter = Interpreter(cfg, scheduler=ScriptedScheduler([0] * 100))
    result = interpreter.run({"n": 6})
    assert result.completed
    assert result.return_value == 21


def test_recursion_depth_limit():
    source = """
    f(n) {
        m := n + 1;
        r := f(m);
        return r
    }
    """
    cfg = build_cfg(parse_program(source))
    interpreter = Interpreter(cfg, limits=ExecutionLimits(max_steps=100000, max_stack_depth=20))
    result = interpreter.run({"n": 0})
    assert result.truncated
    assert result.stuck_reason is not None


def test_mutual_recursion():
    source = """
    even(n) {
        if n <= 0 then
            return 1
        else
            m := n - 1;
            r := odd(m);
            return r
        fi
    }
    odd(n) {
        if n <= 0 then
            return 0
        else
            m := n - 1;
            r := even(m);
            return r
        fi
    }
    """
    cfg = build_cfg(parse_program(source))
    interpreter = Interpreter(cfg)
    assert interpreter.run({"n": 4}).return_value == 1
    assert interpreter.run({"n": 7}).return_value == 0


def test_trace_records_initial_configuration(sum_cfg):
    interpreter = Interpreter(sum_cfg)
    result = interpreter.run({"n": 2})
    first = result.trace.configurations[0]
    assert len(first) == 1
    element = first.top()
    assert element.label == sum_cfg.function("sum").entry
    assert element.value("n") == 2
    assert element.value("n_init") == 2
    assert element.value("s") == 0


def test_run_many(sum_cfg):
    interpreter = Interpreter(sum_cfg)
    results = interpreter.run_many([{"n": 1}, {"n": 2}, {"n": 3}])
    assert len(results) == 3
    assert all(result.completed for result in results)


def test_alternating_scheduler_alternates(sum_cfg):
    interpreter = Interpreter(sum_cfg, scheduler=AlternatingScheduler())
    result = interpreter.run({"n": 4})
    # Alternating then/skip adds i for every other iteration: 1 + 3 = 4.
    assert result.return_value == 4
