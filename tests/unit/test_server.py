"""Tests of the HTTP front door (repro.server) against a live loopback server."""

import json
from http.client import HTTPConnection

import pytest

from repro.api import SynthesisRequest, SynthesisResponse
from repro.server import (
    ServerError,
    SynthesisClient,
    SynthesisServer,
    serve_in_background,
)
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark

QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=60)


def document_for(name: str, **overrides) -> dict:
    benchmark = get_benchmark(name)
    fields = dict(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1),
        request_id=name,
    )
    fields.update(overrides)
    return SynthesisRequest(**fields).to_dict()


@pytest.fixture(scope="module")
def served():
    server = SynthesisServer(workers=2, solver_options=QUICK_SOLVE, scheduler="off")
    with serve_in_background(server) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(served):
    return SynthesisClient(served.url)


# -- plumbing ----------------------------------------------------------------------


def test_healthz(client):
    assert client.healthz() == {"status": "ok"}


def test_unknown_endpoint_is_structured_404(client):
    with pytest.raises(ServerError) as excinfo:
        client._request("GET", "/v1/nope")
    assert excinfo.value.status == 404
    assert "unknown endpoint" in str(excinfo.value)


def test_wrong_method_is_405(client):
    with pytest.raises(ServerError) as excinfo:
        client._request("GET", "/v1/synthesize")
    assert excinfo.value.status == 405


def test_protocol_error_bad_json_body(client):
    connection = HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.request(
            "POST",
            "/v1/synthesize",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "not valid JSON" in payload["error"]["reason"]
    finally:
        connection.close()


def test_post_without_content_length_is_411(client):
    connection = HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.putrequest("POST", "/v1/synthesize", skip_accept_encoding=True)
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 411
    finally:
        connection.close()


# -- blocking synthesis ------------------------------------------------------------


def test_synthesize_over_http_matches_in_process_semantics(client):
    envelope = client.synthesize(document_for("sum"))
    assert envelope["status"] == "ok" and envelope["request_id"] == "sum"
    assert envelope["invariants"] and envelope["assignment"]
    # The wire document round-trips through the typed codec.
    response = SynthesisResponse.from_dict(envelope)
    assert response.success and response.submission_id is not None


def test_validation_failure_is_structured_400_with_field_list(client):
    with pytest.raises(ServerError) as excinfo:
        client.synthesize({"mode": "weakest", "program": ""})
    error = excinfo.value
    assert error.status == 400
    fields = {entry["field"] for entry in error.errors}
    assert "program" in fields and "mode" in fields


def test_synthesis_failure_is_an_error_envelope_not_a_transport_error(client):
    envelope = client.synthesize(
        {"program": "while x < 1:\n    x = y0 + 1\n", "mode": "weak", "request_id": "broken"}
    )
    assert envelope["status"] == "error"
    assert envelope["error"]["type"]


# -- jobs --------------------------------------------------------------------------


def test_submit_job_and_events_stream(client):
    documents = [document_for("sum"), document_for("freire1"), {"program": "", "mode": "weakest"}]
    job = client.submit(documents)
    assert job["total"] == 3 and job["accepted"] == 2 and job["rejected"] == 1

    events = list(client.events(job["job_id"]))
    assert len(events) == 3
    # Validation rejects are streamed first, as synthetic error envelopes.
    assert events[0]["status"] == "error"
    assert events[0]["error"]["type"] == "RequestValidationError"
    assert {entry["field"] for entry in events[0]["error"]["errors"]} >= {"program", "mode"}
    # Then completed responses, in completion order, stamped with ids.
    completed = {event["request_id"]: event for event in events[1:]}
    assert set(completed) == {"sum", "freire1"}
    assert all(event["status"] == "ok" for event in completed.values())
    assert all(event["submission_id"] is not None for event in completed.values())

    snapshot = client.job(job["job_id"])
    assert snapshot["done"] and snapshot["completed"] == 2 and snapshot["rejected"] == 1
    assert len(snapshot["results"]) == 3


def test_submit_rejects_empty_batch(client):
    with pytest.raises(ServerError) as excinfo:
        client.submit([])
    assert excinfo.value.status == 400
    assert excinfo.value.errors[0]["field"] == "requests"


def test_unknown_job_is_404(client):
    with pytest.raises(ServerError) as excinfo:
        client.job("deadbeef")
    assert excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        list(client.events("deadbeef"))
    assert excinfo.value.status == 404


# -- stats and store ---------------------------------------------------------------


def test_stats_merges_engine_and_server_counters(client):
    stats = client.stats()
    assert stats["server_requests_total"] >= 1
    assert "stage_hits" in stats and "server_uptime_seconds" in stats
    assert "server_jobs_created" in stats


def test_server_with_store_serves_warm_requests_from_disk(tmp_path):
    server = SynthesisServer(
        store=tmp_path, workers=2, solver_options=QUICK_SOLVE, scheduler="off"
    )
    with serve_in_background(server) as handle:
        client = SynthesisClient(handle.url)
        cold = client.synthesize(document_for("sum"))
        warm = client.synthesize(document_for("sum"))
        assert cold["status"] == "ok" and not cold["served_from_store"]
        assert warm["status"] == "ok" and warm["served_from_store"]
        assert warm["invariants"] == cold["invariants"]
        stats = client.stats()
        assert stats["store_response_hits"] == 1.0
